//! The §III-B strategy study on the GPS error model (Listings 1–2 /
//! Fig. 2 of the paper): how ASAP, Progressive, Local and MaxTime resolve
//! the non-deterministic `[200, 300]` ms repair window, and what that
//! does to the probability of ending up with a permanent fault.
//!
//! Run with `cargo run --release --example gps_strategies`.

use slim_models::gps::{gps_network, GpsParams};
use slimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hot faults dominate so the repair window drives the outcome.
    let params = GpsParams {
        lambda_transient: 0.02,
        lambda_hot: 2.0,
        lambda_permanent: 0.01,
        ..GpsParams::default()
    };
    let net = gps_network(&params);
    println!("GPS model: {} automata, {} variables", net.automata().len(), net.vars().len());
    println!(
        "repair window [{}, {}] s, cool-down at {} s (restarting earlier escalates)\n",
        params.repair_earliest, params.repair_latest, params.cooldown
    );

    let goal =
        Goal::in_location(&net, "gps.error_GpsError", "permanent").expect("error automaton exists");

    println!(
        "{:<6} {:<14} {:>12} {:>10} {:>14}",
        "u (s)", "strategy", "P(permanent)", "paths", "mean steps"
    );
    for bound in [1.0, 2.0, 4.0] {
        let property = TimedReach::new(goal.clone(), bound);
        for strategy in StrategyKind::ALL {
            let config = SimConfig::default()
                .with_accuracy(Accuracy::new(0.02, 0.05)?)
                .with_strategy(strategy)
                .with_workers(4);
            let r = analyze(&net, &property, &config)?;
            println!(
                "{:<6} {:<14} {:>12.4} {:>10} {:>14.1}",
                bound,
                strategy.to_string(),
                r.probability(),
                r.estimate.samples,
                r.stats.mean_steps()
            );
        }
        println!();
    }
    println!("ASAP always restarts too early (worst); MaxTime never does (best);");
    println!("Progressive and Local sample the window and land in between — the");
    println!("ordering of Fig. 5 (right) in miniature.");
    Ok(())
}
