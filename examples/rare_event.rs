//! Rare-event analysis (§VI): estimating a ~10⁻⁹ failure probability by
//! importance sampling — boosted fault rates with exact likelihood-ratio
//! correction — where plain Monte Carlo would need billions of paths.
//!
//! Run with `cargo run --release --example rare_event`.

use slim_models::sensor_filter::{
    analytic_failure_probability, sensor_filter_network, SensorFilterParams, GOAL_VAR,
};
use slimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Short mission, quadruple redundancy: failure needs 4 near-simultaneous
    // faults per bank — astronomically rare.
    let params = SensorFilterParams { redundancy: 4, ..Default::default() };
    let net = sensor_filter_network(&params);
    let failed = net.var_id(GOAL_VAR).expect("goal variable");
    let bound = 0.01;
    let property = TimedReach::new(Goal::expr(Expr::var(failed)), bound);
    let exact = analytic_failure_probability(&params, bound);
    println!("P(◇[0,{bound}] system_failed), analytic = {exact:.3e}");
    println!("(plain Monte Carlo at this p needs ~{:.0e} paths per hit)\n", 1.0 / exact);

    println!(
        "{:>8} {:>12} {:>8} {:>14} {:>10} {:>10}",
        "boost", "paths", "hits", "estimate", "rel.err", "ESS"
    );
    for boost in [100.0, 300.0, 1000.0] {
        let config = RareEventConfig {
            boost,
            rel_err: 0.15,
            max_paths: 200_000,
            seed: 42,
            ..Default::default()
        };
        let r = analyze_rare(&net, &property, &config)?;
        println!(
            "{:>8} {:>12} {:>8} {:>14.3e} {:>10.3} {:>10.0}{}",
            boost,
            r.estimate.samples,
            r.estimate.hits,
            r.estimate.mean,
            (r.estimate.mean - exact).abs() / exact,
            r.estimate.effective_samples,
            if r.converged { "" } else { "  (not converged)" },
        );
    }
    println!("\nAll boosts estimate the same true probability (unbiasedness);");
    println!("too large a boost degrades the effective sample size (weight");
    println!("degeneracy) — the classic importance-sampling trade-off.");
    Ok(())
}
