//! Quickstart: build a tiny stochastic timed model with the API, check a
//! timed reachability property with every strategy, and compare against
//! the analytic answer.
//!
//! Run with `cargo run --release --example quickstart`.

use slimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- model -----------------------------------------------------------
    // A pump that fails with rate λ = 0.5/h. After a fault the repair crew
    // fixes it within 1 to 2 hours (a non-deterministic window). We ask:
    // what is the probability the pump is ever down for observation at
    // some point within the first 4 hours? (Trivially linked to the first
    // fault: P = 1 − e^{−λu}.)
    let mut b = NetworkBuilder::new();
    let down = b.var("pump.down", VarType::Bool, Value::Bool(false));
    let c = b.var("pump.repair_clock", VarType::Clock, Value::Real(0.0));

    let mut pump = AutomatonBuilder::new("pump");
    let running = pump.location("running");
    let broken = pump.location_with("broken", Expr::var(c).le(Expr::real(2.0)), []);
    pump.markovian(
        running,
        0.5,
        [Effect::assign(down, Expr::bool(true)), Effect::assign(c, Expr::real(0.0))],
        broken,
    );
    let repair_window = Expr::var(c).ge(Expr::real(1.0)).and(Expr::var(c).le(Expr::real(2.0)));
    pump.guarded(
        broken,
        ActionId::TAU,
        repair_window,
        [Effect::assign(down, Expr::bool(false))],
        running,
    );
    b.add_automaton(pump);
    let net = b.build()?;

    // --- property ---------------------------------------------------------
    let property = TimedReach::new(Goal::expr(Expr::var(down)), 4.0);
    let exact = 1.0 - (-0.5f64 * 4.0).exp();

    // --- analysis ----------------------------------------------------------
    println!("P(◇[0,4] pump.down), exact = {exact:.4}");
    println!("{:<14} {:>10} {:>10} {:>12}", "strategy", "estimate", "paths", "wall");
    for strategy in StrategyKind::ALL {
        let config = SimConfig::default()
            .with_accuracy(Accuracy::new(0.01, 0.05)?)
            .with_strategy(strategy)
            .with_workers(4);
        let result = analyze(&net, &property, &config)?;
        println!(
            "{:<14} {:>10.4} {:>10} {:>10.0?}",
            strategy.to_string(),
            result.probability(),
            result.estimate.samples,
            result.wall
        );
    }
    println!("\n(The goal only depends on the Markovian fault, so all four");
    println!(" strategies estimate the same probability — §V-d left graph.)");
    Ok(())
}
