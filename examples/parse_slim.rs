//! Front-end tour: parse a SLIM model from text, pretty-print it back,
//! lower it to a network of event-data automata, and analyze it.
//!
//! Run with `cargo run --release --example parse_slim`.

use slim_lang::{lower, parse, pretty};
use slim_models::slim_sources::HANDSHAKE_SLIM;
use slimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse.
    let model = parse(HANDSHAKE_SLIM)?;
    println!(
        "parsed: {} types, {} implementations, {} error models, {} injections",
        model.types.len(),
        model.impls.len(),
        model.error_models.len(),
        model.injections.len()
    );

    // 2. Pretty-print (round-trips through the parser).
    let printed = pretty(&model);
    assert_eq!(parse(&printed)?, model, "pretty output re-parses to the same AST");
    println!("\n--- pretty-printed model -------------------------------------");
    println!("{printed}");

    // 3. Lower to a network of event-data automata.
    let net = lower(&model, "Net", "Impl", "net")?.network;
    println!("--- lowered network -------------------------------------------");
    for a in net.automata() {
        println!(
            "automaton `{}`: {} locations, {} transitions",
            a.name,
            a.locations.len(),
            a.transitions.len()
        );
    }
    for decl in net.vars() {
        println!("variable `{}`: {}", decl.name, decl.ty);
    }

    // 4. Analyze: the handshake synchronizes within [1, 5] time units.
    let served = net.var_id("net.server.served").expect("server flag exists");
    let property = TimedReach::new(Goal::expr(Expr::var(served)), 10.0);
    let config = SimConfig::default()
        .with_accuracy(Accuracy::new(0.02, 0.05)?)
        .with_strategy(StrategyKind::Progressive);
    let result = analyze(&net, &property, &config)?;
    println!("\nP(◇[0,10] served) = {}", result.estimate);
    Ok(())
}
