//! Simulator vs CTMC pipeline on the §IV sensor–filter benchmark — a
//! miniature of Table I: both engines answer `P(◇[0,T] system_failed)`,
//! the CTMC exactly, the simulator within (ε, δ), and the analytic closed
//! form referees.
//!
//! Run with `cargo run --release --example sensor_filter_compare`.

use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slim_models::sensor_filter::{
    analytic_failure_probability, sensor_filter_network, SensorFilterParams, GOAL_VAR,
};
use slimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 2.0;
    println!(
        "{:>4} {:>8} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>9}",
        "n", "states", "lumped", "ctmc P", "sim P", "±ε", "paths", "exact P"
    );
    for redundancy in [1, 2, 3, 4] {
        let params = SensorFilterParams { redundancy, ..Default::default() };
        let net = sensor_filter_network(&params);
        let failed = net.var_id(GOAL_VAR).expect("goal variable exists");

        // CTMC pipeline (explore → eliminate → lump → uniformization).
        let goal_fn = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
        let ctmc = check_timed_reachability(&net, &goal_fn, horizon, &PipelineConfig::default())?;

        // Monte Carlo simulator.
        let property = TimedReach::new(Goal::expr(Expr::var(failed)), horizon);
        let config = SimConfig::default()
            .with_accuracy(Accuracy::new(0.01, 0.05)?)
            .with_strategy(StrategyKind::Asap)
            .with_workers(4);
        let sim = analyze(&net, &property, &config)?;

        let exact = analytic_failure_probability(&params, horizon);
        println!(
            "{:>4} {:>8} {:>9} {:>9.5} | {:>9.5} {:>9.3} {:>9} | {:>9.5}",
            redundancy,
            ctmc.states,
            ctmc.lumped_states,
            ctmc.probability,
            sim.probability(),
            sim.estimate.epsilon,
            sim.estimate.samples,
            exact
        );
    }
    println!("\nThe CTMC column is exact but its state count explodes with n;");
    println!("the simulator's cost is flat in n — the Table I trade-off.");
    Ok(())
}
