//! The §V launcher case study: reliability analysis of the Fig. 4
//! architecture under permanent vs recoverable DPU faults, per strategy —
//! the experiment behind Fig. 5.
//!
//! Run with `cargo run --release --example launcher_reliability`.

use slim_models::launcher::{launcher_network, DpuFaultMode, LauncherParams, FAILURE_VAR};
use slimsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, mode) in [
        ("permanent DPU faults (Fig. 5 left)", DpuFaultMode::Permanent),
        ("recoverable DPU faults (Fig. 5 right)", DpuFaultMode::Recoverable),
    ] {
        println!("== {label} ==");
        let params = LauncherParams { dpu_faults: mode, ..Default::default() };
        let net = launcher_network(&params);
        let failure = net.var_id(FAILURE_VAR).expect("failure flow exists");
        println!(
            "   {} automata, {} variables, {} flows",
            net.automata().len(),
            net.vars().len(),
            net.flows().len()
        );

        print!("{:>6}", "u (h)");
        for s in StrategyKind::ALL {
            print!(" {:>12}", s.to_string());
        }
        println!();
        for bound in [0.5, 1.0, 2.0, 3.0] {
            let property = TimedReach::new(Goal::expr(Expr::var(failure)), bound);
            print!("{bound:>6}");
            for strategy in StrategyKind::ALL {
                let config = SimConfig::default()
                    .with_accuracy(Accuracy::new(0.02, 0.05)?)
                    .with_strategy(strategy)
                    .with_workers(4);
                let r = analyze(&net, &property, &config)?;
                print!(" {:>12.4}", r.probability());
            }
            println!();
        }
        println!();
    }
    println!("Left block: the strategies coincide (only probabilistic and");
    println!("deterministic behavior). Right block: ASAP restarts DPUs too");
    println!("early and is worst; MaxTime never does and is best; Local and");
    println!("Progressive land in between — the paper's Fig. 5 shape.");
    Ok(())
}
