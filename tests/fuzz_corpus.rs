//! Replays the committed fuzz regression corpus (`tests/corpus/*.slim`)
//! through the full oracle stack. Every entry is a previously-found,
//! since-fixed failure; any entry failing again is a regression. This is
//! the same gate CI runs via `slimsim fuzz --replay tests/corpus`.

use std::path::PathBuf;

use slimsim::fuzz::{replay_corpus, OracleConfig};

#[test]
fn committed_corpus_stays_fixed() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    assert!(dir.exists(), "the regression corpus directory is missing: {}", dir.display());
    let rows = replay_corpus(&dir, &OracleConfig::quick()).expect("corpus directory reads");
    assert!(!rows.is_empty(), "the corpus exists but holds no .slim entries");
    let regressions: Vec<String> = rows
        .iter()
        .filter_map(|(name, r)| r.as_ref().err().map(|e| format!("{name}: {e}")))
        .collect();
    assert!(regressions.is_empty(), "corpus regressions:\n{}", regressions.join("\n"));
}
