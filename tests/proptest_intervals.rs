//! Randomized tests for the interval-set algebra — the foundation the
//! exact strategy windows are built on.

mod common;

use common::*;
use slimsim::automata::interval::{Interval, IntervalSet};

fn interval(rng: &mut StdRng) -> Interval {
    loop {
        let lo = f64_in(rng, 0.0, 100.0);
        let lo_closed = rng.gen::<bool>();
        let cand = if rng.gen::<bool>() {
            Interval::new(lo, f64::INFINITY, lo_closed, false)
        } else {
            let len = f64_in(rng, 0.0, 20.0);
            Interval::new(lo, lo + len, lo_closed, rng.gen::<bool>())
        };
        if let Some(iv) = cand {
            return iv;
        }
    }
}

fn set(rng: &mut StdRng) -> IntervalSet {
    IntervalSet::from_intervals(vec_of(rng, 0, 6, interval))
}

/// Sample points to probe membership with (includes the interesting
/// boundary region).
fn probes() -> Vec<f64> {
    let mut v: Vec<f64> = (0..60).map(|i| i as f64 * 2.3).collect();
    v.extend([0.0, 0.5, 1.0, 99.9, 100.0, 119.9, 1e6]);
    v
}

#[test]
fn union_is_pointwise_or() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0210);
    for case in 0..256 {
        let (a, b) = (set(&mut rng), set(&mut rng));
        let u = a.union(&b);
        for x in probes() {
            assert_eq!(u.contains(x), a.contains(x) || b.contains(x), "case {case} at {x}");
        }
    }
}

#[test]
fn intersection_is_pointwise_and() {
    let mut rng = StdRng::seed_from_u64(0x5eed_1275);
    for case in 0..256 {
        let (a, b) = (set(&mut rng), set(&mut rng));
        let i = a.intersect(&b);
        for x in probes() {
            assert_eq!(i.contains(x), a.contains(x) && b.contains(x), "case {case} at {x}");
        }
    }
}

#[test]
fn complement_is_pointwise_not() {
    let mut rng = StdRng::seed_from_u64(0x5eed_c031);
    for case in 0..256 {
        let a = set(&mut rng);
        let c = a.complement();
        for x in probes() {
            assert_eq!(c.contains(x), !a.contains(x), "case {case} at {x}");
        }
    }
}

#[test]
fn double_complement_is_identity_pointwise() {
    let mut rng = StdRng::seed_from_u64(0x5eed_dc01);
    for case in 0..256 {
        let a = set(&mut rng);
        let cc = a.complement().complement();
        for x in probes() {
            assert_eq!(cc.contains(x), a.contains(x), "case {case} at {x}");
        }
    }
}

#[test]
fn de_morgan() {
    let mut rng = StdRng::seed_from_u64(0x5eed_de40);
    for case in 0..256 {
        let (a, b) = (set(&mut rng), set(&mut rng));
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        for x in probes() {
            assert_eq!(lhs.contains(x), rhs.contains(x), "case {case} at {x}");
        }
    }
}

#[test]
fn measure_additivity_bounds() {
    let mut rng = StdRng::seed_from_u64(0x5eed_4ea5);
    for case in 0..256 {
        let (a, b) = (set(&mut rng), set(&mut rng));
        // |A ∪ B| + |A ∩ B| = |A| + |B| for finite-measure parts.
        let lhs = a.union(&b).measure() + a.intersect(&b).measure();
        let rhs = a.measure() + b.measure();
        if lhs.is_finite() && rhs.is_finite() {
            assert!((lhs - rhs).abs() < 1e-6, "case {case}: {lhs} vs {rhs}");
        }
    }
}

#[test]
fn normalization_sorted_disjoint() {
    let mut rng = StdRng::seed_from_u64(0x5eed_5047);
    for case in 0..256 {
        let a = set(&mut rng);
        let ivs = a.intervals();
        for w in ivs.windows(2) {
            assert!(w[0].hi() <= w[1].lo(), "case {case}: overlap: {} then {}", w[0], w[1]);
            if w[0].hi() == w[1].lo() {
                assert!(
                    !w[0].hi_closed() && !w[1].lo_closed(),
                    "case {case}: mergeable neighbors kept apart: {} | {}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn picked_points_are_members() {
    let mut rng = StdRng::seed_from_u64(0x5eed_91c4);
    for case in 0..256 {
        let a = set(&mut rng);
        let u = rng.gen::<f64>();
        // Unbounded sets are truncated the way the engine does it.
        let capped =
            if a.sup().is_some_and(f64::is_infinite) { a.truncate(1e4) } else { a.clone() };
        if let Some(x) = capped.pick(u) {
            assert!(capped.contains(x), "case {case}: picked {x} outside {capped}");
        } else {
            assert!(capped.is_empty(), "case {case}");
        }
    }
}

#[test]
fn earliest_and_latest_are_members() {
    let mut rng = StdRng::seed_from_u64(0x5eed_ea51);
    for case in 0..256 {
        let a = set(&mut rng);
        if let Some(e) = a.earliest_point() {
            assert!(a.contains(e), "case {case}: earliest {e} outside {a}");
        }
        if let Some(l) = a.latest_point() {
            assert!(a.contains(l), "case {case}: latest {l} outside {a}");
        }
    }
}

#[test]
fn truncate_caps_sup() {
    let mut rng = StdRng::seed_from_u64(0x5eed_7ca9);
    for case in 0..256 {
        let a = set(&mut rng);
        let cap = f64_in(&mut rng, 0.0, 150.0);
        let t = a.truncate(cap);
        if let Some(s) = t.sup() {
            assert!(s <= cap + 1e-12, "case {case}");
        }
        for x in probes() {
            assert_eq!(t.contains(x), a.contains(x) && x <= cap, "case {case} at {x}");
        }
    }
}

#[test]
fn prefix_from_zero_is_prefix() {
    let mut rng = StdRng::seed_from_u64(0x5eed_94e0);
    for case in 0..256 {
        let a = set(&mut rng);
        if let Some((hi, closed)) = a.prefix_from_zero() {
            assert!(a.contains(0.0), "case {case}");
            // Everything strictly inside [0, hi) is in the set.
            for x in probes() {
                if x < hi {
                    assert!(a.contains(x), "case {case}: gap at {x} before {hi}");
                }
            }
            if closed && hi.is_finite() {
                assert!(a.contains(hi), "case {case}");
            }
        } else {
            assert!(!a.contains(0.0), "case {case}");
        }
    }
}
