//! Property tests for the interval-set algebra — the foundation the exact
//! strategy windows are built on.

use proptest::prelude::*;
use slimsim::automata::interval::{Interval, IntervalSet};

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0.0f64..100.0, 0.0f64..20.0, any::<bool>(), any::<bool>(), any::<bool>()).prop_filter_map(
        "nonempty",
        |(lo, len, lo_closed, hi_closed, unbounded)| {
            if unbounded {
                Interval::new(lo, f64::INFINITY, lo_closed, false)
            } else {
                Interval::new(lo, lo + len, lo_closed, hi_closed)
            }
        },
    )
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(), 0..6).prop_map(IntervalSet::from_intervals)
}

/// Sample points to probe membership with (includes the interesting
/// boundary region).
fn probes() -> Vec<f64> {
    let mut v: Vec<f64> = (0..60).map(|i| i as f64 * 2.3).collect();
    v.extend([0.0, 0.5, 1.0, 99.9, 100.0, 119.9, 1e6]);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_is_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        for x in probes() {
            prop_assert_eq!(u.contains(x), a.contains(x) || b.contains(x), "at {}", x);
        }
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_set(), b in arb_set()) {
        let i = a.intersect(&b);
        for x in probes() {
            prop_assert_eq!(i.contains(x), a.contains(x) && b.contains(x), "at {}", x);
        }
    }

    #[test]
    fn complement_is_pointwise_not(a in arb_set()) {
        let c = a.complement();
        for x in probes() {
            prop_assert_eq!(c.contains(x), !a.contains(x), "at {}", x);
        }
    }

    #[test]
    fn double_complement_is_identity_pointwise(a in arb_set()) {
        let cc = a.complement().complement();
        for x in probes() {
            prop_assert_eq!(cc.contains(x), a.contains(x), "at {}", x);
        }
    }

    #[test]
    fn de_morgan(a in arb_set(), b in arb_set()) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        for x in probes() {
            prop_assert_eq!(lhs.contains(x), rhs.contains(x), "at {}", x);
        }
    }

    #[test]
    fn measure_additivity_bounds(a in arb_set(), b in arb_set()) {
        // |A ∪ B| + |A ∩ B| = |A| + |B| for finite-measure parts.
        let lhs = a.union(&b).measure() + a.intersect(&b).measure();
        let rhs = a.measure() + b.measure();
        if lhs.is_finite() && rhs.is_finite() {
            prop_assert!((lhs - rhs).abs() < 1e-6, "{} vs {}", lhs, rhs);
        }
    }

    #[test]
    fn normalization_sorted_disjoint(a in arb_set()) {
        let ivs = a.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].hi() <= w[1].lo(), "overlap: {} then {}", w[0], w[1]);
            if w[0].hi() == w[1].lo() {
                prop_assert!(
                    !w[0].hi_closed() && !w[1].lo_closed(),
                    "mergeable neighbors kept apart: {} | {}", w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn picked_points_are_members(a in arb_set(), u in 0.0f64..1.0) {
        // Unbounded sets are truncated the way the engine does it.
        let capped = if a.sup().map_or(false, f64::is_infinite) { a.truncate(1e4) } else { a.clone() };
        if let Some(x) = capped.pick(u) {
            prop_assert!(capped.contains(x), "picked {} outside {}", x, capped);
        } else {
            prop_assert!(capped.is_empty());
        }
    }

    #[test]
    fn earliest_and_latest_are_members(a in arb_set()) {
        if let Some(e) = a.earliest_point() {
            prop_assert!(a.contains(e), "earliest {} outside {}", e, a);
        }
        if let Some(l) = a.latest_point() {
            prop_assert!(a.contains(l), "latest {} outside {}", l, a);
        }
    }

    #[test]
    fn truncate_caps_sup(a in arb_set(), cap in 0.0f64..150.0) {
        let t = a.truncate(cap);
        if let Some(s) = t.sup() {
            prop_assert!(s <= cap + 1e-12);
        }
        for x in probes() {
            prop_assert_eq!(t.contains(x), a.contains(x) && x <= cap, "at {}", x);
        }
    }

    #[test]
    fn prefix_from_zero_is_prefix(a in arb_set()) {
        if let Some((hi, closed)) = a.prefix_from_zero() {
            prop_assert!(a.contains(0.0));
            // Everything strictly inside [0, hi) is in the set.
            for x in probes() {
                if x < hi {
                    prop_assert!(a.contains(x), "gap at {} before {}", x, hi);
                }
            }
            if closed && hi.is_finite() {
                prop_assert!(a.contains(hi));
            }
        } else {
            prop_assert!(!a.contains(0.0));
        }
    }
}
