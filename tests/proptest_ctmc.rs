//! Randomized tests for the CTMC pipeline: lumping preserves time-bounded
//! reachability on random chains; transient distributions stay stochastic;
//! vanishing elimination conserves probability.

mod common;

use common::*;
use slimsim::ctmc::ctmc::Ctmc;
use slimsim::ctmc::eliminate::eliminate;
use slimsim::ctmc::imc::{Imc, ImcState};
use slimsim::ctmc::lumping::lump;
use slimsim::ctmc::transient::{timed_reachability, transient_distribution, TransientConfig};

/// A random CTMC with up to `max_n` states, sparse random rates, random
/// goal labels.
fn ctmc(rng: &mut StdRng, max_n: usize) -> Ctmc {
    let n = usize_in(rng, 2, max_n + 1);
    let rates: Vec<Vec<(usize, f64)>> = (0..n)
        .map(|s| {
            let row = vec_of(rng, 0, 4, |rng| (rng.gen_range(0..n), f64_in(rng, 0.1, 5.0)));
            // No self-loops (they are meaningless in a CTMC) and merge
            // duplicate targets.
            let mut acc = std::collections::BTreeMap::new();
            for (t, r) in row {
                if t != s {
                    *acc.entry(t).or_insert(0.0) += r;
                }
            }
            acc.into_iter().collect()
        })
        .collect();
    let goal = (0..n).map(|_| rng.gen::<bool>()).collect();
    Ctmc { rates, goal, initial: vec![(0, 1.0)] }
}

#[test]
fn lumping_preserves_timed_reachability() {
    let mut rng = StdRng::seed_from_u64(0x5eed_c3c1);
    for case in 0..128 {
        let c = ctmc(&mut rng, 8);
        let t = f64_in(&mut rng, 0.1, 5.0);
        let cfg = TransientConfig::default();
        let direct = timed_reachability(&c, t, &cfg);
        let lumped = lump(&c);
        let quotient = timed_reachability(&lumped.quotient, t, &cfg);
        assert!(
            (direct - quotient).abs() < 1e-7,
            "case {case}: direct {direct} vs quotient {quotient} ({} -> {} states)",
            c.len(),
            lumped.quotient.len()
        );
    }
}

#[test]
fn lumping_respects_goal_labels() {
    let mut rng = StdRng::seed_from_u64(0x5eed_90a1);
    for case in 0..128 {
        let c = ctmc(&mut rng, 8);
        let lumped = lump(&c);
        for (s, &b) in lumped.block_of.iter().enumerate() {
            assert_eq!(c.goal[s], lumped.quotient.goal[b], "case {case}: state {s} block {b}");
        }
    }
}

#[test]
fn transient_distribution_stochastic() {
    let mut rng = StdRng::seed_from_u64(0x5eed_d157);
    for case in 0..128 {
        let c = ctmc(&mut rng, 8);
        let t = f64_in(&mut rng, 0.0, 10.0);
        let pi = transient_distribution(&c, t, &TransientConfig::default());
        let mass: f64 = pi.iter().sum();
        assert!((mass - 1.0).abs() < 1e-7, "case {case}: mass {mass}");
        assert!(pi.iter().all(|&p| p >= -1e-10), "case {case}");
    }
}

#[test]
fn reachability_monotone_in_time() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0101);
    for case in 0..128 {
        let c = ctmc(&mut rng, 6);
        let t = f64_in(&mut rng, 0.1, 3.0);
        let cfg = TransientConfig::default();
        let p1 = timed_reachability(&c, t, &cfg);
        let p2 = timed_reachability(&c, t * 2.0, &cfg);
        assert!(p2 >= p1 - 1e-9, "case {case}: P(◇[0,{t}]) = {p1} > P(◇[0,{}]) = {p2}", t * 2.0);
    }
}

#[test]
fn elimination_conserves_probability() {
    let mut rng = StdRng::seed_from_u64(0x5eed_e11a);
    for case in 0..64 {
        let n = usize_in(&mut rng, 3, 8);
        let fan = usize_in(&mut rng, 1, 3);
        // A vanishing chain: tangible 0 --1.0--> vanishing 1..n-2 --> tangible n-1.
        let mut states = Vec::new();
        states.push(ImcState { interactive: vec![], markovian: vec![(1, 1.0)], goal: false });
        for i in 1..n - 1 {
            let succs: Vec<usize> = (0..fan).map(|k| ((i + 1 + k) % n).max(1)).collect();
            let succs = succs.into_iter().map(|s| if s <= i { n - 1 } else { s }).collect();
            states.push(ImcState { interactive: succs, markovian: vec![], goal: false });
        }
        states.push(ImcState { interactive: vec![], markovian: vec![], goal: true });
        let imc = Imc { states };
        let ctmc = eliminate(&imc).expect("acyclic vanishing chain");
        assert!(ctmc.check_valid().is_ok(), "case {case}: {:?}", ctmc.check_valid());
        // All rate mass of state 0 is conserved (redistributed, not lost).
        let init_ctmc_state = ctmc.initial[0].0;
        let total: f64 = ctmc.rates[init_ctmc_state].iter().map(|&(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: rate mass {total}");
    }
}
