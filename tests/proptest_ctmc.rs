//! Property tests for the CTMC pipeline: lumping preserves time-bounded
//! reachability on random chains; transient distributions stay stochastic;
//! vanishing elimination conserves probability.

use proptest::prelude::*;
use slimsim::ctmc::ctmc::Ctmc;
use slimsim::ctmc::eliminate::eliminate;
use slimsim::ctmc::imc::{Imc, ImcState};
use slimsim::ctmc::lumping::lump;
use slimsim::ctmc::transient::{timed_reachability, transient_distribution, TransientConfig};

/// A random CTMC with `n` states, sparse random rates, random goal labels.
fn arb_ctmc(max_n: usize) -> impl Strategy<Value = Ctmc> {
    (2..=max_n).prop_flat_map(|n| {
        let rows = prop::collection::vec(
            prop::collection::vec((0..n, 0.1f64..5.0), 0..4),
            n,
        );
        let goals = prop::collection::vec(any::<bool>(), n);
        (rows, goals).prop_map(move |(rows, goal)| {
            let rates: Vec<Vec<(usize, f64)>> = rows
                .into_iter()
                .enumerate()
                .map(|(s, mut row)| {
                    // No self-loops (they are meaningless in a CTMC) and
                    // merge duplicate targets.
                    row.retain(|&(t, _)| t != s);
                    let mut acc = std::collections::BTreeMap::new();
                    for (t, r) in row {
                        *acc.entry(t).or_insert(0.0) += r;
                    }
                    acc.into_iter().collect()
                })
                .collect();
            Ctmc { rates, goal, initial: vec![(0, 1.0)] }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lumping_preserves_timed_reachability(c in arb_ctmc(8), t in 0.1f64..5.0) {
        let cfg = TransientConfig::default();
        let direct = timed_reachability(&c, t, &cfg);
        let lumped = lump(&c);
        let quotient = timed_reachability(&lumped.quotient, t, &cfg);
        prop_assert!(
            (direct - quotient).abs() < 1e-7,
            "direct {} vs quotient {} ({} -> {} states)",
            direct, quotient, c.len(), lumped.quotient.len()
        );
    }

    #[test]
    fn lumping_respects_goal_labels(c in arb_ctmc(8)) {
        let lumped = lump(&c);
        for (s, &b) in lumped.block_of.iter().enumerate() {
            prop_assert_eq!(c.goal[s], lumped.quotient.goal[b], "state {} block {}", s, b);
        }
    }

    #[test]
    fn transient_distribution_stochastic(c in arb_ctmc(8), t in 0.0f64..10.0) {
        let pi = transient_distribution(&c, t, &TransientConfig::default());
        let mass: f64 = pi.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-7, "mass {}", mass);
        prop_assert!(pi.iter().all(|&p| p >= -1e-10));
    }

    #[test]
    fn reachability_monotone_in_time(c in arb_ctmc(6), t in 0.1f64..3.0) {
        let cfg = TransientConfig::default();
        let p1 = timed_reachability(&c, t, &cfg);
        let p2 = timed_reachability(&c, t * 2.0, &cfg);
        prop_assert!(p2 >= p1 - 1e-9, "P(◇[0,{}]) = {} > P(◇[0,{}]) = {}", t, p1, t * 2.0, p2);
    }

    #[test]
    fn elimination_conserves_probability(n in 3usize..8, fan in 1usize..3) {
        // A vanishing chain: tangible 0 --1.0--> vanishing 1..n-2 --> tangible n-1.
        let mut states = Vec::new();
        states.push(ImcState { interactive: vec![], markovian: vec![(1, 1.0)], goal: false });
        for i in 1..n - 1 {
            let succs: Vec<usize> = (0..fan).map(|k| ((i + 1 + k) % n).max(1)).collect();
            let succs = succs.into_iter().map(|s| if s <= i { n - 1 } else { s }).collect();
            states.push(ImcState { interactive: succs, markovian: vec![], goal: false });
        }
        states.push(ImcState { interactive: vec![], markovian: vec![], goal: true });
        let imc = Imc { states };
        let ctmc = eliminate(&imc).expect("acyclic vanishing chain");
        prop_assert!(ctmc.check_valid().is_ok(), "{:?}", ctmc.check_valid());
        // All rate mass of state 0 is conserved (redistributed, not lost).
        let init_ctmc_state = ctmc.initial[0].0;
        let total: f64 = ctmc.rates[init_ctmc_state].iter().map(|&(_, r)| r).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "rate mass {}", total);
    }
}
