//! Differential tests pinning the compiled step-table kernel to the
//! legacy allocating network API on every model-zoo system.
//!
//! The compiled kernel ([`StepTables`] + [`StepScratch`]) is the hot path
//! of the simulator; the legacy per-call methods (`delay_window`,
//! `guarded_candidates`, `markovian_candidates`, `advance`, `apply`)
//! remain as the reference semantics. These tests drive long seeded
//! pseudo-random walks over the real paper models and require both APIs
//! to agree *exactly* at every step — windows, candidate order, rates,
//! and successor states — and additionally require the engine to produce
//! identical path outcomes whether its scratch workspace is fresh per
//! path or reused (dirty) across paths, strategies, and models.

use slim_models::{
    gps_network, power_system_network, repair_network, sensor_filter_network, voting_network,
    GpsParams, PowerSystemParams, RepairParams, SensorFilterParams, VotingParams,
};
use slimsim::prelude::*;

/// Deterministic linear-congruential driver for the differential walks
/// (no RNG dependency: the walk itself is part of the test's identity).
fn lcg(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 33
}

/// Every paper model, by name, with its goal variable where one exists.
fn model_zoo() -> Vec<(&'static str, Network, Option<&'static str>)> {
    vec![
        (
            "sensor_filter",
            sensor_filter_network(&SensorFilterParams::default()),
            Some(slim_models::GOAL_VAR),
        ),
        ("voting", voting_network(&VotingParams::default()), Some(slim_models::VOTING_GOAL_VAR)),
        ("repair", repair_network(&RepairParams::default()), Some(slim_models::REPAIR_GOAL_VAR)),
        ("gps", gps_network(&GpsParams::default()), None),
        (
            "power_system",
            power_system_network(&PowerSystemParams::default()),
            Some(slim_models::POWER_FAILED_VAR),
        ),
    ]
}

fn assert_cands_eq(name: &str, legacy: &[GuardedCandidate], compiled: &[CandidateBuf]) {
    assert_eq!(legacy.len(), compiled.len(), "{name}: candidate count diverged");
    for (l, c) in legacy.iter().zip(compiled) {
        assert_eq!(l.transition.action, c.action, "{name}: action diverged");
        assert_eq!(l.transition.parts, c.parts, "{name}: participants diverged");
        assert_eq!(l.window, c.window, "{name}: enabling window diverged");
        assert_eq!(l.urgent, c.urgent, "{name}: urgency flag diverged");
    }
}

/// A long pseudo-random walk over each zoo model where every step
/// compares the compiled kernel against the legacy API: delay windows,
/// guarded candidates (order included — the order feeds the RNG),
/// Markovian rates, and the `advance`/`apply` successor states.
#[test]
fn model_zoo_compiled_kernel_matches_legacy() {
    for (name, net, _) in model_zoo() {
        let tables = net.compile();
        let mut s = StepScratch::new();
        let mut seed = 0x5eed_0001_u64 ^ name.len() as u64;
        let mut window = IntervalSet::empty();

        for path in 0..8u64 {
            seed ^= (path + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut st = net.initial_state().unwrap();
            let mut st_c = st.clone();
            for _ in 0..80 {
                assert_eq!(st, st_c, "{name}: states diverged");
                let w = net.delay_window(&st).unwrap();
                net.delay_window_into(&tables, &mut s, &st_c, &mut window).unwrap();
                assert_eq!(w, window, "{name}: delay windows diverged");

                let cands = net.guarded_candidates(&st).unwrap();
                net.guarded_candidates_into(&tables, &mut s, &st_c).unwrap();
                assert_cands_eq(name, &cands, s.candidates());

                let markov = net.markovian_candidates(&st);
                net.markovian_candidates_into(&tables, &mut s, &st_c);
                assert_eq!(markov.len(), s.markovian().len(), "{name}: Markovian count");
                for (l, &(p, t, rate)) in markov.iter().zip(s.markovian()) {
                    assert_eq!(l.transition.parts, vec![(p, t)], "{name}: Markovian parts");
                    assert_eq!(l.rate, rate, "{name}: Markovian rate");
                }

                // Drive: a guarded candidate enabled inside the delay
                // window if one exists, else a Markovian jump, else stop.
                let pick = lcg(&mut seed) as usize;
                let fired = cands
                    .iter()
                    .cycle()
                    .skip(pick % cands.len().max(1))
                    .take(cands.len())
                    .find(|cand| !cand.window.intersect(&w).is_empty());
                if let Some(cand) = fired {
                    let joint = cand.window.intersect(&w);
                    let lo = joint.earliest_point().unwrap();
                    let frac = (lcg(&mut seed) % 101) as f64 / 100.0;
                    let d = match joint.sup().filter(|sup| sup.is_finite()) {
                        Some(sup) => lo + (sup - lo).max(0.0) * frac * 0.5,
                        None => lo,
                    };
                    let d = if joint.contains(d) { d } else { lo };
                    st = net.advance(&st, d).unwrap();
                    net.advance_mut(&tables, &mut s, &mut st_c, d, &window).unwrap();
                    assert_eq!(st, st_c, "{name}: advance diverged");
                    st = net.apply(&st, &cand.transition).unwrap();
                    net.apply_mut(&tables, &mut s, &mut st_c, &cand.transition.parts).unwrap();
                } else if !markov.is_empty() {
                    let sup = w.sup().unwrap_or(0.0);
                    let d = if sup.is_finite() { sup * 0.9 } else { 1.0 };
                    st = net.advance(&st, d).unwrap();
                    net.advance_mut(&tables, &mut s, &mut st_c, d, &window).unwrap();
                    assert_eq!(st, st_c, "{name}: advance diverged");
                    let m = &markov[lcg(&mut seed) as usize % markov.len()];
                    st = net.apply(&st, &m.transition).unwrap();
                    net.apply_mut(&tables, &mut s, &mut st_c, &m.transition.parts).unwrap();
                } else {
                    break;
                }
            }
        }
    }
}

/// One `SimScratch` reused — dirty — across models, strategies, and
/// seeds must yield exactly the outcomes of a fresh scratch per path.
#[test]
fn model_zoo_outcomes_identical_with_reused_scratch() {
    let mut shared = SimScratch::new();
    for (name, net, goal_var) in model_zoo() {
        let goal = match goal_var {
            Some(v) => Goal::expr(Expr::var(net.var_id(v).unwrap())),
            None => Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap(),
        };
        let property = TimedReach::new(goal, 100.0);
        let gen = PathGenerator::new(&net, &property, 10_000);
        for kind in [StrategyKind::Asap, StrategyKind::Progressive, StrategyKind::MaxTime] {
            for seed in 0..20u64 {
                let mut rng_a = slimsim::stats::rng::path_rng(7, seed);
                let mut rng_b = slimsim::stats::rng::path_rng(7, seed);
                let a = gen
                    .generate_with(&mut shared, kind.instantiate().as_mut(), &mut rng_a)
                    .unwrap();
                let b = gen.generate(kind.instantiate().as_mut(), &mut rng_b).unwrap();
                assert_eq!(a, b, "{name}/{kind}/seed {seed}: reused scratch diverged");
            }
        }
    }
}

/// The committed golden trace re-captures byte-identically through the
/// compiled kernel even on a *reused* scratch that previously ran other
/// models — the strongest form of the process-restart determinism
/// contract under the allocation-free engine.
#[test]
fn golden_trace_reproduced_on_reused_scratch() {
    let text = include_str!("golden/witness-goal.jsonl");
    let events = parse_trace(text).expect("golden trace parses");
    let TraceEvent::Start { model, path_index, seed, strategy, bound, max_steps, args, .. } =
        events.first().expect("golden trace is nonempty").clone()
    else {
        panic!("golden trace must begin with a Start header");
    };
    assert_eq!(model, "voting");
    let net = voting_network(&VotingParams::default());
    let goal_var = args.iter().find(|(k, _)| k == "goal-var").map(|(_, v)| v.as_str()).unwrap();
    let goal = Goal::expr(Expr::var(net.var_id(goal_var).unwrap()));
    let property = TimedReach::new(goal, bound);
    let gen = PathGenerator::new(&net, &property, max_steps);
    let kind = StrategyKind::parse(&strategy).unwrap();

    // Dirty the scratch with unrelated paths first.
    let mut scratch = SimScratch::new();
    for warm in 0..8 {
        let mut rng = slimsim::stats::rng::path_rng(seed ^ 0xdead, warm);
        gen.generate_with(&mut scratch, kind.instantiate().as_mut(), &mut rng).unwrap();
    }

    let mut rng = slimsim::stats::rng::path_rng(seed, path_index);
    let mut sink = MemorySink::default();
    {
        let mut tracer = PathTracer::new(&net, &mut sink);
        gen.generate_traced_with(&mut scratch, kind.instantiate().as_mut(), &mut rng, &mut tracer)
            .expect("golden path regenerates");
    }
    let golden_body: Vec<&str> = text.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let regenerated = events_to_json_lines(&sink.events);
    let regenerated_body: Vec<&str> = regenerated.lines().collect();
    assert_eq!(regenerated_body, golden_body, "compiled kernel broke golden byte-identity");
}
