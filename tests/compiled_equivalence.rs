//! Differential tests pinning the compiled step-table kernel to the
//! legacy allocating network API on every model-zoo system.
//!
//! The compiled kernel ([`StepTables`] + [`StepScratch`]) is the hot path
//! of the simulator; the legacy per-call methods (`delay_window`,
//! `guarded_candidates`, `markovian_candidates`, `advance`, `apply`)
//! remain as the reference semantics. These tests drive long seeded
//! pseudo-random walks over the real paper models and require both APIs
//! to agree *exactly* at every step — windows, candidate order, rates,
//! and successor states — and additionally require the engine to produce
//! identical path outcomes whether its scratch workspace is fresh per
//! path or reused (dirty) across paths, strategies, and models.

use slim_analysis::analyze_network;
use slim_models::{
    gps_network, power_system_network, repair_network, sensor_filter_network, voting_network,
    GpsParams, PowerSystemParams, RepairParams, SensorFilterParams, VotingParams,
};
use slimsim::prelude::*;

/// Deterministic linear-congruential driver for the differential walks
/// (no RNG dependency: the walk itself is part of the test's identity).
fn lcg(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 33
}

/// Every paper model, by name, with its goal variable where one exists.
fn model_zoo() -> Vec<(&'static str, Network, Option<&'static str>)> {
    vec![
        (
            "sensor_filter",
            sensor_filter_network(&SensorFilterParams::default()),
            Some(slim_models::GOAL_VAR),
        ),
        ("voting", voting_network(&VotingParams::default()), Some(slim_models::VOTING_GOAL_VAR)),
        ("repair", repair_network(&RepairParams::default()), Some(slim_models::REPAIR_GOAL_VAR)),
        ("gps", gps_network(&GpsParams::default()), None),
        (
            "power_system",
            power_system_network(&PowerSystemParams::default()),
            Some(slim_models::POWER_FAILED_VAR),
        ),
    ]
}

fn assert_cands_eq(name: &str, legacy: &[GuardedCandidate], compiled: &[CandidateBuf]) {
    assert_eq!(legacy.len(), compiled.len(), "{name}: candidate count diverged");
    for (l, c) in legacy.iter().zip(compiled) {
        assert_eq!(l.transition.action, c.action, "{name}: action diverged");
        assert_eq!(l.transition.parts, c.parts, "{name}: participants diverged");
        assert_eq!(l.window, c.window, "{name}: enabling window diverged");
        assert_eq!(l.urgent, c.urgent, "{name}: urgency flag diverged");
    }
}

/// A long pseudo-random walk over each zoo model where every step
/// compares the compiled kernel against the legacy API: delay windows,
/// guarded candidates (order included — the order feeds the RNG),
/// Markovian rates, and the `advance`/`apply` successor states.
#[test]
fn model_zoo_compiled_kernel_matches_legacy() {
    for (name, net, _) in model_zoo() {
        let tables = net.compile();
        let mut s = StepScratch::new();
        let mut seed = 0x5eed_0001_u64 ^ name.len() as u64;
        let mut window = IntervalSet::empty();

        for path in 0..8u64 {
            seed ^= (path + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut st = net.initial_state().unwrap();
            let mut st_c = st.clone();
            for _ in 0..80 {
                assert_eq!(st, st_c, "{name}: states diverged");
                let w = net.delay_window(&st).unwrap();
                net.delay_window_into(&tables, &mut s, &st_c, &mut window).unwrap();
                assert_eq!(w, window, "{name}: delay windows diverged");

                let cands = net.guarded_candidates(&st).unwrap();
                net.guarded_candidates_into(&tables, &mut s, &st_c).unwrap();
                assert_cands_eq(name, &cands, s.candidates());

                let markov = net.markovian_candidates(&st);
                net.markovian_candidates_into(&tables, &mut s, &st_c);
                assert_eq!(markov.len(), s.markovian().len(), "{name}: Markovian count");
                for (l, &(p, t, rate)) in markov.iter().zip(s.markovian()) {
                    assert_eq!(l.transition.parts, vec![(p, t)], "{name}: Markovian parts");
                    assert_eq!(l.rate, rate, "{name}: Markovian rate");
                }

                // Drive: a guarded candidate enabled inside the delay
                // window if one exists, else a Markovian jump, else stop.
                let pick = lcg(&mut seed) as usize;
                let fired = cands
                    .iter()
                    .cycle()
                    .skip(pick % cands.len().max(1))
                    .take(cands.len())
                    .find(|cand| !cand.window.intersect(&w).is_empty());
                if let Some(cand) = fired {
                    let joint = cand.window.intersect(&w);
                    let lo = joint.earliest_point().unwrap();
                    let frac = (lcg(&mut seed) % 101) as f64 / 100.0;
                    let d = match joint.sup().filter(|sup| sup.is_finite()) {
                        Some(sup) => lo + (sup - lo).max(0.0) * frac * 0.5,
                        None => lo,
                    };
                    let d = if joint.contains(d) { d } else { lo };
                    st = net.advance(&st, d).unwrap();
                    net.advance_mut(&tables, &mut s, &mut st_c, d, &window).unwrap();
                    assert_eq!(st, st_c, "{name}: advance diverged");
                    st = net.apply(&st, &cand.transition).unwrap();
                    net.apply_mut(&tables, &mut s, &mut st_c, &cand.transition.parts).unwrap();
                } else if !markov.is_empty() {
                    let sup = w.sup().unwrap_or(0.0);
                    let d = if sup.is_finite() { sup * 0.9 } else { 1.0 };
                    st = net.advance(&st, d).unwrap();
                    net.advance_mut(&tables, &mut s, &mut st_c, d, &window).unwrap();
                    assert_eq!(st, st_c, "{name}: advance diverged");
                    let m = &markov[lcg(&mut seed) as usize % markov.len()];
                    st = net.apply(&st, &m.transition).unwrap();
                    net.apply_mut(&tables, &mut s, &mut st_c, &m.transition.parts).unwrap();
                } else {
                    break;
                }
            }
        }
    }
}

/// One `SimScratch` reused — dirty — across models, strategies, and
/// seeds must yield exactly the outcomes of a fresh scratch per path.
#[test]
fn model_zoo_outcomes_identical_with_reused_scratch() {
    let mut shared = SimScratch::new();
    for (name, net, goal_var) in model_zoo() {
        let goal = match goal_var {
            Some(v) => Goal::expr(Expr::var(net.var_id(v).unwrap())),
            None => Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap(),
        };
        let property = TimedReach::new(goal, 100.0);
        let gen = PathGenerator::new(&net, &property, 10_000);
        for kind in [StrategyKind::Asap, StrategyKind::Progressive, StrategyKind::MaxTime] {
            for seed in 0..20u64 {
                let mut rng_a = slimsim::stats::rng::path_rng(7, seed);
                let mut rng_b = slimsim::stats::rng::path_rng(7, seed);
                let a = gen
                    .generate_with(&mut shared, kind.instantiate().as_mut(), &mut rng_a)
                    .unwrap();
                let b = gen.generate(kind.instantiate().as_mut(), &mut rng_b).unwrap();
                assert_eq!(a, b, "{name}/{kind}/seed {seed}: reused scratch diverged");
            }
        }
    }
}

/// The goal property used by the batched differential walks, mirroring
/// [`model_zoo_outcomes_identical_with_reused_scratch`].
fn zoo_property(net: &Network, goal_var: Option<&str>) -> TimedReach {
    let goal = match goal_var {
        Some(v) => Goal::expr(Expr::var(net.var_id(v).unwrap())),
        None => Goal::in_location(net, "gps.error_GpsError", "permanent").unwrap(),
    };
    TimedReach::new(goal, 100.0)
}

/// The scalar reference stream: path `i` generated one at a time on a
/// fresh RNG derived from `(seed, i)`.
fn scalar_outcomes(gen: &PathGenerator<'_>, kind: StrategyKind, n: u64) -> Vec<PathOutcome> {
    let mut sim = SimScratch::new();
    (0..n)
        .map(|i| {
            let mut rng = slimsim::stats::rng::path_rng(7, i);
            gen.generate_with(&mut sim, kind.instantiate().as_mut(), &mut rng).unwrap()
        })
        .collect()
}

/// The same `n` paths through the batched SoA kernel at lane width
/// `lanes`, on a (possibly dirty) shared [`BatchScratch`].
fn batched_outcomes(
    gen: &PathGenerator<'_>,
    kind: StrategyKind,
    n: u64,
    lanes: usize,
    scratch: &mut BatchScratch,
) -> Vec<PathOutcome> {
    let mut batch = Vec::new();
    let mut out = Vec::new();
    let mut i = 0u64;
    while i < n {
        let count = ((n - i) as usize).min(lanes);
        gen.generate_batch_with(
            scratch,
            kind.instantiate().as_mut(),
            7,
            i,
            1,
            count,
            None,
            &mut batch,
        );
        out.extend(batch.drain(..).map(|r| r.unwrap()));
        i += count as u64;
    }
    out
}

/// The batched kernel must reproduce the scalar per-path outcome stream
/// *lane-exactly* on every zoo model: identical verdicts, step counts
/// and end times at every lane width, because lane `j` of a batch
/// starting at path `i` consumes exactly the RNG stream of path `i + j`.
/// One `BatchScratch` is deliberately reused — dirty — across models,
/// strategies and widths (including shrinking from 32 lanes back to 1),
/// so stale lane state from a previous batch can never leak.
#[test]
fn model_zoo_batched_matches_scalar_lane_exact() {
    let mut scratch = BatchScratch::new();
    for (name, net, goal_var) in model_zoo() {
        let property = zoo_property(&net, goal_var);
        let gen = PathGenerator::new(&net, &property, 10_000);
        for kind in [StrategyKind::Asap, StrategyKind::Progressive] {
            let scalar = scalar_outcomes(&gen, kind, 64);
            for lanes in [1usize, 4, 8, 32] {
                let batched = batched_outcomes(&gen, kind, 64, lanes, &mut scratch);
                assert_eq!(
                    batched, scalar,
                    "{name}/{kind}: batched kernel diverged at lane width {lanes}"
                );
            }
        }
    }
}

/// Lane-exact equivalence must also hold on *pruned* networks: the
/// fixpoint's prune plan renumbers locations and transitions, and the
/// batched kernel runs the pruned step tables through exactly the same
/// RNG draws as the scalar path.
///
/// The zoo models are prune-tight (their plans are no-ops), so the test
/// additionally builds a stochastic model with a provably dead guard —
/// `n ≥ 5` on a never-written `n = 0` — whose plan drops a transition
/// and a location, guaranteeing a genuinely renumbered network runs.
#[test]
fn pruned_batched_matches_scalar_lane_exact() {
    let mut b = NetworkBuilder::new();
    let n = b.var("n", VarType::Int { lo: 0, hi: 10 }, Value::Int(0));
    let fail = b.var("fail", VarType::Bool, Value::Bool(false));
    let mut a = AutomatonBuilder::new("m");
    let up = a.location("up");
    let down = a.location("down");
    a.markovian(up, 0.8, [Effect::assign(fail, Expr::bool(true))], down);
    a.markovian(down, 2.0, [Effect::assign(fail, Expr::bool(false))], up);
    b.add_automaton(a);
    let mut g = AutomatonBuilder::new("g");
    let g0 = g.location("wait");
    let dead = g.location("dead");
    g.guarded(g0, ActionId::TAU, Expr::var(n).ge(Expr::int(5)), [], dead);
    b.add_automaton(g);
    let net = b.build().unwrap();

    let mut scratch = BatchScratch::new();
    let mut nets: Vec<(&str, Network, &str)> = vec![("synthetic", net, "fail")];
    for (name, net, goal_var) in model_zoo() {
        // Location goals do not survive renumbering without a remap;
        // variable goals are untouched by pruning.
        if let Some(var) = goal_var {
            nets.push((name, net, var));
        }
    }
    let mut pruned_any = false;
    for (name, net, var) in nets {
        let plan = analyze_network(&net).prune_plan(&net);
        if plan.is_noop() {
            continue;
        }
        pruned_any = true;
        let (pruned, _maps) = net.prune(&plan);
        let goal = Goal::expr(Expr::var(pruned.var_id(var).unwrap()));
        let property = TimedReach::new(goal, 100.0);
        let gen = PathGenerator::new(&pruned, &property, 10_000);
        let scalar = scalar_outcomes(&gen, StrategyKind::Asap, 48);
        for lanes in [4usize, 32] {
            let batched = batched_outcomes(&gen, StrategyKind::Asap, 48, lanes, &mut scratch);
            assert_eq!(batched, scalar, "{name}: pruned batched kernel diverged at width {lanes}");
        }
    }
    assert!(pruned_any, "prune plans were all no-ops; the pruned leg never ran");
}

/// End-to-end lane-count independence: `analyze` must return the exact
/// same estimate (mean, samples, successes) whatever `batch_lanes` is
/// set to, including `1` (batching disabled). This is the user-visible
/// face of the lane determinism contract.
#[test]
fn runner_estimates_independent_of_batch_lanes() {
    let net = voting_network(&VotingParams::default());
    let goal = Goal::expr(Expr::var(net.var_id(slim_models::VOTING_GOAL_VAR).unwrap()));
    let property = TimedReach::new(goal, 100.0);
    let base = SimConfig::default()
        .with_accuracy(Accuracy::new(0.05, 0.05).unwrap())
        .with_strategy(StrategyKind::Asap)
        .with_seed(41);
    let reference = analyze(&net, &property, &base.with_batch_lanes(1)).unwrap();
    for lanes in [4usize, 16, 64] {
        let r = analyze(&net, &property, &base.with_batch_lanes(lanes)).unwrap();
        assert_eq!(
            r.estimate.mean.to_bits(),
            reference.estimate.mean.to_bits(),
            "estimate changed at batch_lanes {lanes}"
        );
        assert_eq!(r.estimate.samples, reference.estimate.samples, "samples at lanes {lanes}");
        assert_eq!(
            r.estimate.successes, reference.estimate.successes,
            "successes at lanes {lanes}"
        );
    }
}

/// The committed golden trace re-captures byte-identically through the
/// compiled kernel even on a *reused* scratch that previously ran other
/// models — the strongest form of the process-restart determinism
/// contract under the allocation-free engine.
#[test]
fn golden_trace_reproduced_on_reused_scratch() {
    let text = include_str!("golden/witness-goal.jsonl");
    let events = parse_trace(text).expect("golden trace parses");
    let TraceEvent::Start { model, path_index, seed, strategy, bound, max_steps, args, .. } =
        events.first().expect("golden trace is nonempty").clone()
    else {
        panic!("golden trace must begin with a Start header");
    };
    assert_eq!(model, "voting");
    let net = voting_network(&VotingParams::default());
    let goal_var = args.iter().find(|(k, _)| k == "goal-var").map(|(_, v)| v.as_str()).unwrap();
    let goal = Goal::expr(Expr::var(net.var_id(goal_var).unwrap()));
    let property = TimedReach::new(goal, bound);
    let gen = PathGenerator::new(&net, &property, max_steps);
    let kind = StrategyKind::parse(&strategy).unwrap();

    // Dirty the scratch with unrelated paths first.
    let mut scratch = SimScratch::new();
    for warm in 0..8 {
        let mut rng = slimsim::stats::rng::path_rng(seed ^ 0xdead, warm);
        gen.generate_with(&mut scratch, kind.instantiate().as_mut(), &mut rng).unwrap();
    }

    let mut rng = slimsim::stats::rng::path_rng(seed, path_index);
    let mut sink = MemorySink::default();
    {
        let mut tracer = PathTracer::new(&net, &mut sink);
        gen.generate_traced_with(&mut scratch, kind.instantiate().as_mut(), &mut rng, &mut tracer)
            .expect("golden path regenerates");
    }
    let golden_body: Vec<&str> = text.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let regenerated = events_to_json_lines(&sink.events);
    let regenerated_body: Vec<&str> = regenerated.lines().collect();
    assert_eq!(regenerated_body, golden_body, "compiled kernel broke golden byte-identity");
}

/// Batching must not perturb trace capture: traced paths fall back to
/// the scalar engine on the batch scratch's embedded `SimScratch`, and
/// the committed golden trace must re-capture byte-identically even
/// after batched (untraced) generation has dirtied every lane of that
/// scratch.
#[test]
fn golden_trace_byte_identical_with_batched_generation_active() {
    let text = include_str!("golden/witness-goal.jsonl");
    let events = parse_trace(text).expect("golden trace parses");
    let TraceEvent::Start { model, path_index, seed, strategy, bound, max_steps, args, .. } =
        events.first().expect("golden trace is nonempty").clone()
    else {
        panic!("golden trace must begin with a Start header");
    };
    assert_eq!(model, "voting");
    let net = voting_network(&VotingParams::default());
    let goal_var = args.iter().find(|(k, _)| k == "goal-var").map(|(_, v)| v.as_str()).unwrap();
    let goal = Goal::expr(Expr::var(net.var_id(goal_var).unwrap()));
    let property = TimedReach::new(goal, bound);
    let gen = PathGenerator::new(&net, &property, max_steps);
    let kind = StrategyKind::parse(&strategy).unwrap();

    // Dirty every lane with batched, untraced generation first.
    let mut scratch = BatchScratch::new();
    let mut batch = Vec::new();
    gen.generate_batch_with(
        &mut scratch,
        kind.instantiate().as_mut(),
        seed ^ 0xdead,
        0,
        1,
        16,
        None,
        &mut batch,
    );
    for r in batch.drain(..) {
        r.expect("warm-up batch paths succeed");
    }

    // The traced path runs through the scalar fallback on the same
    // (dirty) scratch.
    let mut rng = slimsim::stats::rng::path_rng(seed, path_index);
    let mut sink = MemorySink::default();
    {
        let mut tracer = PathTracer::new(&net, &mut sink);
        gen.generate_traced_with(
            scratch.sim_mut(),
            kind.instantiate().as_mut(),
            &mut rng,
            &mut tracer,
        )
        .expect("golden path regenerates");
    }
    let golden_body: Vec<&str> = text.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let regenerated = events_to_json_lines(&sink.events);
    let regenerated_body: Vec<&str> = regenerated.lines().collect();
    assert_eq!(regenerated_body, golden_body, "batched generation perturbed the golden trace");
}

/// Batching must not perturb witness capture: the selector records path
/// *indices* in consumption order, and consumption order is path-index
/// order at every lane width, so the selected indices — and the
/// re-generated witness traces, byte for byte — must be identical
/// whether batching is disabled or running 64 lanes wide.
#[test]
fn witness_capture_unperturbed_by_batching() {
    let net = voting_network(&VotingParams::default());
    let goal = Goal::expr(Expr::var(net.var_id(slim_models::VOTING_GOAL_VAR).unwrap()));
    let property = TimedReach::new(goal, 100.0);
    let base = SimConfig::default()
        .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
        .with_strategy(StrategyKind::Asap)
        .with_seed(23);
    let run = |lanes: usize| {
        let config = base.with_batch_lanes(lanes);
        let obs = SimObserver::new(1).with_witness_capture(2);
        analyze_observed(&net, &property, &config, Some(&obs)).unwrap();
        let selector = obs.witness_selection().unwrap();
        let witnesses =
            capture_witnesses(&net, &property, &config, &selector, TraceOptions::default())
                .unwrap();
        let rendered: Vec<(u64, String)> =
            witnesses.iter().map(|w| (w.index, events_to_json_lines(&w.events))).collect();
        (selector, rendered)
    };
    let reference = run(1);
    assert!(!reference.1.is_empty(), "the run selected no witnesses; the guard is vacuous");
    for lanes in [16usize, 64] {
        assert_eq!(run(lanes), reference, "witness capture diverged at batch_lanes {lanes}");
    }
}
