//! Randomized tests of the simulation engine over generated (but
//! well-formed) networks: every strategy must produce verdicts that
//! respect the path invariants, deterministically under a fixed seed.

mod common;

use common::*;
use slimsim::prelude::*;
use slimsim::stats::rng::path_rng;

#[derive(Debug, Clone)]
enum UnitKind {
    /// Clock-guarded window [a, b] with invariant x ≤ b.
    Timed { lo: f64, hi: f64 },
    /// Exponential fault with rate λ.
    Markovian { rate: f64 },
    /// Clock window that can also escalate to a second location.
    TwoStep { lo: f64, hi: f64, split: f64 },
}

fn unit(rng: &mut StdRng) -> UnitKind {
    match rng.gen_range(0..3) {
        0 => {
            let a = f64_in(rng, 0.1, 3.0);
            UnitKind::Timed { lo: a, hi: a + f64_in(rng, 0.1, 3.0) }
        }
        1 => UnitKind::Markovian { rate: f64_in(rng, 0.05, 5.0) },
        _ => {
            let a = f64_in(rng, 0.1, 2.0);
            let len = f64_in(rng, 0.2, 2.0);
            let frac = f64_in(rng, 0.0, 1.0).clamp(0.05, 0.95);
            UnitKind::TwoStep { lo: a, hi: a + len, split: a + len * frac }
        }
    }
}

/// Builds a network from unit descriptions; every unit sets its own flag.
fn build(units: &[UnitKind]) -> Network {
    let mut b = NetworkBuilder::new();
    let flags: Vec<VarId> = (0..units.len())
        .map(|i| b.var(format!("flag{i}"), VarType::Bool, Value::Bool(false)))
        .collect();
    for (i, u) in units.iter().enumerate() {
        let mut a = AutomatonBuilder::new(format!("u{i}"));
        match u {
            UnitKind::Timed { lo, hi } => {
                let x = b.var(format!("x{i}"), VarType::Clock, Value::Real(0.0));
                let l0 = a.location_with("wait", Expr::var(x).le(Expr::real(*hi)), []);
                let l1 = a.location("done");
                a.guarded(
                    l0,
                    ActionId::TAU,
                    Expr::var(x).ge(Expr::real(*lo)).and(Expr::var(x).le(Expr::real(*hi))),
                    [Effect::assign(flags[i], Expr::bool(true))],
                    l1,
                );
            }
            UnitKind::Markovian { rate } => {
                let l0 = a.location("ok");
                let l1 = a.location("dead");
                a.markovian(l0, *rate, [Effect::assign(flags[i], Expr::bool(true))], l1);
            }
            UnitKind::TwoStep { lo, hi, split } => {
                let x = b.var(format!("x{i}"), VarType::Clock, Value::Real(0.0));
                let l0 = a.location_with("wait", Expr::var(x).le(Expr::real(*hi)), []);
                let l1 = a.location("early");
                let l2 = a.location("late");
                a.guarded(
                    l0,
                    ActionId::TAU,
                    Expr::var(x).ge(Expr::real(*lo)).and(Expr::var(x).lt(Expr::real(*split))),
                    [Effect::assign(flags[i], Expr::bool(true))],
                    l1,
                );
                a.guarded(
                    l0,
                    ActionId::TAU,
                    Expr::var(x).ge(Expr::real(*split)).and(Expr::var(x).le(Expr::real(*hi))),
                    [Effect::assign(flags[i], Expr::bool(true))],
                    l2,
                );
            }
        }
        b.add_automaton(a);
    }
    b.build().expect("generated network is well-formed")
}

#[test]
fn paths_respect_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5eed_e061e);
    for case in 0..48 {
        let units = vec_of(&mut rng, 1, 4, unit);
        let bound = f64_in(&mut rng, 0.5, 8.0);
        let want_all = rng.gen::<bool>();
        let seed = rng.gen::<u64>() % 1000;

        let net = build(&units);
        let flags: Vec<Expr> =
            (0..units.len()).map(|i| Expr::var(net.var_id(&format!("flag{i}")).unwrap())).collect();
        let goal_expr = if want_all {
            Expr::all(flags.iter().cloned())
        } else {
            Expr::any(flags.iter().cloned())
        };
        let prop = TimedReach::new(Goal::expr(goal_expr), bound);
        let gen = PathGenerator::new(&net, &prop, 20_000);

        for kind in StrategyKind::ALL_EXTENDED {
            let mut s1 = kind.instantiate();
            let mut rng1 = path_rng(seed, 0);
            let out1 = gen
                .generate(s1.as_mut(), &mut rng1)
                .unwrap_or_else(|e| panic!("case {case}: {kind} failed: {e}"));
            assert!(out1.end_time >= -1e-12, "case {case}: {kind}: negative end time");
            assert!(out1.steps <= 20_000);
            if out1.verdict == Verdict::Satisfied {
                assert!(
                    out1.end_time <= bound + 1e-9,
                    "case {case}: {kind}: satisfied at {} past bound {bound}",
                    out1.end_time
                );
            }
            // Deterministic replay.
            let mut s2 = kind.instantiate();
            let mut rng2 = path_rng(seed, 0);
            let out2 = gen.generate(s2.as_mut(), &mut rng2).unwrap();
            assert_eq!(out1, out2, "case {case}: {kind} not deterministic");
        }
    }
}

#[test]
fn estimates_are_probabilities_and_asap_dominates_for_any_goal() {
    // For an "any flag" goal on independent units, ASAP fires the earliest
    // enabled transition, so it reaches SOME flag no later than MaxTime
    // does on every path prefix — its estimate must not be (statistically
    // significantly) lower.
    let mut rng = StdRng::seed_from_u64(0x5eed_a5a9);
    for case in 0..24 {
        let units = vec_of(&mut rng, 1, 3, unit);
        let bound = f64_in(&mut rng, 0.5, 5.0);

        let net = build(&units);
        let flags: Vec<Expr> =
            (0..units.len()).map(|i| Expr::var(net.var_id(&format!("flag{i}")).unwrap())).collect();
        let prop = TimedReach::new(Goal::expr(Expr::any(flags.iter().cloned())), bound);
        let acc = Accuracy::new(0.05, 0.1).unwrap();
        let mut probs = Vec::new();
        for kind in StrategyKind::ALL_EXTENDED {
            let cfg = SimConfig::default().with_accuracy(acc).with_strategy(kind).with_seed(7);
            let r = analyze(&net, &prop, &cfg).unwrap();
            assert!(
                (0.0..=1.0).contains(&r.probability()),
                "case {case}: {}: {}",
                kind,
                r.probability()
            );
            assert_eq!(r.stats.total(), r.estimate.samples);
            probs.push((kind, r.probability()));
        }
        let asap = probs.iter().find(|(k, _)| *k == StrategyKind::Asap).unwrap().1;
        let maxtime = probs.iter().find(|(k, _)| *k == StrategyKind::MaxTime).unwrap().1;
        assert!(
            asap >= maxtime - 3.0 * 0.05,
            "case {case}: ASAP {asap} should dominate MaxTime {maxtime} for an any-flag goal"
        );
    }
}
