//! Closed-form validation: models whose timed reachability probability is
//! known analytically, checked against the simulator (and, where the
//! model is untimed, the CTMC pipeline).

use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slimsim::prelude::*;

fn analyze_with(net: &Network, prop: &TimedReach, strategy: StrategyKind, eps: f64) -> f64 {
    let cfg = SimConfig::default()
        .with_accuracy(Accuracy::new(eps, 0.05).unwrap())
        .with_strategy(strategy)
        .with_seed(2024);
    analyze(net, prop, &cfg).unwrap().probability()
}

/// Erlang-2 first passage through two chained automata coupled by a flag:
/// stage 2 only starts after stage 1 completes.
#[test]
fn erlang_two_stage_first_passage() {
    let lambda = 2.0;
    let mut b = NetworkBuilder::new();
    let stage1_done = b.var("stage1_done", VarType::Bool, Value::Bool(false));

    let mut s1 = AutomatonBuilder::new("stage1");
    let a0 = s1.location("running");
    let a1 = s1.location("done");
    s1.markovian(a0, lambda, [Effect::assign(stage1_done, Expr::bool(true))], a1);
    b.add_automaton(s1);

    // Stage 2: an urgent guard releases it once stage 1 completes; its
    // own exponential then runs.
    let mut s2 = AutomatonBuilder::new("stage2");
    let w0 = s2.location("waiting");
    let w1 = s2.location("running");
    let w2 = s2.location("done");
    s2.guarded_urgent(w0, ActionId::TAU, Expr::var(stage1_done), [], w1);
    s2.markovian(w1, lambda, [], w2);
    b.add_automaton(s2);
    let net = b.build().unwrap();

    let goal = Goal::in_location(&net, "stage2", "done").unwrap();
    for t in [0.5, 1.0, 2.0] {
        let prop = TimedReach::new(goal.clone(), t);
        let exact = 1.0 - (-lambda * t).exp() * (1.0 + lambda * t);
        let p = analyze_with(&net, &prop, StrategyKind::Asap, 0.02);
        assert!((p - exact).abs() < 0.03, "t={t}: {p} vs Erlang {exact}");

        // The model is untimed — the CTMC pipeline must agree exactly.
        let done = net.loc_id("stage2", "done").unwrap();
        let goal_fn = move |s: &NetState| Ok(s.locs[done.0 .0] == done.1);
        let ctmc = check_timed_reachability(&net, &goal_fn, t, &PipelineConfig::default()).unwrap();
        assert!((ctmc.probability - exact).abs() < 1e-7, "t={t}: ctmc {}", ctmc.probability);
    }
}

/// Parallel independent faults: P(any fails by t) = 1 − ∏ e^{−λᵢt}.
#[test]
fn independent_fault_race() {
    let rates = [0.3, 0.7, 1.1];
    let mut b = NetworkBuilder::new();
    let mut flags = Vec::new();
    for (i, &r) in rates.iter().enumerate() {
        let flag = b.var(format!("f{i}"), VarType::Bool, Value::Bool(false));
        flags.push(flag);
        let mut a = AutomatonBuilder::new(format!("unit{i}"));
        let ok = a.location("ok");
        let dead = a.location("dead");
        a.markovian(ok, r, [Effect::assign(flag, Expr::bool(true))], dead);
        b.add_automaton(a);
    }
    let net = b.build().unwrap();
    let any = Goal::expr(Expr::any(flags.iter().map(|&f| Expr::var(f))));
    let t = 0.8;
    let prop = TimedReach::new(any, t);
    let exact = 1.0 - (-(rates.iter().sum::<f64>()) * t).exp();
    let p = analyze_with(&net, &prop, StrategyKind::Progressive, 0.02);
    assert!((p - exact).abs() < 0.03, "{p} vs {exact}");
}

/// Exponential fault racing a deterministic repair deadline at d:
/// P(fault before the deadline) = 1 − e^{−λd}.
#[test]
fn exponential_vs_deterministic_deadline() {
    let lambda = 0.9;
    let d = 1.3;
    let mut b = NetworkBuilder::new();
    let x = b.var("x", VarType::Clock, Value::Real(0.0));
    let failed = b.var("failed", VarType::Bool, Value::Bool(false));
    let safe = b.var("safe", VarType::Bool, Value::Bool(false));

    // The hazard: a fault with rate λ.
    let mut h = AutomatonBuilder::new("hazard");
    let armed = h.location("armed");
    let fired = h.location("fired");
    h.markovian(armed, lambda, [Effect::assign(failed, Expr::bool(true))], fired);
    b.add_automaton(h);

    // The shield: deterministically engages at time d (urgent).
    let mut sgd = AutomatonBuilder::new("shield");
    let off = sgd.location("off");
    let on = sgd.location("on");
    sgd.guarded_urgent(
        off,
        ActionId::TAU,
        Expr::var(x).ge(Expr::real(d)),
        [Effect::assign(safe, Expr::bool(true))],
        on,
    );
    b.add_automaton(sgd);
    let net = b.build().unwrap();

    // "Fault strictly before the shield" = bounded until:
    // P(not safe U[0,10] failed) — once `safe` flips first, failure
    // afterwards does not count.
    let goal = Goal::expr(Expr::var(failed));
    let hold = Goal::expr(Expr::var(safe)).not();
    let prop = TimedReach::until(hold, goal, 10.0);
    let exact = 1.0 - (-lambda * d).exp();
    for strategy in StrategyKind::ALL {
        let p = analyze_with(&net, &prop, strategy, 0.02);
        assert!((p - exact).abs() < 0.03, "{strategy}: {p} vs {exact}");
    }
}

/// Until with a probabilistic hold violation: two competing exponentials,
/// success only if the goal one fires first.
/// P(hold U goal) → λ_g / (λ_g + λ_v) for large bounds.
#[test]
fn until_competing_exponentials() {
    let (lg, lv) = (1.0, 3.0);
    let mut b = NetworkBuilder::new();
    let good = b.var("good", VarType::Bool, Value::Bool(false));
    let bad = b.var("bad", VarType::Bool, Value::Bool(false));
    let mut g = AutomatonBuilder::new("goal_proc");
    let g0 = g.location("l");
    let g1 = g.location("hit");
    g.markovian(g0, lg, [Effect::assign(good, Expr::bool(true))], g1);
    b.add_automaton(g);
    let mut v = AutomatonBuilder::new("viol_proc");
    let v0 = v.location("l");
    let v1 = v.location("hit");
    v.markovian(v0, lv, [Effect::assign(bad, Expr::bool(true))], v1);
    b.add_automaton(v);
    let net = b.build().unwrap();

    let prop = TimedReach::until(
        Goal::expr(Expr::var(bad)).not(),
        Goal::expr(Expr::var(good)),
        50.0, // effectively unbounded at these rates
    );
    let exact = lg / (lg + lv);
    let p = analyze_with(&net, &prop, StrategyKind::Asap, 0.02);
    assert!((p - exact).abs() < 0.03, "{p} vs {exact}");

    // The verdict counters classify the losing paths as hold violations.
    let cfg = SimConfig::default()
        .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
        .with_strategy(StrategyKind::Asap);
    let r = analyze(&net, &prop, &cfg).unwrap();
    assert!(r.stats.hold_violated > 0);
    assert_eq!(r.stats.hold_violated + r.stats.satisfied, r.stats.total());
}

/// The strategy-window textbook case: guard [a, b] with uniform
/// (Progressive) resolution racing an exponential.
/// P(exp fires before the scheduled instant) has the closed form
/// (1/(b−a)) ∫_a^b (1 − e^{−λs}) ds.
#[test]
fn progressive_uniform_vs_exponential_race() {
    let (a, bb, lambda) = (1.0, 3.0, 0.8);
    let mut b = NetworkBuilder::new();
    let x = b.var("x", VarType::Clock, Value::Real(0.0));
    let fault = b.var("fault", VarType::Bool, Value::Bool(false));

    let mut win = AutomatonBuilder::new("window");
    let w0 = win.location_with("open", Expr::var(x).le(Expr::real(bb)), []);
    let w1 = win.location("closed");
    win.guarded(
        w0,
        ActionId::TAU,
        Expr::var(x).ge(Expr::real(a)).and(Expr::var(x).le(Expr::real(bb))),
        [],
        w1,
    );
    b.add_automaton(win);
    let mut h = AutomatonBuilder::new("hazard");
    let h0 = h.location("armed");
    let h1 = h.location("fired");
    h.markovian(h0, lambda, [Effect::assign(fault, Expr::bool(true))], h1);
    b.add_automaton(h);
    let net = b.build().unwrap();

    // Fault strictly before the window transition fires.
    let hold = Goal::in_location(&net, "window", "open").unwrap();
    let prop = TimedReach::until(hold, Goal::expr(Expr::var(fault)), 10.0);
    // ∫_a^b (1 − e^{−λs}) ds / (b−a)
    let integral = (bb - a) - ((-lambda * a).exp() - (-lambda * bb).exp()) / lambda;
    let exact = integral / (bb - a);
    let p = analyze_with(&net, &prop, StrategyKind::Progressive, 0.02);
    assert!((p - exact).abs() < 0.03, "{p} vs {exact}");
}
