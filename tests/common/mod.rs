//! Shared helpers for the randomized property tests: small sampling
//! combinators over the workspace's own seeded RNG, so the test suite
//! needs no external property-testing framework. Every test derives its
//! cases from a fixed master seed and is fully reproducible.

#![allow(dead_code)]

pub use slimsim::stats::rng::StdRng;

/// Uniform `f64` in `[lo, hi)`.
pub fn f64_in(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + rng.gen::<f64>() * (hi - lo)
}

/// Uniform `i64` in `[lo, hi)`.
pub fn i64_in(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    lo + rng.gen_range(0..(hi - lo) as usize) as i64
}

/// Uniform `usize` in `[lo, hi)`.
pub fn usize_in(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..hi)
}

/// A uniformly chosen element of `items`.
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A `Vec` of `len ∈ [lo, hi)` elements drawn from `f`.
pub fn vec_of<T>(
    rng: &mut StdRng,
    lo: usize,
    hi: usize,
    mut f: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| f(rng)).collect()
}

/// `Some(f(rng))` with probability 1/2.
pub fn option_of<T>(rng: &mut StdRng, f: impl FnOnce(&mut StdRng) -> T) -> Option<T> {
    if rng.gen::<bool>() {
        Some(f(rng))
    } else {
        None
    }
}
