//! Cross-validation test: on randomly generated *untimed* (Markovian)
//! networks, the Monte Carlo simulator and the exact CTMC pipeline must
//! agree within the statistical error bound. This is the strongest
//! end-to-end correctness check the two independent engines give each
//! other.

mod common;

use common::*;
use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slimsim::prelude::*;

/// One random Markovian automaton: a chain of `n` locations with forward
/// rates, optional back edges, setting its flag on reaching the last
/// location.
#[derive(Debug, Clone)]
struct ChainSpec {
    forward: Vec<f64>,
    back: Option<(usize, f64)>,
}

fn chain(rng: &mut StdRng) -> ChainSpec {
    let forward = vec_of(rng, 1, 4, |rng| f64_in(rng, 0.2, 4.0));
    let back = option_of(rng, |rng| (rng.gen_range(0..forward.len()), f64_in(rng, 0.2, 4.0)));
    ChainSpec { forward, back }
}

fn build(chains: &[ChainSpec]) -> (Network, Expr) {
    let mut b = NetworkBuilder::new();
    let mut flags = Vec::new();
    for (i, spec) in chains.iter().enumerate() {
        let flag = b.var(format!("flag{i}"), VarType::Bool, Value::Bool(false));
        flags.push(flag);
        let mut a = AutomatonBuilder::new(format!("chain{i}"));
        let n = spec.forward.len();
        let locs: Vec<_> = (0..=n).map(|l| a.location(format!("l{l}"))).collect();
        for (k, &rate) in spec.forward.iter().enumerate() {
            let effects =
                if k + 1 == n { vec![Effect::assign(flag, Expr::bool(true))] } else { vec![] };
            a.markovian(locs[k], rate, effects, locs[k + 1]);
        }
        if let Some((target, rate)) = spec.back {
            // A back edge from the end makes the chain cyclic (the flag
            // stays set — reachability is monotone).
            a.markovian(locs[n], rate, [], locs[target.min(n - 1)]);
        }
        b.add_automaton(a);
    }
    let net = b.build().expect("generated chain network is well-formed");
    let goal = Expr::any(flags.iter().map(|&f| Expr::var(f)));
    (net, goal)
}

#[test]
fn simulator_agrees_with_ctmc_pipeline() {
    let mut rng = StdRng::seed_from_u64(0x5eed_c055);
    for case in 0..24 {
        let chains = vec_of(&mut rng, 1, 3, chain);
        let bound = f64_in(&mut rng, 0.2, 3.0);
        let (net, goal_expr) = build(&chains);

        // Exact answer.
        let goal_for_ctmc = goal_expr.clone();
        let net_ref = &net;
        let goal_fn = move |s: &NetState| net_ref.eval_bool(s, &goal_for_ctmc);
        let exact = check_timed_reachability(&net, &goal_fn, bound, &PipelineConfig::default())
            .expect("untimed model explores")
            .probability;

        // Statistical answer.
        let prop = TimedReach::new(Goal::expr(goal_expr), bound);
        let acc = Accuracy::new(0.05, 0.05).unwrap();
        let cfg = SimConfig::default()
            .with_accuracy(acc)
            .with_strategy(StrategyKind::Asap)
            .with_seed(1234);
        let est = analyze(&net, &prop, &cfg).unwrap().probability();

        // Agreement within ε plus slack for the δ failure probability
        // across many random cases.
        assert!(
            (est - exact).abs() < 0.05 + 0.03,
            "case {case}: simulator {est} vs CTMC {exact} (bound {bound})"
        );
    }
}
