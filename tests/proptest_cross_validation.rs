//! Cross-validation property test: on randomly generated *untimed*
//! (Markovian) networks, the Monte Carlo simulator and the exact CTMC
//! pipeline must agree within the statistical error bound. This is the
//! strongest end-to-end correctness check the two independent engines
//! give each other.

use proptest::prelude::*;
use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slimsim::prelude::*;

/// One random Markovian automaton: a chain of `n` locations with forward
/// rates, optional back edges, setting its flag on reaching the last
/// location.
#[derive(Debug, Clone)]
struct ChainSpec {
    forward: Vec<f64>,
    back: Option<(usize, f64)>,
}

fn arb_chain() -> impl Strategy<Value = ChainSpec> {
    (
        prop::collection::vec(0.2f64..4.0, 1..4),
        prop::option::of((any::<prop::sample::Index>(), 0.2f64..4.0)),
    )
        .prop_map(|(forward, back)| ChainSpec {
            back: back.map(|(idx, r)| (idx.index(forward.len()), r)),
            forward,
        })
}

fn build(chains: &[ChainSpec]) -> (Network, Expr) {
    let mut b = NetworkBuilder::new();
    let mut flags = Vec::new();
    for (i, spec) in chains.iter().enumerate() {
        let flag = b.var(format!("flag{i}"), VarType::Bool, Value::Bool(false));
        flags.push(flag);
        let mut a = AutomatonBuilder::new(format!("chain{i}"));
        let n = spec.forward.len();
        let locs: Vec<_> = (0..=n).map(|l| a.location(format!("l{l}"))).collect();
        for (k, &rate) in spec.forward.iter().enumerate() {
            let effects = if k + 1 == n {
                vec![Effect::assign(flag, Expr::bool(true))]
            } else {
                vec![]
            };
            a.markovian(locs[k], rate, effects, locs[k + 1]);
        }
        if let Some((target, rate)) = spec.back {
            // A back edge from the end makes the chain cyclic (the flag
            // stays set — reachability is monotone).
            a.markovian(locs[n], rate, [], locs[target.min(n - 1)]);
        }
        b.add_automaton(a);
    }
    let net = b.build().expect("generated chain network is well-formed");
    let goal = Expr::any(flags.iter().map(|&f| Expr::var(f)));
    (net, goal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_agrees_with_ctmc_pipeline(
        chains in prop::collection::vec(arb_chain(), 1..3),
        bound in 0.2f64..3.0,
    ) {
        let (net, goal_expr) = build(&chains);

        // Exact answer.
        let goal_for_ctmc = goal_expr.clone();
        let net_ref = &net;
        let goal_fn = move |s: &NetState| net_ref.eval_bool(s, &goal_for_ctmc);
        let exact = check_timed_reachability(&net, &goal_fn, bound, &PipelineConfig::default())
            .expect("untimed model explores")
            .probability;

        // Statistical answer.
        let prop = TimedReach::new(Goal::expr(goal_expr), bound);
        let acc = Accuracy::new(0.05, 0.05).unwrap();
        let cfg = SimConfig::default()
            .with_accuracy(acc)
            .with_strategy(StrategyKind::Asap)
            .with_seed(1234);
        let est = analyze(&net, &prop, &cfg).unwrap().probability();

        // Agreement within ε plus slack for the δ failure probability
        // across many proptest cases.
        prop_assert!(
            (est - exact).abs() < 0.05 + 0.03,
            "simulator {est} vs CTMC {exact} (bound {bound})"
        );
    }
}
