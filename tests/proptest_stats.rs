//! Property tests for the statistics engine: order-unbiased parallel
//! collection, workload splitting, and stopping-rule sanity.

use proptest::prelude::*;
use slimsim::stats::chernoff::Accuracy;
use slimsim::stats::estimator::Generator;
use slimsim::stats::parallel::{split_workload, RoundRobinCollector};
use slimsim::stats::sequential::GeneratorKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Drained output only depends on the per-worker streams, not on the
    /// interleaving of arrivals — the §III-C bias fix.
    #[test]
    fn collector_is_arrival_order_invariant(
        streams in prop::collection::vec(prop::collection::vec(any::<bool>(), 0..12), 1..5),
        schedule in prop::collection::vec(any::<prop::sample::Index>(), 0..64),
    ) {
        let workers = streams.len();

        // Reference: deliver stream-by-stream.
        let mut reference = RoundRobinCollector::new(workers);
        for (w, s) in streams.iter().enumerate() {
            for &b in s {
                reference.push(w, b);
            }
            reference.finish_worker(w);
        }
        let expected = reference.drain_rounds();

        // Interleaved delivery following a random schedule.
        let mut collector = RoundRobinCollector::new(workers);
        let mut cursors = vec![0usize; workers];
        let mut drained = Vec::new();
        for idx in schedule {
            let w = idx.index(workers);
            if cursors[w] < streams[w].len() {
                collector.push(w, streams[w][cursors[w]]);
                cursors[w] += 1;
                drained.extend(collector.drain_rounds());
            }
        }
        // Deliver the rest.
        for w in 0..workers {
            while cursors[w] < streams[w].len() {
                collector.push(w, streams[w][cursors[w]]);
                cursors[w] += 1;
            }
            collector.finish_worker(w);
        }
        drained.extend(collector.drain_rounds());
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn workload_split_total_and_balance(n in 0u64..1_000_000, k in 1usize..64) {
        let parts = split_workload(n, k);
        prop_assert_eq!(parts.len(), k);
        prop_assert_eq!(parts.iter().sum::<u64>(), n);
        let min = *parts.iter().min().unwrap();
        let max = *parts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "imbalance {}", max - min);
    }

    /// Every generator eventually stops and reports consistent counters.
    #[test]
    fn generators_terminate_and_count(
        kind_idx in 0usize..3,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let kind = GeneratorKind::ALL[kind_idx];
        let acc = Accuracy::new(0.05, 0.1).unwrap();
        let mut g = kind.instantiate(acc);
        let mut x = seed | 1;
        let mut fed: u64 = 0;
        let cap = acc.chernoff_samples() + 10;
        while !g.is_complete() && fed < cap {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            g.add(u < p);
            fed += 1;
        }
        prop_assert!(g.is_complete(), "{} did not stop within CH bound + 10", kind);
        let e = g.estimate();
        prop_assert_eq!(e.samples, fed);
        prop_assert!(e.successes <= e.samples);
        prop_assert!((0.0..=1.0).contains(&e.mean));
    }

    /// The CH sample count is monotone: tighter ε or δ never needs fewer
    /// samples.
    #[test]
    fn chernoff_monotone(e1 in 0.001f64..0.5, e2 in 0.001f64..0.5, d in 0.001f64..0.5) {
        let (tight, loose) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
        let n_tight = Accuracy::new(tight, d).unwrap().chernoff_samples();
        let n_loose = Accuracy::new(loose, d).unwrap().chernoff_samples();
        prop_assert!(n_tight >= n_loose);
    }
}
