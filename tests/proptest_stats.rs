//! Randomized tests for the statistics engine: order-unbiased parallel
//! collection, workload splitting, and stopping-rule sanity.

mod common;

use common::*;
use slimsim::stats::chernoff::Accuracy;
use slimsim::stats::parallel::{split_workload, RoundRobinCollector};
use slimsim::stats::sequential::GeneratorKind;

/// Drained output only depends on the per-worker streams, not on the
/// interleaving of arrivals — the §III-C bias fix.
#[test]
fn collector_is_arrival_order_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5eed_c011);
    for case in 0..256 {
        let streams: Vec<Vec<bool>> =
            vec_of(&mut rng, 1, 5, |rng| vec_of(rng, 0, 12, |rng| rng.gen::<bool>()));
        let workers = streams.len();
        let schedule: Vec<usize> = vec_of(&mut rng, 0, 64, |rng| rng.gen_range(0..workers));

        // Reference: deliver stream-by-stream.
        let mut reference = RoundRobinCollector::new(workers);
        for (w, s) in streams.iter().enumerate() {
            for &b in s {
                reference.push(w, b);
            }
            reference.finish_worker(w);
        }
        let expected = reference.drain_rounds();

        // Interleaved delivery following a random schedule.
        let mut collector = RoundRobinCollector::new(workers);
        let mut cursors = vec![0usize; workers];
        let mut drained = Vec::new();
        for w in schedule {
            if cursors[w] < streams[w].len() {
                collector.push(w, streams[w][cursors[w]]);
                cursors[w] += 1;
                drained.extend(collector.drain_rounds());
            }
        }
        // Deliver the rest.
        for w in 0..workers {
            while cursors[w] < streams[w].len() {
                collector.push(w, streams[w][cursors[w]]);
                cursors[w] += 1;
            }
            collector.finish_worker(w);
        }
        drained.extend(collector.drain_rounds());
        assert_eq!(drained, expected, "case {case}");
    }
}

#[test]
fn workload_split_total_and_balance() {
    let mut rng = StdRng::seed_from_u64(0x5eed_5b11);
    for case in 0..256 {
        let n = rng.gen::<u64>() % 1_000_000;
        let k = usize_in(&mut rng, 1, 64);
        let parts = split_workload(n, k);
        assert_eq!(parts.len(), k, "case {case}");
        assert_eq!(parts.iter().sum::<u64>(), n, "case {case}");
        let min = *parts.iter().min().unwrap();
        let max = *parts.iter().max().unwrap();
        assert!(max - min <= 1, "case {case}: imbalance {}", max - min);
    }
}

/// Every generator eventually stops and reports consistent counters.
#[test]
fn generators_terminate_and_count() {
    let mut rng = StdRng::seed_from_u64(0x5eed_9e4e);
    for case in 0..256 {
        let kind = *pick(&mut rng, &GeneratorKind::ALL);
        let p = rng.gen::<f64>();
        let seed = rng.gen::<u64>();
        let acc = Accuracy::new(0.05, 0.1).unwrap();
        let mut g = kind.instantiate(acc);
        let mut x = seed | 1;
        let mut fed: u64 = 0;
        let cap = acc.chernoff_samples() + 10;
        while !g.is_complete() && fed < cap {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            g.add(u < p);
            fed += 1;
        }
        assert!(g.is_complete(), "case {case}: {kind} did not stop within CH bound + 10");
        let e = g.estimate();
        assert_eq!(e.samples, fed, "case {case}");
        assert!(e.successes <= e.samples, "case {case}");
        assert!((0.0..=1.0).contains(&e.mean), "case {case}");
    }
}

/// The CH sample count is monotone: tighter ε or δ never needs fewer
/// samples.
#[test]
fn chernoff_monotone() {
    let mut rng = StdRng::seed_from_u64(0x5eed_307e);
    for case in 0..256 {
        let e1 = f64_in(&mut rng, 0.001, 0.5);
        let e2 = f64_in(&mut rng, 0.001, 0.5);
        let d = f64_in(&mut rng, 0.001, 0.5);
        let (tight, loose) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
        let n_tight = Accuracy::new(tight, d).unwrap().chernoff_samples();
        let n_loose = Accuracy::new(loose, d).unwrap().chernoff_samples();
        assert!(n_tight >= n_loose, "case {case}");
    }
}
