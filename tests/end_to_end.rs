//! End-to-end integration tests spanning the whole workspace: SLIM text →
//! parse → extend → lower → simulate, cross-checked against the CTMC
//! pipeline and analytic results.

use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slim_lang::{lower, parse};
use slim_models::gps::{gps_network, GpsParams};
use slim_models::sensor_filter::{
    analytic_failure_probability, sensor_filter_network, SensorFilterParams, GOAL_VAR,
};
use slimsim::prelude::*;

/// SLIM source → both engines → same probability (within ε).
#[test]
fn slim_source_agrees_across_engines() {
    let src = r#"
        device Machine
          features
            broken: out data port bool := false;
        end Machine;
        device implementation Machine.Impl
          modes
            up: initial mode;
            down: mode;
          transitions
            up -[ rate 2.0 then broken := true ]-> down;
            down -[ rate 1.0 then broken := false ]-> up;
        end Machine.Impl;
    "#;
    let model = parse(src).expect("parses");
    let net = lower(&model, "Machine", "Impl", "m").expect("lowers").network;
    let broken = net.var_id("m.broken").unwrap();

    let horizon = 1.0;
    let goal_fn = move |s: &NetState| s.nu.get(broken).map(|v| v.as_bool().unwrap_or(false));
    let exact = check_timed_reachability(&net, &goal_fn, horizon, &PipelineConfig::default())
        .expect("CTMC pipeline")
        .probability;
    // Analytic: first passage of a 2-state chain = first fault: 1 − e^{−2t}.
    assert!((exact - (1.0 - (-2.0f64).exp())).abs() < 1e-8);

    let prop = TimedReach::new(Goal::expr(Expr::var(broken)), horizon);
    let cfg = SimConfig::default()
        .with_accuracy(Accuracy::new(0.02, 0.05).unwrap())
        .with_strategy(StrategyKind::Asap)
        .with_workers(2);
    let sim = analyze(&net, &prop, &cfg).expect("simulation");
    assert!(
        (sim.probability() - exact).abs() < 0.03,
        "simulator {} vs CTMC {exact}",
        sim.probability()
    );
}

/// The sensor–filter benchmark: simulator, CTMC pipeline and closed form
/// agree for several sizes and horizons.
#[test]
fn sensor_filter_three_way_agreement() {
    for redundancy in [1, 2, 3] {
        for horizon in [0.5, 2.0] {
            let params = SensorFilterParams { redundancy, ..Default::default() };
            let net = sensor_filter_network(&params);
            let failed = net.var_id(GOAL_VAR).unwrap();
            let goal_fn =
                move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
            let ctmc =
                check_timed_reachability(&net, &goal_fn, horizon, &PipelineConfig::default())
                    .unwrap();
            let analytic = analytic_failure_probability(&params, horizon);
            assert!(
                (ctmc.probability - analytic).abs() < 1e-6,
                "n={redundancy} t={horizon}: ctmc {} vs analytic {analytic}",
                ctmc.probability
            );

            let prop = TimedReach::new(Goal::expr(Expr::var(failed)), horizon);
            let cfg = SimConfig::default()
                .with_accuracy(Accuracy::new(0.03, 0.1).unwrap())
                .with_strategy(StrategyKind::Progressive);
            let sim = analyze(&net, &prop, &cfg).unwrap();
            assert!(
                (sim.probability() - analytic).abs() < 0.04,
                "n={redundancy} t={horizon}: sim {} vs analytic {analytic}",
                sim.probability()
            );
        }
    }
}

/// Lumping never changes the CTMC pipeline's answer.
#[test]
fn lumping_is_transparent() {
    let params = SensorFilterParams { redundancy: 3, ..Default::default() };
    let net = sensor_filter_network(&params);
    let failed = net.var_id(GOAL_VAR).unwrap();
    let goal_fn = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
    let with = check_timed_reachability(&net, &goal_fn, 1.5, &PipelineConfig::default()).unwrap();
    let without = check_timed_reachability(
        &net,
        &goal_fn,
        1.5,
        &PipelineConfig { skip_lumping: true, ..Default::default() },
    )
    .unwrap();
    assert!((with.probability - without.probability).abs() < 1e-9);
    assert!(
        with.lumped_states < without.lumped_states,
        "lumping should shrink the chain ({} !< {})",
        with.lumped_states,
        without.lumped_states
    );
}

/// The GPS SLIM model: the §III-B strategy semantics, end to end.
#[test]
fn gps_strategy_semantics_end_to_end() {
    let p = GpsParams {
        lambda_transient: 0.001,
        lambda_hot: 20.0,
        lambda_permanent: 0.001,
        ..GpsParams::default()
    };
    let net = gps_network(&p);
    let goal = Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap();
    let prop = TimedReach::new(goal, 0.4);
    let acc = Accuracy::new(0.05, 0.1).unwrap();

    let prob = |kind: StrategyKind| {
        let cfg = SimConfig::default().with_accuracy(acc).with_strategy(kind).with_seed(17);
        analyze(&net, &prop, &cfg).unwrap().probability()
    };
    let asap = prob(StrategyKind::Asap);
    let maxtime = prob(StrategyKind::MaxTime);
    let progressive = prob(StrategyKind::Progressive);
    assert!(asap > 0.8, "ASAP should almost always escalate, got {asap}");
    assert!(maxtime < 0.1, "MaxTime should almost never escalate, got {maxtime}");
    assert!(
        progressive > maxtime && progressive < asap,
        "Progressive {progressive} should sit between {maxtime} and {asap}"
    );
}

/// Deadlock handling end to end (§III-D): falsify vs error.
#[test]
fn deadlock_policy_end_to_end() {
    let src = r#"
        device Stuck end Stuck;
        device implementation Stuck.Impl
          modes
            only: initial mode;
        end Stuck.Impl;
    "#;
    let model = parse(src).unwrap();
    let net = lower(&model, "Stuck", "Impl", "s").unwrap().network;
    let prop = TimedReach::new(Goal::expr(Expr::FALSE), 1.0);

    // `false` is statically unreachable, so the fixpoint pre-verdict
    // would answer P = 0 without sampling; disable it — this test is
    // about what the *paths* do when they deadlock.
    let falsify = SimConfig::default()
        .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
        .with_static_pre_verdicts(false)
        .with_deadlock_policy(DeadlockPolicy::Falsify);
    let r = analyze(&net, &prop, &falsify).unwrap();
    assert_eq!(r.probability(), 0.0);
    assert_eq!(r.stats.deadlocks, r.stats.total());

    let error = falsify.with_deadlock_policy(DeadlockPolicy::Error);
    assert!(matches!(analyze(&net, &prop, &error), Err(SimError::DeadlockDetected { .. })));
}

/// Full determinism: same seed ⇒ identical results, across strategies and
/// generators.
#[test]
fn seeded_determinism_end_to_end() {
    let net = sensor_filter_network(&SensorFilterParams::default());
    let failed = net.var_id(GOAL_VAR).unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 1.0);
    for kind in StrategyKind::ALL {
        for generator in GeneratorKind::ALL {
            let cfg = SimConfig::default()
                .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
                .with_strategy(kind)
                .with_generator(generator)
                .with_seed(99);
            let a = analyze(&net, &prop, &cfg).unwrap();
            let b = analyze(&net, &prop, &cfg).unwrap();
            assert_eq!(a.estimate, b.estimate, "{kind}/{generator} not deterministic");
        }
    }
}

/// The interactive Input strategy drives a path end to end.
#[test]
fn input_strategy_scripted_path() {
    let src = r#"
        device Timer
          features
            expired: out data port bool := false;
        end Timer;
        device implementation Timer.Impl
          subcomponents
            t: data clock;
          modes
            running: initial mode while t <= 10.0;
            done: mode;
          transitions
            running -[ when t >= 2.0 then expired := true ]-> done;
        end Timer.Impl;
    "#;
    let model = parse(src).unwrap();
    let net = lower(&model, "Timer", "Impl", "timer").unwrap().network;
    let expired = net.var_id("timer.expired").unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(expired)), 10.0);
    let gen = PathGenerator::new(&net, &prop, 1000);

    // Wait 1.5 (nothing enabled yet), then fire candidate 0 at 3.0.
    let mut strategy = Input::new(ScriptedOracle::new([
        InputChoice::Wait { delay: 1.5 },
        InputChoice::Fire { candidate: 0, delay: 1.5 },
    ]));
    let mut rng = slim_stats::rng::StdRng::seed_from_u64(0);
    let out = gen.generate(&mut strategy, &mut rng).unwrap();
    assert_eq!(out.verdict, Verdict::Satisfied);
    assert!((out.end_time - 3.0).abs() < 1e-9, "fired at {}", out.end_time);

    // An aborted script surfaces as an error.
    let mut aborting = Input::new(ScriptedOracle::new([]));
    let mut rng = slim_stats::rng::StdRng::seed_from_u64(0);
    assert!(matches!(gen.generate(&mut aborting, &mut rng), Err(SimError::InputAborted)));
}

/// Parallel analysis gives exactly the same sample set as sequential for
/// CH (known N), on a full model.
#[test]
fn parallel_equivalence_on_model() {
    let net = sensor_filter_network(&SensorFilterParams::default());
    let failed = net.var_id(GOAL_VAR).unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 1.0);
    let acc = Accuracy::new(0.05, 0.1).unwrap();
    let seq = SimConfig::default().with_accuracy(acc).with_seed(5).with_workers(1);
    let par = SimConfig::default().with_accuracy(acc).with_seed(5).with_workers(4);
    let a = analyze(&net, &prop, &seq).unwrap();
    let b = analyze(&net, &prop, &par).unwrap();
    assert_eq!(a.estimate.successes, b.estimate.successes);
    assert_eq!(a.estimate.samples, b.estimate.samples);
}
