//! Statistical conformance: the Monte Carlo simulator against the exact
//! CTMC transient pipeline on every untimed bundled model.
//!
//! For each model the CTMC pipeline computes the reference probability to
//! solver precision; a seeded simulator run must then land within its own
//! Chernoff–Hoeffding half-width ε of that reference. The fast tier runs
//! at ε = 0.03 in CI; the `#[ignore]`d tier-2 variants tighten to
//! ε = 0.005 (hundreds of thousands of paths) and are exercised by the
//! scheduled heavy job / `cargo test -- --ignored`.

use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slim_models::{
    repair_failure_probability, repair_network, sensor_filter_network, voting_failure_probability,
    voting_network, RepairParams, SensorFilterParams, VotingParams, GOAL_VAR, REPAIR_GOAL_VAR,
    VOTING_GOAL_VAR,
};
use slimsim::prelude::*;

/// One untimed conformance case: a model, its goal variable, and the
/// property bound.
struct Case {
    name: &'static str,
    net: Network,
    goal_var: &'static str,
    bound: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "sensor-filter-2",
            net: sensor_filter_network(&SensorFilterParams::default()),
            goal_var: GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "sensor-filter-3",
            net: sensor_filter_network(&SensorFilterParams { redundancy: 3, ..Default::default() }),
            goal_var: GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "voting",
            net: voting_network(&VotingParams::default()),
            goal_var: VOTING_GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "repair",
            net: repair_network(&RepairParams::default()),
            goal_var: REPAIR_GOAL_VAR,
            bound: 2.0,
        },
    ]
}

/// The CTMC pipeline's reference probability for a case.
fn ctmc_reference(case: &Case) -> f64 {
    let failed = case.net.var_id(case.goal_var).unwrap();
    let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
    check_timed_reachability(&case.net, &goal, case.bound, &PipelineConfig::default())
        .unwrap()
        .probability
}

/// Runs the seeded simulator at an explicit batch lane width and asserts
/// the estimate lands within its Chernoff half-width ε of the CTMC
/// reference.
fn assert_conformance_lanes(case: &Case, epsilon: f64, workers: usize, lanes: usize) {
    let reference = ctmc_reference(case);
    let goal = Goal::expr(Expr::var(case.net.var_id(case.goal_var).unwrap()));
    let prop = TimedReach::new(goal, case.bound);
    let cfg = SimConfig::default()
        .with_accuracy(Accuracy::new(epsilon, 0.05).unwrap())
        .with_strategy(StrategyKind::Asap)
        .with_seed(0xD5A1)
        .with_workers(workers)
        .with_batch_lanes(lanes);
    let r = analyze(&case.net, &prop, &cfg).unwrap();
    assert!(
        (r.probability() - reference).abs() <= epsilon,
        "{}: simulator {} vs CTMC {reference} (ε = {epsilon}, workers {workers}, lanes {lanes})",
        case.name,
        r.probability()
    );
}

/// [`assert_conformance_lanes`] at the default lane width.
fn assert_conformance(case: &Case, epsilon: f64, workers: usize) {
    assert_conformance_lanes(case, epsilon, workers, SimConfig::default().batch_lanes);
}

#[test]
fn simulator_conforms_to_ctmc_on_all_untimed_models() {
    for case in cases() {
        assert_conformance(&case, 0.03, 1);
    }
}

#[test]
fn simulator_conforms_to_ctmc_with_parallel_workers() {
    for case in cases() {
        assert_conformance(&case, 0.03, 4);
    }
}

/// The CTMC pipeline itself must agree with the closed forms the model
/// zoo provides — anchoring the conformance reference to ground truth.
#[test]
fn ctmc_reference_matches_closed_forms() {
    let voting = &cases()[2];
    let exact = voting_failure_probability(&VotingParams::default(), voting.bound);
    assert!((ctmc_reference(voting) - exact).abs() < 1e-6);

    let repair = &cases()[3];
    let exact = repair_failure_probability(&RepairParams::default(), repair.bound);
    assert!((ctmc_reference(repair) - exact).abs() < 1e-6);
}

/// Conformance must hold for the sequential stopping rules too, not just
/// the fixed-sample Chernoff bound. Gauss and Chow–Robbins adapt the
/// sample count to the observed variance; their estimates must still
/// land within ε of the exact reference.
#[test]
fn sequential_generators_conform_on_sensor_filter() {
    let case = &cases()[0];
    let reference = ctmc_reference(case);
    let goal = Goal::expr(Expr::var(case.net.var_id(case.goal_var).unwrap()));
    let prop = TimedReach::new(goal, case.bound);
    for generator in [GeneratorKind::Gauss, GeneratorKind::ChowRobbins] {
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.03, 0.05).unwrap())
            .with_strategy(StrategyKind::Asap)
            .with_generator(generator)
            .with_seed(0xD5A1);
        let r = analyze(&case.net, &prop, &cfg).unwrap();
        assert!(
            (r.probability() - reference).abs() <= 0.03,
            "{generator}: simulator {} vs CTMC {reference}",
            r.probability()
        );
    }
}

/// The batched SoA kernel, explicitly exercised at lane widths away from
/// the default (including `1`, which disables batching), must conform to
/// the same CTMC references. Lane determinism makes all widths produce
/// the *same* estimate, so a conformance failure here isolates a batched
/// stepping bug rather than a statistical fluke.
#[test]
fn batched_kernel_conforms_to_ctmc_on_all_untimed_models() {
    for case in cases() {
        for lanes in [1usize, 8, 64] {
            assert_conformance_lanes(&case, 0.03, 1, lanes);
        }
    }
}

/// The batched kernel under parallel workers: each worker strides its
/// lanes through the shared path-index space (`start + workers·j`), and
/// the merged estimate must still conform.
#[test]
fn batched_kernel_conforms_with_parallel_workers() {
    for case in cases() {
        assert_conformance_lanes(&case, 0.03, 4, 32);
    }
}

#[test]
#[ignore = "tier-2: tight-accuracy conformance (hundreds of thousands of paths)"]
fn tight_epsilon_conformance_sequential() {
    for case in cases() {
        assert_conformance(&case, 0.005, 1);
    }
}

#[test]
#[ignore = "tier-2: tight-accuracy conformance with parallel workers"]
fn tight_epsilon_conformance_parallel() {
    for case in cases() {
        assert_conformance(&case, 0.005, 4);
    }
}

#[test]
#[ignore = "tier-2: tight-accuracy conformance through the batched kernel"]
fn tight_epsilon_conformance_batched() {
    for case in cases() {
        assert_conformance_lanes(&case, 0.005, 1, 64);
    }
}
