//! Statistical validation of the estimation machinery: empirical
//! confidence-interval coverage for each generator, and unbiasedness of
//! importance sampling. These are repetitions-of-analyses tests — slower
//! than unit tests but the definitive check that the statistics do what
//! they promise.

use slimsim::prelude::*;
use slimsim::stats::estimator::Generator as _;
use slimsim::stats::rng::{derive_seed, path_rng};
use slimsim::stats::weighted::WeightedEstimator;

/// A Bernoulli stream driven by a seeded RNG.
fn bernoulli_stream(p: f64, seed: u64) -> impl FnMut() -> bool {
    let mut rng = path_rng(seed, 0);
    move || rng.gen::<f64>() < p
}

/// Empirical coverage of the Chernoff–Hoeffding interval: across many
/// repetitions, the fraction of runs with `|p̂ − p| ≤ ε` must be at least
/// `1 − δ` (CH is conservative, so it will be much higher — but never
/// materially lower).
#[test]
fn chernoff_interval_coverage() {
    let p = 0.3;
    let acc = Accuracy::new(0.05, 0.2).unwrap();
    let reps = 200;
    let mut covered = 0;
    for rep in 0..reps {
        let mut gen = slimsim::stats::ChernoffHoeffding::new(acc);
        let mut draw = bernoulli_stream(p, derive_seed(1, rep));
        while !gen.is_complete() {
            gen.add(draw());
        }
        if (gen.estimate().mean - p).abs() <= acc.epsilon() {
            covered += 1;
        }
    }
    let coverage = covered as f64 / reps as f64;
    assert!(coverage >= 1.0 - acc.delta(), "CH coverage {coverage} below {}", 1.0 - acc.delta());
}

/// Gauss (CLT) sequential intervals are approximate; their empirical
/// coverage should land near the nominal level (allow slack for the
/// sequential-stopping optimism).
#[test]
fn gauss_interval_coverage_near_nominal() {
    let p = 0.4;
    let acc = Accuracy::new(0.04, 0.1).unwrap();
    let reps = 300;
    let mut covered = 0;
    for rep in 0..reps {
        let mut gen = slimsim::stats::Gauss::new(acc);
        let mut draw = bernoulli_stream(p, derive_seed(2, rep));
        while !gen.is_complete() {
            gen.add(draw());
        }
        if (gen.estimate().mean - p).abs() <= acc.epsilon() {
            covered += 1;
        }
    }
    let coverage = covered as f64 / reps as f64;
    assert!(coverage > 0.8, "Gauss coverage {coverage} far below nominal 0.9");
}

/// Chow–Robbins: same check.
#[test]
fn chow_robbins_interval_coverage_near_nominal() {
    let p = 0.15;
    let acc = Accuracy::new(0.04, 0.1).unwrap();
    let reps = 300;
    let mut covered = 0;
    for rep in 0..reps {
        let mut gen = slimsim::stats::ChowRobbins::new(acc);
        let mut draw = bernoulli_stream(p, derive_seed(3, rep));
        while !gen.is_complete() {
            gen.add(draw());
        }
        if (gen.estimate().mean - p).abs() <= acc.epsilon() {
            covered += 1;
        }
    }
    let coverage = covered as f64 / reps as f64;
    assert!(coverage > 0.8, "Chow–Robbins coverage {coverage} far below nominal 0.9");
}

/// Importance sampling is unbiased: averaging many independent weighted
/// estimates converges to the true probability, for several boosts.
#[test]
fn importance_sampling_unbiased_on_model() {
    let lambda = 0.05_f64;
    let mut b = NetworkBuilder::new();
    let mut a = AutomatonBuilder::new("unit");
    let ok = a.location("ok");
    let dead = a.location("dead");
    a.markovian(ok, lambda, [], dead);
    b.add_automaton(a);
    let net = b.build().unwrap();
    let goal = Goal::in_location(&net, "unit", "dead").unwrap();
    let prop = TimedReach::new(goal, 1.0);
    let exact = 1.0 - (-lambda).exp();

    let gen = PathGenerator::new(&net, &prop, 10_000);
    for boost in [5.0, 20.0] {
        let mut est = WeightedEstimator::new(0.05, 0.95);
        let mut strategy = Asap;
        for i in 0..20_000u64 {
            let mut rng = path_rng(derive_seed(4, boost as u64), i);
            let (out, w) = gen.generate_biased(&mut strategy, &mut rng, boost).unwrap();
            est.add(out.verdict.is_success(), w);
        }
        let e = est.estimate();
        let rel = (e.mean - exact).abs() / exact;
        assert!(rel < 0.1, "boost {boost}: mean {} vs exact {exact} (rel {rel})", e.mean);
    }
}

/// The estimator's per-path weights are exactly the likelihood ratio:
/// with bias = 1 every weight is 1, even on paths with many events.
#[test]
fn bias_one_weights_are_exactly_one() {
    let mut b = NetworkBuilder::new();
    let count = b.var("count", VarType::Int { lo: 0, hi: 100 }, Value::Int(0));
    let mut a = AutomatonBuilder::new("p");
    let l = a.location("l");
    a.markovian(
        l,
        3.0,
        [Effect::assign(count, Expr::var(count).add(Expr::int(1)).min(Expr::int(100)))],
        l,
    );
    b.add_automaton(a);
    let net = b.build().unwrap();
    let goal = Goal::expr(Expr::var(count).ge(Expr::int(10)));
    let prop = TimedReach::new(goal, 100.0);
    let gen = PathGenerator::new(&net, &prop, 10_000);
    let mut strategy = Asap;
    for i in 0..50 {
        let mut rng = path_rng(5, i);
        let (out, w) = gen.generate_biased(&mut strategy, &mut rng, 1.0).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((w - 1.0).abs() < 1e-12, "weight {w} != 1 with bias 1");
    }
}

/// Parallel analysis coverage on a real model: repeated parallel runs
/// stay within ε of the analytic answer at least `1 − δ` of the time.
#[test]
fn parallel_analysis_coverage() {
    let mut b = NetworkBuilder::new();
    let mut a = AutomatonBuilder::new("m");
    let ok = a.location("ok");
    let dead = a.location("dead");
    a.markovian(ok, 1.0, [], dead);
    b.add_automaton(a);
    let net = b.build().unwrap();
    let goal = Goal::in_location(&net, "m", "dead").unwrap();
    let prop = TimedReach::new(goal, 1.0);
    let exact = 1.0 - (-1.0f64).exp();
    let acc = Accuracy::new(0.05, 0.2).unwrap();

    let reps = 30;
    let mut covered = 0;
    for rep in 0..reps {
        let cfg = SimConfig::default()
            .with_accuracy(acc)
            .with_strategy(StrategyKind::Asap)
            .with_workers(3)
            .with_seed(derive_seed(6, rep));
        let r = analyze(&net, &prop, &cfg).unwrap();
        if (r.probability() - exact).abs() <= acc.epsilon() {
            covered += 1;
        }
    }
    assert!(
        covered as f64 / reps as f64 >= 1.0 - acc.delta(),
        "parallel coverage {covered}/{reps}"
    );
}
