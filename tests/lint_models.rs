//! Lint passes over the bundled models: every shipped network must be free
//! of error-level diagnostics, and the deliberately broken example must
//! trigger the documented lint codes with source spans.

use slimsim::lint::{
    error_count, lint_network, render_json_all, render_text_all, Code, LintConfig, Severity,
    SourceFile,
};
use slimsim::models::slim_sources::{handshake_network, sensor_filter_slim_network};
use slimsim::models::{
    gps_network, launcher_network, power_system_network, sensor_filter_network, DpuFaultMode,
    GpsParams, LauncherParams, PowerSystemParams, SensorFilterParams,
};

#[test]
fn bundled_networks_have_no_error_level_lints() {
    let cfg = LintConfig::new();
    let networks = [
        ("gps", gps_network(&GpsParams::default())),
        ("launcher", launcher_network(&LauncherParams::default())),
        (
            "launcher-permanent",
            launcher_network(&LauncherParams {
                dpu_faults: DpuFaultMode::Permanent,
                ..Default::default()
            }),
        ),
        (
            "launcher-threeclass",
            launcher_network(&LauncherParams {
                dpu_faults: DpuFaultMode::ThreeClass,
                ..Default::default()
            }),
        ),
        ("power-system", power_system_network(&PowerSystemParams::default())),
        ("sensor-filter", sensor_filter_network(&SensorFilterParams::default())),
        ("sensor-filter-slim", sensor_filter_slim_network()),
        ("handshake", handshake_network()),
    ];
    for (name, net) in &networks {
        let diags = lint_network(net, &cfg);
        assert_eq!(
            error_count(&diags),
            0,
            "{name} has error-level lints:\n{}",
            render_text_all(&diags, None)
        );
        assert!(
            diags.iter().all(|d| d.severity == Severity::Note),
            "{name} has warnings:\n{}",
            render_text_all(&diags, None)
        );
    }
}

#[test]
fn broken_example_triggers_expected_lints() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/models/broken.slim");
    let text = std::fs::read_to_string(path).expect("bundled example exists");
    let model = slimsim::lang::parse(&text).expect("example parses");

    // Front end: the orphan `goal` mode, with the span of its declaration.
    let front = slimsim::lang::analyze_model(&model);
    let orphan = front
        .iter()
        .find(|d| d.code == Code::UnreachableMode)
        .expect("S010 unreachable-mode reported");
    let span = orphan.span.expect("front-end diagnostics carry spans");
    assert_eq!((span.line, span.col), (16, 5));
    assert!(slimsim::lang::is_lowerable(&front), "only warnings, still lowerable");

    // Network passes: unreachable location and unsatisfiable guard.
    let net = slimsim::lang::lower(&model, "Probe", "Main", "root").expect("lowers").network;
    let diags = lint_network(&net, &LintConfig::new());
    assert!(diags.iter().any(|d| d.code == Code::UnreachableLocation), "S100 expected");
    assert!(diags.iter().any(|d| d.code == Code::UnsatisfiableGuard), "S101 expected");

    // Both renderers attribute the finding to the file (and the span where
    // one exists).
    let src = SourceFile::new("broken.slim", &text);
    let all: Vec<_> = front.iter().chain(&diags).cloned().collect();
    let text_out = render_text_all(&all, Some(&src));
    assert!(text_out.contains("broken.slim:16:5"), "{text_out}");
    assert!(text_out.contains("warning[S010]"), "{text_out}");
    assert!(text_out.contains("warning[S100]"), "{text_out}");
    assert!(text_out.contains("warning[S101]"), "{text_out}");
    let json_out = render_json_all(&all, Some("broken.slim"));
    let s010 = json_out.lines().find(|l| l.contains("\"code\":\"S010\"")).expect("S010 line");
    assert!(s010.contains("\"line\":16,\"col\":5"), "{s010}");
    assert!(json_out.lines().any(|l| l.contains("\"code\":\"S101\"")), "{json_out}");
}

#[test]
fn deny_lints_promotes_warnings() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/models/broken.slim");
    let text = std::fs::read_to_string(path).expect("bundled example exists");
    let model = slimsim::lang::parse(&text).expect("example parses");
    let net = slimsim::lang::lower(&model, "Probe", "Main", "root").expect("lowers").network;
    let mut cfg = LintConfig::new();
    cfg.deny_warnings = true;
    let diags = lint_network(&net, &cfg);
    assert!(error_count(&diags) > 0, "warnings promoted to errors under --deny-lints");
}
