//! Property tests for the SLIM front-end: pretty-print → parse is the
//! identity on generated models.

use proptest::prelude::*;
use slimsim::lang::ast::*;
use slimsim::lang::{parse, pretty};

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        slimsim::lang::token::Keyword::from_str(s).is_none()
    })
}

fn arb_qname() -> impl Strategy<Value = QName> {
    prop::collection::vec(arb_ident(), 1..3).prop_map(QName)
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<bool>().prop_map(Literal::Bool),
        (-1000i64..1000).prop_map(Literal::Int),
        (-100.0f64..100.0).prop_map(|r| Literal::Real((r * 64.0).round() / 64.0)),
    ]
}

fn arb_datatype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int(None)),
        (-50i64..0, 1i64..50).prop_map(|(lo, hi)| DataType::Int(Some((lo, hi)))),
        Just(DataType::Real),
        Just(DataType::Clock),
        Just(DataType::Continuous),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    // Expression literals are non-negative: the concrete syntax produces
    // `Neg(Lit(5))` for `-5`, never `Lit(-5)` (negative literals only
    // occur in initializer/default positions).
    let expr_literal = prop_oneof![
        any::<bool>().prop_map(Literal::Bool),
        (0i64..1000).prop_map(Literal::Int),
        (0.0f64..100.0).prop_map(|r| Literal::Real((r * 64.0).round() / 64.0)),
    ];
    let leaf = prop_oneof![
        expr_literal.prop_map(Expr::Lit),
        arb_qname().prop_map(Expr::Name),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Min),
            Just(BinOp::Max),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
            Just(BinOp::Implies),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
        ];
        prop_oneof![
            (bin, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| Expr::Ite(Box::new(c), Box::new(t), Box::new(e))),
        ]
    })
}

fn arb_feature() -> impl Strategy<Value = Feature> {
    (
        arb_ident(),
        prop_oneof![Just(Direction::In), Just(Direction::Out)],
        prop::option::of((arb_datatype(), prop::option::of(arb_literal()))),
    )
        .prop_map(|(name, direction, data)| match data {
            None => Feature { name, direction, data: None, default: None },
            Some((ty, default)) => Feature { name, direction, data: Some(ty), default },
        })
}

fn arb_mode() -> impl Strategy<Value = ModeDecl> {
    (
        arb_ident(),
        any::<bool>(),
        prop::option::of(arb_expr()),
        prop::collection::vec((arb_qname(), -10.0f64..10.0), 0..2),
    )
        .prop_map(|(name, initial, invariant, ders)| ModeDecl {
            name,
            initial,
            invariant,
            derivatives: ders
                .into_iter()
                .map(|(q, r)| (q, (r * 16.0).round() / 16.0))
                .collect(),
        })
}

fn arb_transition() -> impl Strategy<Value = TransitionDecl> {
    (
        arb_ident(),
        any::<bool>(),
        prop_oneof![
            Just(Trigger::Internal),
            arb_qname().prop_map(Trigger::Port),
            (0.01f64..10.0).prop_map(|r| Trigger::Rate((r * 64.0).round() / 64.0)),
        ],
        prop::option::of(arb_expr()),
        prop::collection::vec((arb_qname(), arb_expr()), 0..3),
        arb_ident(),
    )
        .prop_map(|(from, urgent, trigger, guard, effects, to)| {
            // `rate` and `urgent` are mutually exclusive in the grammar's
            // semantics; the printer would still emit them, so normalize.
            let urgent = urgent && !matches!(trigger, Trigger::Rate(_));
            TransitionDecl { from, urgent, trigger, guard, effects, to }
        })
}

fn arb_model() -> impl Strategy<Value = Model> {
    (
        (arb_ident(), prop::collection::vec(arb_feature(), 0..4)),
        (
            prop::collection::vec(
                (arb_ident(), arb_datatype(), prop::option::of(arb_literal())),
                0..3,
            ),
            prop::collection::vec((arb_qname(), arb_expr()), 0..2),
            prop::collection::vec(arb_mode(), 0..3),
            prop::collection::vec(arb_transition(), 0..3),
        ),
    )
        .prop_map(|((tname, features), (datas, flows, modes, transitions))| {
            let tname = format!("T{tname}");
            let mut m = Model::default();
            m.types.push(ComponentType {
                category: Category::Device,
                name: tname.clone(),
                features,
            });
            m.impls.push(ComponentImpl {
                category: Category::Device,
                name: (tname, "I".into()),
                subcomponents: datas
                    .into_iter()
                    .map(|(name, ty, init)| Subcomponent::Data { name, ty, init })
                    .collect(),
                connections: vec![],
                flows: flows
                    .into_iter()
                    .map(|(target, expr)| FlowDef { target, expr })
                    .collect(),
                modes,
                transitions,
            });
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn pretty_then_parse_round_trips(m in arb_model()) {
        let printed = pretty(&m);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(&reparsed, &m, "printed:\n{}", printed);
    }

    #[test]
    fn pretty_is_a_fixed_point(m in arb_model()) {
        let p1 = pretty(&m);
        if let Ok(m2) = parse(&p1) {
            let p2 = pretty(&m2);
            prop_assert_eq!(p1, p2);
        }
    }
}
