//! Randomized property tests for the SLIM front-end: pretty-print → parse
//! is the identity on generated models (cases are drawn from the seeded
//! workspace RNG, so every run is reproducible).

mod common;

use common::*;
use slimsim::lang::ast::*;
use slimsim::lang::{parse, pretty};

fn ident(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let len = usize_in(rng, 1, 9);
        let mut s = String::new();
        s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
        for _ in 1..len {
            s.push(REST[rng.gen_range(0..REST.len())] as char);
        }
        if slimsim::lang::token::Keyword::from_str(&s).is_none() {
            return s;
        }
    }
}

fn qname(rng: &mut StdRng) -> QName {
    QName(vec_of(rng, 1, 3, ident))
}

fn literal(rng: &mut StdRng) -> Literal {
    match rng.gen_range(0..3) {
        0 => Literal::Bool(rng.gen::<bool>()),
        1 => Literal::Int(i64_in(rng, -1000, 1000)),
        _ => Literal::Real((f64_in(rng, -100.0, 100.0) * 64.0).round() / 64.0),
    }
}

fn datatype(rng: &mut StdRng) -> DataType {
    match rng.gen_range(0..6) {
        0 => DataType::Bool,
        1 => DataType::Int(None),
        2 => DataType::Int(Some((i64_in(rng, -50, 0), i64_in(rng, 1, 50)))),
        3 => DataType::Real,
        4 => DataType::Clock,
        _ => DataType::Continuous,
    }
}

/// Expression literals are non-negative: the concrete syntax produces
/// `Neg(Lit(5))` for `-5`, never `Lit(-5)` (negative literals only occur
/// in initializer/default positions).
fn expr_literal(rng: &mut StdRng) -> Literal {
    match rng.gen_range(0..3) {
        0 => Literal::Bool(rng.gen::<bool>()),
        1 => Literal::Int(i64_in(rng, 0, 1000)),
        _ => Literal::Real((f64_in(rng, 0.0, 100.0) * 64.0).round() / 64.0),
    }
}

fn expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range(0..3) == 0 {
        return if rng.gen::<bool>() {
            Expr::Lit(expr_literal(rng))
        } else {
            Expr::Name(qname(rng))
        };
    }
    const OPS: &[BinOp] = &[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Implies,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];
    match rng.gen_range(0..4) {
        0 => Expr::Bin(
            *pick(rng, OPS),
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        ),
        1 => Expr::Not(Box::new(expr(rng, depth - 1))),
        2 => Expr::Neg(Box::new(expr(rng, depth - 1))),
        _ => Expr::Ite(
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        ),
    }
}

fn feature(rng: &mut StdRng) -> Feature {
    let name = ident(rng);
    let direction = if rng.gen::<bool>() { Direction::In } else { Direction::Out };
    match option_of(rng, |rng| (datatype(rng), option_of(rng, literal))) {
        None => Feature { name, direction, data: None, default: None },
        Some((ty, default)) => Feature { name, direction, data: Some(ty), default },
    }
}

fn mode(rng: &mut StdRng) -> ModeDecl {
    ModeDecl {
        name: ident(rng),
        initial: rng.gen::<bool>(),
        invariant: option_of(rng, |rng| expr(rng, 2)),
        derivatives: vec_of(rng, 0, 2, |rng| {
            (qname(rng), (f64_in(rng, -10.0, 10.0) * 16.0).round() / 16.0)
        }),
        pos: Default::default(),
    }
}

fn transition(rng: &mut StdRng) -> TransitionDecl {
    let trigger = match rng.gen_range(0..3) {
        0 => Trigger::Internal,
        1 => Trigger::Port(qname(rng)),
        _ => Trigger::Rate((f64_in(rng, 0.01, 10.0) * 64.0).round() / 64.0),
    };
    // `rate` and `urgent` are mutually exclusive in the grammar's
    // semantics; the printer would still emit them, so normalize.
    let urgent = rng.gen::<bool>() && !matches!(trigger, Trigger::Rate(_));
    TransitionDecl {
        from: ident(rng),
        urgent,
        trigger,
        guard: option_of(rng, |rng| expr(rng, 2)),
        effects: vec_of(rng, 0, 3, |rng| (qname(rng), expr(rng, 2))),
        to: ident(rng),
        pos: Default::default(),
    }
}

fn model(rng: &mut StdRng) -> Model {
    let tname = format!("T{}", ident(rng));
    let mut m = Model::default();
    m.types.push(ComponentType {
        category: Category::Device,
        name: tname.clone(),
        features: vec_of(rng, 0, 4, feature),
        pos: Default::default(),
    });
    m.impls.push(ComponentImpl {
        category: Category::Device,
        name: (tname, "I".into()),
        subcomponents: vec_of(rng, 0, 3, |rng| Subcomponent::Data {
            name: ident(rng),
            ty: datatype(rng),
            init: option_of(rng, literal),
            pos: Default::default(),
        }),
        connections: vec![],
        flows: vec_of(rng, 0, 2, |rng| FlowDef { target: qname(rng), expr: expr(rng, 2) }),
        modes: vec_of(rng, 0, 3, mode),
        transitions: vec_of(rng, 0, 3, transition),
        pos: Default::default(),
    });
    m
}

#[test]
fn pretty_then_parse_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x5eed_9a25e2);
    for case in 0..192 {
        let m = model(&mut rng);
        let printed = pretty(&m);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("case {case}: re-parse failed: {e}\n--- printed ---\n{printed}")
        });
        assert_eq!(reparsed, m, "case {case}: printed:\n{printed}");
    }
}

#[test]
fn pretty_is_a_fixed_point() {
    let mut rng = StdRng::seed_from_u64(0x5eed_f1fed);
    for case in 0..192 {
        let m = model(&mut rng);
        let p1 = pretty(&m);
        if let Ok(m2) = parse(&p1) {
            let p2 = pretty(&m2);
            assert_eq!(p1, p2, "case {case}");
        }
    }
}
