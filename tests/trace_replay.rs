//! Integration tests for structured tracing: witness capture is
//! deterministic across worker counts, captured traces replay to the
//! recorded verdict, and a committed golden trace (recorded by an earlier
//! process) still re-captures byte-identically and replays cleanly —
//! i.e. determinism survives a process restart.

use slim_models::voting::{voting_network, VotingParams};
use slimsim::prelude::*;

/// A component that fails with rate λ = 1, so `P(◇[0,1] failed) ≈ 0.63`
/// and goal witnesses are abundant.
fn exp_model() -> (Network, TimedReach) {
    let mut b = NetworkBuilder::new();
    let mut a = AutomatonBuilder::new("unit");
    let ok = a.location("ok");
    let failed = a.location("failed");
    a.markovian(ok, 1.0, [], failed);
    b.add_automaton(a);
    let net = b.build().expect("builds");
    let goal = Goal::in_location(&net, "unit", "failed").unwrap();
    let property = TimedReach::new(goal, 1.0);
    (net, property)
}

/// Witness traces are byte-identical across `workers ∈ {1, 4}`, and each
/// replays to exactly the verdict and step count it recorded.
#[test]
fn witnesses_identical_across_workers_and_replay_cleanly() {
    let (net, property) = exp_model();
    let mut per_worker_bytes: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 4] {
        let config = SimConfig::default()
            .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
            .with_seed(42)
            .with_workers(workers);
        let obs = SimObserver::new(workers).with_witness_capture(2);
        analyze_observed(&net, &property, &config, Some(&obs)).expect("analysis succeeds");
        let selector = obs.witness_selection().unwrap();
        let witnesses =
            capture_witnesses(&net, &property, &config, &selector, TraceOptions::default())
                .expect("witness capture succeeds");
        assert!(!witnesses.is_empty(), "λ=1 bound=1 run must produce goal witnesses");

        let mut rendered = Vec::new();
        for w in &witnesses {
            // Replay the captured events; the verdict and step count must
            // reproduce the recorded outcome exactly.
            let outcome = replay_events(&net, &property, &w.events).expect("replay succeeds");
            assert_eq!(outcome.verdict, w.outcome.verdict);
            assert_eq!(outcome.steps, w.outcome.steps);
            assert_eq!(outcome.end_time, w.outcome.end_time);
            rendered.push(events_to_json_lines(&w.events));
        }
        per_worker_bytes.push(rendered);
    }
    assert_eq!(
        per_worker_bytes[0], per_worker_bytes[1],
        "witness traces differ between workers=1 and workers=4"
    );
}

/// Tampering with a captured trace is caught by the replay verifier.
#[test]
fn tampered_witness_fails_replay() {
    let (net, property) = exp_model();
    let config = SimConfig::default()
        .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
        .with_seed(42)
        .with_workers(1);
    let obs = SimObserver::new(1).with_witness_capture(1);
    analyze_observed(&net, &property, &config, Some(&obs)).unwrap();
    let selector = obs.witness_selection().unwrap();
    let witnesses =
        capture_witnesses(&net, &property, &config, &selector, TraceOptions::default()).unwrap();
    let w = witnesses.first().expect("one goal witness");
    let last = w.events.len() - 1;

    // A shifted verdict time no longer matches the goal's first hit.
    let mut events = w.events.clone();
    if let TraceEvent::Verdict { at, .. } = &mut events[last] {
        *at += 0.1;
    } else {
        panic!("trace must end with a verdict");
    }
    assert!(replay_events(&net, &property, &events).is_err());

    // A deflated step count contradicts the recorded step numbers.
    let mut events = w.events.clone();
    if let TraceEvent::Verdict { steps, .. } = &mut events[last] {
        assert!(*steps > 0);
        *steps -= 1;
    }
    assert!(replay_events(&net, &property, &events).is_err());
}

/// The committed golden trace — recorded by a separate `slimsim analyze`
/// process — replays cleanly against a freshly built model, and
/// re-capturing its path index yields byte-identical event lines. This is
/// the process-restart half of the determinism contract.
#[test]
fn golden_witness_replays_after_process_restart() {
    let text = include_str!("golden/witness-goal.jsonl");
    let events = parse_trace(text).expect("golden trace parses");
    let TraceEvent::Start {
        format_version,
        model,
        path_index,
        seed,
        strategy,
        bound,
        max_steps,
        args,
    } = events.first().expect("golden trace is nonempty").clone()
    else {
        panic!("golden trace must begin with a Start header");
    };
    assert!(format_version <= TRACE_FORMAT_VERSION);
    assert_eq!(model, "voting", "golden trace was recorded on the voting builtin");
    let net = voting_network(&VotingParams::default());
    let goal_var = args
        .iter()
        .find(|(k, _)| k == "goal-var")
        .map(|(_, v)| v.as_str())
        .expect("header names the goal variable");
    let goal = Goal::expr(Expr::var(net.var_id(goal_var).expect("goal variable exists")));
    let property = TimedReach::new(goal, bound);

    // 1. The recorded trace verifies step-by-step and ends in the
    //    recorded verdict.
    let outcome = replay_events(&net, &property, &events).expect("golden trace replays");
    let TraceEvent::Verdict { verdict, steps, .. } = events.last().unwrap() else {
        panic!("golden trace must end with a verdict");
    };
    assert_eq!(outcome.verdict.code(), verdict);
    assert_eq!(outcome.steps, *steps);

    // 2. Re-generating the same path index in this process reproduces the
    //    recorded events byte-for-byte (modulo the CLI-added header).
    let kind = StrategyKind::parse(&strategy).expect("recorded strategy parses");
    let mut strat = kind.instantiate();
    let mut rng = slimsim::stats::rng::path_rng(seed, path_index);
    let mut sink = MemorySink::default();
    let gen = PathGenerator::new(&net, &property, max_steps);
    {
        let mut tracer = PathTracer::new(&net, &mut sink);
        gen.generate_traced(strat.as_mut(), &mut rng, &mut tracer).expect("path regenerates");
    }
    let golden_body: Vec<&str> = text.lines().skip(1).filter(|l| !l.trim().is_empty()).collect();
    let regenerated = events_to_json_lines(&sink.events);
    let regenerated_body: Vec<&str> = regenerated.lines().collect();
    assert_eq!(regenerated_body, golden_body, "re-captured trace differs from the golden file");
}
