//! Randomized tests for the linear delay solver: the symbolic enabling
//! window must agree with brute-force concrete evaluation of the guard at
//! sampled delays.

mod common;

use common::*;
use slimsim::automata::eval::{eval_bool, Valuation};
use slimsim::automata::expr::{Expr, VarId};
use slimsim::automata::linear::{solve, DelayEnv};
use slimsim::automata::value::Value;

/// Environment: x0 = clock (rate 1), x1 = continuous (rate −2),
/// x2 = discrete int, x3 = bool.
const RATES: [f64; 4] = [1.0, -2.0, 0.0, 0.0];

fn rate(v: VarId) -> f64 {
    RATES[v.0]
}

fn valuation(rng: &mut StdRng) -> Valuation {
    Valuation::new(vec![
        Value::Real(f64_in(rng, 0.0, 50.0)),
        Value::Real(f64_in(rng, -20.0, 20.0)),
        Value::Int(i64_in(rng, -5, 5)),
        Value::Bool(rng.gen::<bool>()),
    ])
}

fn numeric(rng: &mut StdRng) -> Expr {
    let leaf = |rng: &mut StdRng| match rng.gen_range(0..4) {
        0 => Expr::var(VarId(0)),
        1 => Expr::var(VarId(1)),
        2 => Expr::var(VarId(2)),
        _ => Expr::real(f64_in(rng, -30.0, 30.0)),
    };
    let a = leaf(rng);
    let b = leaf(rng);
    let k = f64_in(rng, -3.0, 3.0);
    a.mul(Expr::real(k)).add(b)
}

/// Guard grammar: comparisons of linear combinations, boolean structure.
fn guard(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range(0..3) == 0 {
        return match rng.gen_range(0..7) {
            0 => numeric(rng).le(numeric(rng)),
            1 => numeric(rng).lt(numeric(rng)),
            2 => numeric(rng).ge(numeric(rng)),
            3 => numeric(rng).gt(numeric(rng)),
            4 => Expr::var(VarId(3)),
            5 => Expr::TRUE,
            _ => Expr::FALSE,
        };
    }
    match rng.gen_range(0..4) {
        0 => guard(rng, depth - 1).and(guard(rng, depth - 1)),
        1 => guard(rng, depth - 1).or(guard(rng, depth - 1)),
        2 => guard(rng, depth - 1).implies(guard(rng, depth - 1)),
        _ => guard(rng, depth - 1).not(),
    }
}

/// Concretely evaluates the guard after an exact delay `d`.
fn eval_after_delay(guard: &Expr, nu: &Valuation, d: f64) -> bool {
    let shifted = Valuation::new(
        nu.iter()
            .map(|(v, val)| match val {
                Value::Real(r) => Value::Real(r + RATES[v.0] * d),
                other => other,
            })
            .collect(),
    );
    eval_bool(guard, &shifted).expect("guard evaluates")
}

#[test]
fn solver_agrees_with_concrete_evaluation() {
    let mut rng = StdRng::seed_from_u64(0x5eed_11ea1);
    for case in 0..384 {
        let g = guard(&mut rng, 3);
        let nu = valuation(&mut rng);
        let env = DelayEnv::new(&nu, &rate);
        let window = solve(&g, &env).expect("linear guard solves");
        // Probe a spread of delays, avoiding the exact interval endpoints
        // where float tie-breaking is ambiguous.
        for i in 0..80 {
            let d = i as f64 * 0.637 + 0.0131;
            let symbolic = window.contains(d);
            let concrete = eval_after_delay(&g, &nu, d);
            // Skip probes that sit numerically on a window boundary.
            let near_boundary = window
                .intervals()
                .iter()
                .any(|iv| (iv.lo() - d).abs() < 1e-6 || (iv.hi() - d).abs() < 1e-6);
            if !near_boundary {
                assert_eq!(symbolic, concrete, "case {case}: delay {d} guard {g} window {window}");
            }
        }
    }
}

#[test]
fn window_zero_matches_now() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0000);
    for case in 0..384 {
        let g = guard(&mut rng, 3);
        let nu = valuation(&mut rng);
        let env = DelayEnv::new(&nu, &rate);
        let window = solve(&g, &env).expect("linear guard solves");
        let now = eval_bool(&g, &nu).expect("guard evaluates");
        // `contains(0)` must agree with plain evaluation unless 0 is a
        // boundary point of the window (measure-zero fp ambiguity).
        let boundary = window.intervals().iter().any(|iv| iv.lo().abs() < 1e-9 && !iv.lo_closed());
        if !boundary {
            assert_eq!(window.contains(0.0), now, "case {case}: guard {g} window {window}");
        }
    }
}
