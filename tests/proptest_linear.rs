//! Property tests for the linear delay solver: the symbolic enabling
//! window must agree with brute-force concrete evaluation of the guard at
//! sampled delays.

use proptest::prelude::*;
use slimsim::automata::eval::{eval_bool, Valuation};
use slimsim::automata::expr::{Expr, VarId};
use slimsim::automata::linear::{solve, DelayEnv};
use slimsim::automata::value::Value;

/// Environment: x0 = clock (rate 1), x1 = continuous (rate −2),
/// x2 = discrete int, x3 = bool.
const RATES: [f64; 4] = [1.0, -2.0, 0.0, 0.0];

fn rate(v: VarId) -> f64 {
    RATES[v.0]
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    (0.0f64..50.0, -20.0f64..20.0, -5i64..5, any::<bool>()).prop_map(|(x, y, n, b)| {
        Valuation::new(vec![Value::Real(x), Value::Real(y), Value::Int(n), Value::Bool(b)])
    })
}

/// Guard grammar: comparisons of linear combinations, boolean structure.
fn arb_guard() -> impl Strategy<Value = Expr> {
    let numeric_leaf = prop_oneof![
        Just(Expr::var(VarId(0))),
        Just(Expr::var(VarId(1))),
        Just(Expr::var(VarId(2))),
        (-30.0f64..30.0).prop_map(Expr::real),
    ];
    let numeric = (numeric_leaf.clone(), numeric_leaf, -3.0f64..3.0).prop_map(
        |(a, b, k)| a.mul(Expr::real(k)).add(b),
    );
    let atom = prop_oneof![
        (numeric.clone(), numeric.clone()).prop_map(|(a, b)| a.le(b)),
        (numeric.clone(), numeric.clone()).prop_map(|(a, b)| a.lt(b)),
        (numeric.clone(), numeric.clone()).prop_map(|(a, b)| a.ge(b)),
        (numeric.clone(), numeric).prop_map(|(a, b)| a.gt(b)),
        Just(Expr::var(VarId(3))),
        Just(Expr::TRUE),
        Just(Expr::FALSE),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.prop_map(Expr::not),
        ]
    })
}

/// Concretely evaluates the guard after an exact delay `d`.
fn eval_after_delay(guard: &Expr, nu: &Valuation, d: f64) -> bool {
    let shifted = Valuation::new(
        nu.iter()
            .map(|(v, val)| match val {
                Value::Real(r) => Value::Real(r + RATES[v.0] * d),
                other => other,
            })
            .collect(),
    );
    eval_bool(guard, &shifted).expect("guard evaluates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn solver_agrees_with_concrete_evaluation(guard in arb_guard(), nu in arb_valuation()) {
        let env = DelayEnv::new(&nu, &rate);
        let window = solve(&guard, &env).expect("linear guard solves");
        // Probe a spread of delays, avoiding the exact interval endpoints
        // where float tie-breaking is ambiguous.
        for i in 0..80 {
            let d = i as f64 * 0.637 + 0.0131;
            let symbolic = window.contains(d);
            let concrete = eval_after_delay(&guard, &nu, d);
            // Skip probes that sit numerically on a window boundary.
            let near_boundary = window.intervals().iter().any(|iv| {
                (iv.lo() - d).abs() < 1e-6 || (iv.hi() - d).abs() < 1e-6
            });
            if !near_boundary {
                prop_assert_eq!(symbolic, concrete, "delay {} guard {} window {}", d, guard, window);
            }
        }
    }

    #[test]
    fn window_zero_matches_now(guard in arb_guard(), nu in arb_valuation()) {
        let env = DelayEnv::new(&nu, &rate);
        let window = solve(&guard, &env).expect("linear guard solves");
        let now = eval_bool(&guard, &nu).expect("guard evaluates");
        // `contains(0)` must agree with plain evaluation unless 0 is a
        // boundary point of the window (measure-zero fp ambiguity).
        let boundary = window
            .intervals()
            .iter()
            .any(|iv| iv.lo().abs() < 1e-9 && !iv.lo_closed());
        if !boundary {
            prop_assert_eq!(window.contains(0.0), now, "guard {} window {}", guard, window);
        }
    }
}
