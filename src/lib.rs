//! # slimsim
//!
//! A Rust reproduction of **slimsim** — the statistical model checker for
//! AADL/SLIM models from *"A Statistical Approach for Timed Reachability
//! in AADL Models"* (Bruintjes, Katoen, Lesens; DSN 2015).
//!
//! `slimsim` estimates timed reachability probabilities `P(◇[0,u] goal)`
//! on linear-hybrid, stochastic models by Monte Carlo simulation, with
//! pluggable strategies resolving the model's non-determinism and
//! Chernoff–Hoeffding (or sequential) stopping rules. This umbrella crate
//! re-exports the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`automata`] | event-data automata, interval solver, network semantics |
//! | [`stats`] | CH bound, Gauss/Chow–Robbins generators, bias-free parallel collection |
//! | [`core`] | the simulator: strategies, path generation, runner |
//! | [`ctmc`] | the CTMC baseline pipeline (explore → lump → uniformization) |
//! | [`lang`] | the SLIM front-end: parser, model extension, lowering |
//! | [`lint`] | diagnostics with stable lint codes, static lint passes |
//! | [`models`] | the paper's models: GPS, sensor–filter, launcher |
//! | [`fuzz`] | seeded model generator, differential oracles, shrinker |
//!
//! ## Quick start
//!
//! ```
//! use slimsim::prelude::*;
//!
//! // A component that fails with rate 1 per hour.
//! let mut b = NetworkBuilder::new();
//! let mut a = AutomatonBuilder::new("unit");
//! let ok = a.location("ok");
//! let failed = a.location("failed");
//! a.markovian(ok, 1.0, [], failed);
//! b.add_automaton(a);
//! let net = b.build()?;
//!
//! let goal = Goal::in_location(&net, "unit", "failed").unwrap();
//! let property = TimedReach::new(goal, 1.0);
//! let result = analyze(&net, &property, &SimConfig::default())?;
//! println!("{}", result.estimate); // ≈ 1 − e⁻¹
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios and
//! `EXPERIMENTS.md` for the paper-reproduction harness.

#![forbid(unsafe_code)]

pub use slim_automata as automata;
pub use slim_ctmc as ctmc;
pub use slim_fuzz as fuzz;
pub use slim_lang as lang;
pub use slim_lint as lint;
pub use slim_models as models;
pub use slim_stats as stats;
pub use slimsim_core as core;

/// One-stop import for applications: network building, simulation,
/// properties and statistics.
pub mod prelude {
    pub use slim_automata::prelude::*;
    pub use slim_stats::{Accuracy, Estimate, GeneratorKind};
    pub use slimsim_core::prelude::*;
}
