//! Pruning-soundness differential suite.
//!
//! [`Network::prune`] promises to be *observationally invisible*: the
//! pruned network must produce the same verdict stream and bit-identical
//! probability estimates as the original at any fixed `(seed, workers)`,
//! because statically dead transitions and unreachable locations cannot
//! influence a single sampled path. This suite checks that promise over
//! the live model zoo and over a hand-built fixture where pruning
//! provably removes at least one transition.

use slim_analysis::{analyze_network, analyze_network_with, AnalysisOptions};
use slim_automata::prelude::*;
use slim_models::{
    gps_network, launcher_network, power_system_network, repair_network, sensor_filter_network,
    voting_network, GpsParams, LauncherParams, PowerSystemParams, RepairParams, SensorFilterParams,
    VotingParams, FAILURE_VAR, GOAL_VAR, POWER_FAILED_VAR, REPAIR_GOAL_VAR, VOTING_GOAL_VAR,
};
use slim_stats::rng::path_rng;
use slim_stats::Accuracy;
use slimsim_core::prelude::*;

/// The model zoo: `(name, network, goal variable, time bound)`.
fn zoo() -> Vec<(&'static str, Network, &'static str, f64)> {
    vec![
        ("gps", gps_network(&GpsParams::default()), "gps.measurement", 100.0),
        ("launcher", launcher_network(&LauncherParams::default()), FAILURE_VAR, 1.0),
        (
            "power-system",
            power_system_network(&PowerSystemParams::default()),
            POWER_FAILED_VAR,
            2.0,
        ),
        ("repair", repair_network(&RepairParams::default()), REPAIR_GOAL_VAR, 2.0),
        ("sensor-filter", sensor_filter_network(&SensorFilterParams::default()), GOAL_VAR, 1.0),
        ("voting", voting_network(&VotingParams::default()), VOTING_GOAL_VAR, 1.0),
    ]
}

/// Property `P(<> [0,bound] var)` for a Boolean goal variable.
fn var_property(net: &Network, var: &str, bound: f64) -> TimedReach {
    let v = net.var_id(var).unwrap_or_else(|| panic!("goal variable `{var}`"));
    TimedReach::new(Goal::expr(Expr::var(v)), bound)
}

/// Prunes everything the fixpoint proves dead. The current zoo models
/// are fully live (no-op plans), so for them this exercises the prune
/// *reconstruction* path — the rebuilt network must still behave
/// identically; `fixture_prunes_a_transition_and_stays_equivalent`
/// covers actual removal.
fn prune_all(net: &Network) -> Network {
    let plan = analyze_network(net).prune_plan(net);
    net.prune(&plan).0
}

/// Generates `n` seeded paths and returns their outcomes with the float
/// end time frozen to bits, so equality is exact.
fn verdict_stream(
    net: &Network,
    property: &TimedReach,
    seed: u64,
    n: u64,
) -> Vec<(Verdict, u64, u64)> {
    let gen = PathGenerator::new(net, property, 100_000);
    let mut strategy = StrategyKind::Progressive.instantiate();
    let mut scratch = SimScratch::new();
    (0..n)
        .map(|i| {
            let mut rng = path_rng(seed, i);
            let o = gen
                .generate_with(&mut scratch, strategy.as_mut(), &mut rng)
                .expect("path generation succeeds");
            (o.verdict, o.steps, o.end_time.to_bits())
        })
        .collect()
}

/// Full-analysis config with statistical parameters small enough to keep
/// the suite fast but large enough to draw hundreds of paths.
fn config(seed: u64, workers: usize) -> SimConfig {
    SimConfig::default()
        .with_accuracy(Accuracy::new(0.15, 0.15).unwrap())
        .with_seed(seed)
        .with_workers(workers)
}

#[test]
fn zoo_verdict_streams_survive_pruning() {
    for (name, net, var, bound) in zoo() {
        let pruned = prune_all(&net);
        let property = var_property(&net, var, bound);
        let before = verdict_stream(&net, &property, 7, 200);
        let after = verdict_stream(&pruned, &property, 7, 200);
        assert_eq!(before, after, "verdict stream changed after pruning `{name}`");
    }
}

#[test]
fn zoo_estimates_bit_identical_after_pruning() {
    for (name, net, var, bound) in zoo() {
        let pruned = prune_all(&net);
        let property = var_property(&net, var, bound);
        for workers in [1, 2] {
            let cfg = config(42, workers);
            let a = analyze(&net, &property, &cfg).expect("analysis succeeds");
            let b = analyze(&pruned, &property, &cfg).expect("analysis succeeds");
            assert_eq!(
                a.estimate.mean.to_bits(),
                b.estimate.mean.to_bits(),
                "estimate changed after pruning `{name}` (workers={workers})"
            );
            assert_eq!(a.estimate.samples, b.estimate.samples, "`{name}` samples");
            assert_eq!(a.estimate.successes, b.estimate.successes, "`{name}` successes");
            assert_eq!(a.stats, b.stats, "`{name}` path statistics");
        }
    }
}

/// A network where the fixpoint provably removes a transition: from
/// `step`, the guard `n >= 10` is dead for `n : int [0 .. 5]`, and the
/// `stuck` location behind it becomes unreachable. The goal (reaching
/// `work`) stays live, so the differential actually samples paths.
fn prunable_network() -> Network {
    let mut b = NetworkBuilder::new();
    let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
    let mut a = AutomatonBuilder::new("p");
    let idle = a.location("idle");
    let step = a.location("step");
    let work = a.location("work");
    let stuck = a.location("stuck");
    a.markovian(
        idle,
        2.0,
        [Effect::assign(n, Expr::var(n).add(Expr::int(1)).min(Expr::int(5)))],
        step,
    );
    a.guarded(step, ActionId::TAU, Expr::var(n).ge(Expr::int(1)), [], work);
    a.guarded(step, ActionId::TAU, Expr::var(n).ge(Expr::int(10)), [], stuck);
    a.markovian(work, 1.0, [], idle);
    b.add_automaton(a);
    b.build().expect("fixture network is well-formed")
}

#[test]
fn fixture_prunes_a_transition_and_stays_equivalent() {
    let net = prunable_network();
    let fix = analyze_network(&net);
    let plan = fix.prune_plan(&net);
    assert!(!plan.is_noop(), "the dead guard must be prunable");
    assert!(plan.dropped_transitions() >= 1, "at least one transition removed");
    assert!(plan.dropped_locations() >= 1, "`stuck` becomes unreachable");

    let (pruned, maps) = net.prune(&plan);
    // The goal location survives pruning and can be remapped.
    let p = net.proc_id("p").unwrap();
    let (_, work) = net.loc_id("p", "work").unwrap();
    let work_new = maps.locs[p.0][work.0].expect("live location keeps an id");

    let property = TimedReach::new(Goal::InLocation(p, work), 1.5);
    let property_pruned = TimedReach::new(Goal::InLocation(p, work_new), 1.5);
    let before = verdict_stream(&net, &property, 3, 300);
    let after = verdict_stream(&pruned, &property_pruned, 3, 300);
    assert_eq!(before, after, "verdict stream changed after pruning the fixture");
    assert!(
        before.iter().any(|(v, _, _)| *v == Verdict::Satisfied),
        "the goal must be reachable so the differential is not vacuous"
    );

    let cfg = config(42, 1);
    let a = analyze(&net, &property, &cfg).expect("analysis succeeds");
    let b = analyze(&pruned, &property_pruned, &cfg).expect("analysis succeeds");
    assert_eq!(a.estimate.mean.to_bits(), b.estimate.mean.to_bits());
    assert_eq!(a.estimate.samples, b.estimate.samples);
    assert!(a.estimate.samples > 0, "pre-verdict must not short-circuit a live goal");
}

/// A network where a transition is dead *only* under the clock-zone
/// domain: the clock `x` is never reset, so by the time `work` is
/// entered (guard `x >= 1`) the exit guard `x <= 0` can no longer hold.
/// The interval domain pins clocks to ⊤ and keeps the transition live.
fn zone_prunable_network() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.var("x", VarType::Clock, Value::Real(0.0));
    let mut a = AutomatonBuilder::new("p");
    let idle = a.location("idle");
    let work = a.location("work");
    let stuck = a.location("stuck");
    a.guarded(idle, ActionId::TAU, Expr::var(x).ge(Expr::int(1)), [], work);
    a.guarded(work, ActionId::TAU, Expr::var(x).le(Expr::int(0)), [], stuck);
    a.guarded(work, ActionId::TAU, Expr::var(x).ge(Expr::int(2)), [], idle);
    b.add_automaton(a);
    b.build().expect("fixture network is well-formed")
}

#[test]
fn zone_dead_transition_is_gated_on_the_zone_domain() {
    let net = zone_prunable_network();
    // Interval-only analysis cannot prove the guard dead: the plan is a
    // no-op, so zone-gated pruning never fires without the zone domain.
    let off = analyze_network_with(&net, &AnalysisOptions { zones: false, deadline: None });
    assert!(off.prune_plan(&net).is_noop(), "interval-only plan must be a no-op");
    // With zones on, the guard is provably dead and `stuck` unreachable.
    let fix = analyze_network(&net);
    let plan = fix.prune_plan(&net);
    assert!(plan.dropped_transitions() >= 1, "zone-dead transition removed");
    assert!(plan.dropped_locations() >= 1, "`stuck` becomes unreachable");
}

#[test]
fn zone_gated_pruning_estimates_stay_bit_identical() {
    let net = zone_prunable_network();
    let plan = analyze_network(&net).prune_plan(&net);
    let (pruned, maps) = net.prune(&plan);

    let p = net.proc_id("p").unwrap();
    let (_, work) = net.loc_id("p", "work").unwrap();
    let work_new = maps.locs[p.0][work.0].expect("live location keeps an id");
    let property = TimedReach::new(Goal::InLocation(p, work), 1.5);
    let property_pruned = TimedReach::new(Goal::InLocation(p, work_new), 1.5);

    let before = verdict_stream(&net, &property, 5, 300);
    let after = verdict_stream(&pruned, &property_pruned, 5, 300);
    assert_eq!(before, after, "verdict stream changed after zone-gated pruning");
    assert!(
        before.iter().any(|(v, _, _)| *v == Verdict::Satisfied),
        "the goal must be reachable so the differential is not vacuous"
    );

    for workers in [1, 2] {
        let cfg = config(42, workers);
        let a = analyze(&net, &property, &cfg).expect("analysis succeeds");
        let b = analyze(&pruned, &property_pruned, &cfg).expect("analysis succeeds");
        assert_eq!(
            a.estimate.mean.to_bits(),
            b.estimate.mean.to_bits(),
            "estimate changed after zone-gated pruning (workers={workers})"
        );
        assert_eq!(a.estimate.samples, b.estimate.samples, "samples (workers={workers})");
        assert_eq!(a.estimate.successes, b.estimate.successes, "successes (workers={workers})");
        assert_eq!(a.stats, b.stats, "path statistics (workers={workers})");
        assert!(a.estimate.samples > 0, "pre-verdict must not short-circuit a live goal");
    }
}

#[test]
fn goal_locations_can_be_pinned_into_the_plan() {
    // `keep_location` pins a statically dead location (and is how the
    // CLI keeps `--goal-loc` targets alive); the pinned location then
    // keeps an id in the prune maps.
    let net = prunable_network();
    let fix = analyze_network(&net);
    let mut plan = fix.prune_plan(&net);
    let (p, stuck) = net.loc_id("p", "stuck").unwrap();
    plan.keep_location(p, stuck);
    let (_, maps) = net.prune(&plan);
    assert!(maps.locs[p.0][stuck.0].is_some(), "pinned location survives");
}
