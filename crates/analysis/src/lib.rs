//! Static pre-analysis of SLIM networks by abstract interpretation.
//!
//! A worklist fixpoint over the synchronized network computes, per
//! (process, location), an over-approximation of the reachable variable
//! valuations — interval environments for data variables, action-closed
//! propagation through sync vectors, guard/invariant refinement, and
//! widening for loops (see [`fixpoint`] for the construction and its
//! soundness argument).
//!
//! The fixpoint feeds three consumers:
//!
//! 1. **Property pre-verdicts** — `slimsim-core` short-circuits `analyze`
//!    with an exact `P = 0` when the goal is unreachable in the
//!    abstraction (zero samples drawn);
//! 2. **Model pruning** — [`Fixpoint::prune_plan`] computes the
//!    transitions/locations `Network::prune` can strip with a
//!    byte-identical differential guarantee on live models;
//! 3. **Semantic lints** — `slim-lint`'s S1xx/S3xx passes consult the
//!    same fixpoint instead of re-deriving weaker syntactic facts.
//!
//! Every verdict is conservative: `unreachable`/`dead` answers are
//! definite facts about all concrete runs; everything the abstraction
//! cannot decide stays "maybe".

#![forbid(unsafe_code)]

pub mod domain;
pub mod fixpoint;
pub mod summary;

pub use domain::{abs_eval, refine, AbsVal};
pub use fixpoint::{analyze_network, guard_total, Fixpoint, TransStatus};
pub use summary::AnalysisSummary;
