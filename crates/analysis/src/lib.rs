//! Static pre-analysis of SLIM networks by abstract interpretation.
//!
//! A worklist fixpoint over the synchronized network computes, per
//! (process, location), an over-approximation of the reachable variable
//! valuations — interval environments for data variables, action-closed
//! propagation through sync vectors, guard/invariant refinement, and
//! widening for loops (see [`fixpoint`] for the construction and its
//! soundness argument).
//!
//! A clock-zone domain ([`zone`]) runs as a reduced product with the
//! interval store: canonical difference-bound matrices over the
//! network's clock variables plus a synthetic global-time clock, with
//! time elapse, guard/invariant intersection, reset on effect writes,
//! and k-bound extrapolation for termination.
//!
//! The fixpoint feeds four consumers:
//!
//! 1. **Property pre-verdicts** — `slimsim-core` short-circuits `analyze`
//!    with an exact `P = 0` when the goal is unreachable in the
//!    abstraction (zero samples drawn), including *timed*
//!    unreachability: the goal is location-reachable but the zone lower
//!    bound on elapsed time exceeds the property deadline;
//! 2. **Model pruning** — [`Fixpoint::prune_plan`] computes the
//!    transitions/locations `Network::prune` can strip with a
//!    byte-identical differential guarantee on live models, now
//!    including zone-dead guards;
//! 3. **Semantic lints** — `slim-lint`'s S1xx/S3xx passes consult the
//!    same fixpoint instead of re-deriving weaker syntactic facts
//!    (S302 zone-dead guards, S303 static timelocks);
//! 4. **Distance-to-goal maps** — per-location minimum transition
//!    counts and minimum elapsed times serialized in
//!    [`AnalysisSummary`], the seam rare-event splitting levels hang
//!    off of.
//!
//! Every verdict is conservative: `unreachable`/`dead` answers are
//! definite facts about all concrete runs; everything the abstraction
//! cannot decide stays "maybe".

#![forbid(unsafe_code)]

pub mod domain;
pub mod fixpoint;
pub mod summary;
pub mod zone;

pub use domain::{abs_eval, refine, AbsVal};
pub use fixpoint::{
    analyze_network, analyze_network_with, guard_total, AnalysisOptions, Fixpoint, TransStatus,
};
pub use summary::AnalysisSummary;
pub use zone::Dbm;
