//! Abstract interval domain over network variables.
//!
//! The domain pairs a three-valued Boolean with closed (possibly
//! unbounded) numeric intervals — the classic non-relational interval
//! abstraction. Every operation is a sound over-approximation of the
//! concrete [`slim_automata::eval`] semantics: if the abstract evaluation
//! of an expression yields a definite value, every concrete valuation
//! drawn from the abstract environment agrees with it.
//!
//! The domain grew out of the lint crate's private S101 evaluator; it is
//! exported here so the fixpoint engine, the lint passes, and the
//! pre-verdict logic all share one source of truth.

use slim_automata::expr::{BinOp, Expr, VarId};
use slim_automata::value::{Value, VarType};

/// Abstract value: a three-valued Boolean or a numeric interval (bounds
/// may be infinite). Sound over-approximation of a set of concrete values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsVal {
    /// `Some(b)` = definitely `b`; `None` = unknown.
    Bool(Option<bool>),
    /// All values in `[lo, hi]`.
    Num(f64, f64),
}

/// The unknown Boolean (⊤ of the Boolean component).
pub const UNKNOWN: AbsVal = AbsVal::Bool(None);
/// The unbounded interval (⊤ of the numeric component).
pub const TOP_NUM: AbsVal = AbsVal::Num(f64::NEG_INFINITY, f64::INFINITY);

/// Sanitizing interval constructor: NaN bounds (from `∞ − ∞` and friends)
/// widen to the corresponding infinity.
pub fn num(lo: f64, hi: f64) -> AbsVal {
    let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
    let hi = if hi.is_nan() { f64::INFINITY } else { hi };
    AbsVal::Num(lo, hi)
}

impl AbsVal {
    /// The abstraction of every value a type admits. Timed variables
    /// (clocks, continuous) are unbounded: their value drifts with time.
    pub fn of_type(ty: VarType) -> AbsVal {
        match ty {
            VarType::Bool => AbsVal::Bool(None),
            VarType::Int { lo, hi } => AbsVal::Num(lo as f64, hi as f64),
            VarType::Real | VarType::Clock | VarType::Continuous => TOP_NUM,
        }
    }

    /// The abstraction of one concrete value (a singleton).
    pub fn exact(v: Value) -> AbsVal {
        match v {
            Value::Bool(b) => AbsVal::Bool(Some(b)),
            Value::Int(i) => AbsVal::Num(i as f64, i as f64),
            Value::Real(r) => AbsVal::Num(r, r),
        }
    }

    /// Definite Boolean view (`None` when unknown or numeric).
    pub fn as_bool(self) -> Option<bool> {
        match self {
            AbsVal::Bool(b) => b,
            AbsVal::Num(..) => None,
        }
    }

    /// True when the interval holds exactly one value.
    pub fn is_singleton(self) -> bool {
        matches!(self, AbsVal::Num(lo, hi) if lo == hi && lo.is_finite())
    }

    /// Least upper bound.
    pub fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Bool(x), AbsVal::Bool(y)) => AbsVal::Bool(if x == y { x } else { None }),
            (AbsVal::Num(al, ah), AbsVal::Num(bl, bh)) => AbsVal::Num(al.min(bl), ah.max(bh)),
            // Mixed kinds cannot type-check; stay unknown.
            _ => UNKNOWN,
        }
    }

    /// Greatest lower bound; `None` is ⊥ (the intersection is empty, i.e.
    /// the constraint is contradictory).
    pub fn meet(self, other: AbsVal) -> Option<AbsVal> {
        match (self, other) {
            (AbsVal::Bool(None), b @ AbsVal::Bool(_)) => Some(b),
            (b @ AbsVal::Bool(_), AbsVal::Bool(None)) => Some(b),
            (AbsVal::Bool(Some(x)), AbsVal::Bool(Some(y))) => {
                (x == y).then_some(AbsVal::Bool(Some(x)))
            }
            (AbsVal::Num(al, ah), AbsVal::Num(bl, bh)) => {
                let (lo, hi) = (al.max(bl), ah.min(bh));
                (lo <= hi).then_some(AbsVal::Num(lo, hi))
            }
            _ => Some(UNKNOWN),
        }
    }

    /// Standard interval widening: any bound that moved since `self` jumps
    /// to infinity, guaranteeing finite ascending chains. `newer` must be
    /// an upper bound of `self` (i.e. the join of the old value with the
    /// incoming one).
    pub fn widen(self, newer: AbsVal) -> AbsVal {
        match (self, newer) {
            (AbsVal::Num(al, ah), AbsVal::Num(bl, bh)) => {
                let lo = if bl < al { f64::NEG_INFINITY } else { al };
                let hi = if bh > ah { f64::INFINITY } else { ah };
                AbsVal::Num(lo, hi)
            }
            _ => newer,
        }
    }
}

/// Evaluates `e` over an abstract environment (`read` maps each variable
/// to its abstract value).
pub fn abs_eval(e: &Expr, read: &dyn Fn(VarId) -> AbsVal) -> AbsVal {
    match e {
        Expr::Const(Value::Bool(b)) => AbsVal::Bool(Some(*b)),
        Expr::Const(Value::Int(i)) => AbsVal::Num(*i as f64, *i as f64),
        Expr::Const(Value::Real(r)) => AbsVal::Num(*r, *r),
        Expr::Var(v) => read(*v),
        Expr::Not(x) => match abs_eval(x, read) {
            AbsVal::Bool(b) => AbsVal::Bool(b.map(|b| !b)),
            AbsVal::Num(..) => UNKNOWN,
        },
        Expr::Neg(x) => match abs_eval(x, read) {
            AbsVal::Num(lo, hi) => num(-hi, -lo),
            AbsVal::Bool(_) => TOP_NUM,
        },
        Expr::Bin(op, a, b) => abs_bin(*op, abs_eval(a, read), abs_eval(b, read)),
        Expr::Ite(c, t, e) => match abs_eval(c, read) {
            AbsVal::Bool(Some(true)) => abs_eval(t, read),
            AbsVal::Bool(Some(false)) => abs_eval(e, read),
            _ => abs_eval(t, read).join(abs_eval(e, read)),
        },
    }
}

/// Abstract binary operation.
pub fn abs_bin(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    use BinOp::*;
    match op {
        And | Or | Xor | Implies => {
            let (AbsVal::Bool(x), AbsVal::Bool(y)) = (a, b) else { return UNKNOWN };
            AbsVal::Bool(match op {
                And => match (x, y) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                Or => match (x, y) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                Xor => match (x, y) {
                    (Some(x), Some(y)) => Some(x != y),
                    _ => None,
                },
                Implies => match (x, y) {
                    (Some(false), _) | (_, Some(true)) => Some(true),
                    (Some(true), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!(),
            })
        }
        Eq | Ne => {
            let eq = match (a, b) {
                (AbsVal::Bool(Some(x)), AbsVal::Bool(Some(y))) => Some(x == y),
                (AbsVal::Num(al, ah), AbsVal::Num(bl, bh)) => {
                    if al == ah && bl == bh && al == bl {
                        Some(true)
                    } else if ah < bl || bh < al {
                        Some(false)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            AbsVal::Bool(if op == Ne { eq.map(|e| !e) } else { eq })
        }
        Lt | Le | Gt | Ge => {
            let (AbsVal::Num(al, ah), AbsVal::Num(bl, bh)) = (a, b) else { return UNKNOWN };
            AbsVal::Bool(match op {
                Lt => {
                    if ah < bl {
                        Some(true)
                    } else if al >= bh {
                        Some(false)
                    } else {
                        None
                    }
                }
                Le => {
                    if ah <= bl {
                        Some(true)
                    } else if al > bh {
                        Some(false)
                    } else {
                        None
                    }
                }
                Gt => {
                    if al > bh {
                        Some(true)
                    } else if ah <= bl {
                        Some(false)
                    } else {
                        None
                    }
                }
                Ge => {
                    if al >= bh {
                        Some(true)
                    } else if ah < bl {
                        Some(false)
                    } else {
                        None
                    }
                }
                _ => unreachable!(),
            })
        }
        Add | Sub | Mul | Div | Min | Max => {
            let (AbsVal::Num(al, ah), AbsVal::Num(bl, bh)) = (a, b) else { return TOP_NUM };
            match op {
                Add => num(al + bl, ah + bh),
                Sub => num(al - bh, ah - bl),
                Mul => {
                    let p = [
                        mul_bound(al, bl),
                        mul_bound(al, bh),
                        mul_bound(ah, bl),
                        mul_bound(ah, bh),
                    ];
                    num(
                        p.iter().copied().fold(f64::INFINITY, f64::min),
                        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
                Div => {
                    if bl <= 0.0 && 0.0 <= bh {
                        TOP_NUM
                    } else {
                        let p = [al / bl, al / bh, ah / bl, ah / bh];
                        num(
                            p.iter().copied().fold(f64::INFINITY, f64::min),
                            p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        )
                    }
                }
                Min => num(al.min(bl), ah.min(bh)),
                Max => num(al.max(bl), ah.max(bh)),
                _ => unreachable!(),
            }
        }
    }
}

/// Interval-product bound with the convention `0 · ±∞ = 0` (the zero
/// endpoint is attainable, the infinity is a bound, so their product's
/// contribution is 0, not NaN).
fn mul_bound(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

/// Assumes `e == want` and narrows `frame` (indexed by [`VarId`]) in
/// place. Returns `false` when the assumption is contradictory (⊥): no
/// concrete valuation in `frame` satisfies it.
///
/// The refinement is conservative: it descends through conjunctions (and
/// negated disjunctions), narrows variable operands of comparisons, and
/// otherwise just checks the assumption against the abstract evaluation.
pub fn refine(e: &Expr, want: bool, frame: &mut [AbsVal]) -> bool {
    use BinOp::*;
    match e {
        Expr::Const(Value::Bool(b)) => *b == want,
        Expr::Var(v) => match frame[v.0].meet(AbsVal::Bool(Some(want))) {
            Some(m) => {
                frame[v.0] = m;
                true
            }
            None => false,
        },
        Expr::Not(x) => refine(x, !want, frame),
        Expr::Bin(And, a, b) if want => refine(a, true, frame) && refine(b, true, frame),
        Expr::Bin(Or, a, b) if !want => refine(a, false, frame) && refine(b, false, frame),
        Expr::Bin(Implies, a, b) if !want => refine(a, true, frame) && refine(b, false, frame),
        Expr::Bin(op, a, b) if op.is_comparison() => {
            let op = if want { *op } else { negate_cmp(*op) };
            refine_cmp(op, a, b, frame)
        }
        // Anything else: no narrowing, but a definite contradiction with
        // the abstract evaluation still kills the path.
        _ => abs_eval(e, &|v| frame[v.0]) != AbsVal::Bool(Some(!want)),
    }
}

/// The comparison holding exactly when `op` does not.
fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        _ => unreachable!("not a comparison: {op:?}"),
    }
}

/// Assumes `a op b` and narrows variable operands.
fn refine_cmp(op: BinOp, a: &Expr, b: &Expr, frame: &mut [AbsVal]) -> bool {
    // Boolean equality refines like a variable assumption.
    if op == BinOp::Eq {
        match (a, b) {
            (Expr::Var(v), Expr::Const(Value::Bool(c)))
            | (Expr::Const(Value::Bool(c)), Expr::Var(v)) => {
                return match frame[v.0].meet(AbsVal::Bool(Some(*c))) {
                    Some(m) => {
                        frame[v.0] = m;
                        true
                    }
                    None => false,
                };
            }
            _ => {}
        }
    }
    if op == BinOp::Ne {
        // No interval narrowing from disequality; consistency check only.
        let e = abs_bin(BinOp::Ne, abs_eval(a, &|v| frame[v.0]), abs_eval(b, &|v| frame[v.0]));
        return e != AbsVal::Bool(Some(false));
    }
    // Narrow a numeric variable on either side against the other side's
    // interval. Strict bounds are relaxed to non-strict (sound: closed
    // intervals cannot express open endpoints).
    let bv = abs_eval(b, &|v| frame[v.0]);
    if let (Expr::Var(v), AbsVal::Num(bl, bh)) = (a, bv) {
        if let AbsVal::Num(..) = frame[v.0] {
            let bound = match op {
                BinOp::Lt | BinOp::Le => AbsVal::Num(f64::NEG_INFINITY, bh),
                BinOp::Gt | BinOp::Ge => AbsVal::Num(bl, f64::INFINITY),
                BinOp::Eq => AbsVal::Num(bl, bh),
                _ => TOP_NUM,
            };
            match frame[v.0].meet(bound) {
                Some(m) => frame[v.0] = m,
                None => return false,
            }
        }
    }
    let av = abs_eval(a, &|v| frame[v.0]);
    if let (Expr::Var(v), AbsVal::Num(al, ah)) = (b, av) {
        if let AbsVal::Num(..) = frame[v.0] {
            let bound = match op {
                // a ≤ v ⇒ v ≥ a's lower bound, and dually.
                BinOp::Lt | BinOp::Le => AbsVal::Num(al, f64::INFINITY),
                BinOp::Gt | BinOp::Ge => AbsVal::Num(f64::NEG_INFINITY, ah),
                BinOp::Eq => AbsVal::Num(al, ah),
                _ => TOP_NUM,
            };
            match frame[v.0].meet(bound) {
                Some(m) => frame[v.0] = m,
                None => return false,
            }
        }
    }
    // Final consistency check over the (possibly narrowed) frame.
    abs_bin(op, abs_eval(a, &|v| frame[v.0]), abs_eval(b, &|v| frame[v.0]))
        != AbsVal::Bool(Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_eval_decides_range_comparisons() {
        let read = |_: VarId| AbsVal::Num(0.0, 5.0);
        let x = || Expr::var(VarId(0));
        assert_eq!(abs_eval(&x().ge(Expr::int(10)), &read), AbsVal::Bool(Some(false)));
        assert_eq!(abs_eval(&x().le(Expr::int(5)), &read), AbsVal::Bool(Some(true)));
        assert_eq!(abs_eval(&x().ge(Expr::int(3)), &read), AbsVal::Bool(None));
        assert_eq!(abs_eval(&x().lt(Expr::int(0)), &read), AbsVal::Bool(Some(false)));
    }

    #[test]
    fn meet_detects_contradictions() {
        assert_eq!(AbsVal::Num(0.0, 2.0).meet(AbsVal::Num(3.0, 9.0)), None);
        assert_eq!(AbsVal::Bool(Some(true)).meet(AbsVal::Bool(Some(false))), None);
        assert_eq!(AbsVal::Num(0.0, 5.0).meet(AbsVal::Num(3.0, 9.0)), Some(AbsVal::Num(3.0, 5.0)));
    }

    #[test]
    fn widen_jumps_moving_bounds_to_infinity() {
        let old = AbsVal::Num(0.0, 1.0);
        let grown = old.join(AbsVal::Num(0.0, 2.0));
        assert_eq!(old.widen(grown), AbsVal::Num(0.0, f64::INFINITY));
        assert_eq!(old.widen(old), old);
    }

    #[test]
    fn refine_narrows_conjunctions_of_comparisons() {
        let x = || Expr::var(VarId(0));
        let mut frame = vec![AbsVal::Num(0.0, 10.0)];
        let g = x().ge(Expr::int(3)).and(x().le(Expr::int(7)));
        assert!(refine(&g, true, &mut frame));
        assert_eq!(frame[0], AbsVal::Num(3.0, 7.0));
    }

    #[test]
    fn refine_detects_per_conjunct_contradictions_over_unbounded_vars() {
        // The per-atom evaluator alone cannot decide `x < 1 ∧ x > 2` over
        // an unbounded variable; refinement can.
        let x = || Expr::var(VarId(0));
        let mut frame = vec![TOP_NUM];
        let g = x().lt(Expr::real(1.0)).and(x().gt(Expr::real(2.0)));
        assert!(!refine(&g, true, &mut frame));
    }

    #[test]
    fn refine_negation_flips_polarity() {
        let x = || Expr::var(VarId(0));
        let mut frame = vec![AbsVal::Num(0.0, 10.0)];
        assert!(refine(&x().lt(Expr::int(4)).not(), true, &mut frame));
        assert_eq!(frame[0], AbsVal::Num(4.0, 10.0));
    }

    #[test]
    fn refine_boolean_variables() {
        let mut frame = vec![AbsVal::Bool(None)];
        assert!(refine(&Expr::var(VarId(0)), true, &mut frame));
        assert_eq!(frame[0], AbsVal::Bool(Some(true)));
        assert!(!refine(&Expr::var(VarId(0)), false, &mut frame));
    }

    #[test]
    fn refine_both_sides_variables() {
        // x ≤ y with x ∈ [4, 10], y ∈ [0, 6] narrows both to [4, 6].
        let mut frame = vec![AbsVal::Num(4.0, 10.0), AbsVal::Num(0.0, 6.0)];
        let g = Expr::var(VarId(0)).le(Expr::var(VarId(1)));
        assert!(refine(&g, true, &mut frame));
        assert_eq!(frame[0], AbsVal::Num(4.0, 6.0));
        assert_eq!(frame[1], AbsVal::Num(4.0, 6.0));
    }
}
