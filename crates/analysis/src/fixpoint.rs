//! Worklist fixpoint over the synchronized network.
//!
//! Computes, per (process, location), an over-approximation of the
//! variable valuations reachable there, by abstract interpretation of
//! τ/Markovian/sync transitions with interval environments
//! ([`crate::domain`]):
//!
//! * **Flow-sensitive** tracking for *private* variables — owned by one
//!   automaton, written only by its effects, and not a flow target. Each
//!   (process, location) pair carries its own interval per private
//!   variable.
//! * A **flow-insensitive global store** for everything else (shared
//!   variables and flow targets). Timed variables (clocks, continuous)
//!   are pinned to ⊤: their values drift with time.
//! * **Guard refinement** narrows the frame before effects run (the
//!   transition fires only where the guard holds), **invariant
//!   refinement** narrows it on entry (violating runs abort), and
//!   **widening** (after [`WIDEN_AFTER`] growing joins) guarantees
//!   termination of loops like `n := n + 1`.
//!
//! Sync transitions propagate only while their action is *available* —
//! every participant has at least one guard-satisfiable transition from a
//! reachable location. This is the action-closed view that makes the dead
//! set sound for pruning: if any participant lacks a live option, no
//! participant can ever fire the action.
//!
//! Soundness notes. Runs that abort (invariant violated on entry,
//! integer assignment out of range, evaluation errors) have no successor
//! states, so cutting them from propagation over-approximates exactly the
//! set of states *completed* steps can reach. Urgency and time ordering
//! are ignored — both only restrict which successors occur, never add
//! new ones.

use crate::domain::{abs_eval, refine, AbsVal, TOP_NUM};
use crate::zone::{constrain_expr, max_literal, Dbm, ZoneCtx};
use slim_automata::automaton::{ActionId, GuardKind, LocId, ProcId, TransId};
use slim_automata::expr::{BinOp, Expr, VarId};
use slim_automata::network::{Network, PrunePlan};
use slim_automata::value::{Value, VarType};

/// Joins tolerated per (process, location) env — and per store variable —
/// before widening kicks in. Zone joins use the same threshold.
const WIDEN_AFTER: u32 = 8;

/// Tuning knobs for [`analyze_network_with`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Run the clock-zone (DBM) product next to the interval store. On by
    /// default; disable to reproduce the untimed fixpoint exactly.
    pub zones: bool,
    /// Property deadline, folded into the extrapolation constant `k` so
    /// elapsed-time bounds near the deadline survive extrapolation.
    pub deadline: Option<f64>,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions { zones: true, deadline: None }
    }
}

/// Why a transition can or cannot fire, in the final fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransStatus {
    /// May fire (not provably dead).
    Live,
    /// Its source location is unreachable; the guard is never evaluated.
    DeadSource,
    /// Its guard is unsatisfiable in every valuation reaching the source.
    DeadGuard,
    /// Guard and source are fine, but the sync action can never fire:
    /// some participant has no live transition carrying it.
    SyncBlocked,
}

/// Result of [`analyze_network`]: reachability, per-transition liveness,
/// and abstract environments, plus iteration statistics.
#[derive(Debug, Clone)]
pub struct Fixpoint {
    /// Location reachability, `[proc][loc]`.
    reachable: Vec<Vec<bool>>,
    /// Abstract env per `[proc][loc]` over that proc's private variables
    /// (`None` until the location is reached).
    envs: Vec<Vec<Option<Vec<AbsVal>>>>,
    /// Private variables of each process, in frame order.
    priv_vars: Vec<Vec<VarId>>,
    /// Flow-insensitive store over all variables (timed vars pinned ⊤).
    store: Vec<AbsVal>,
    /// Final classification, `[proc][trans]`.
    status: Vec<Vec<TransStatus>>,
    /// Live transitions with an effect provably outside its target's
    /// range (the step always errors): `(proc, trans, effect index)`.
    doomed_effects: Vec<(ProcId, TransId, usize)>,
    /// Whether the clock-zone product ran.
    zones_enabled: bool,
    /// Extrapolation constant used by the zone domain.
    extrapolation_k: f64,
    /// Total tracked clock slots across all processes.
    zone_clock_count: usize,
    /// Zone lower bound on elapsed global time when residing at
    /// `[proc][loc]` (`None` when unreachable or zones are off).
    min_time: Vec<Vec<Option<f64>>>,
    /// Transitions dead *only* because of the zone domain (interval-live
    /// but zone-empty guard), `[proc][trans]` — the S302 attribution set.
    zone_dead: Vec<Vec<bool>>,
    /// Reachable locations whose invariant bounds residence while every
    /// outgoing transition is dead, at least one of them only under the
    /// zone domain — static timelocks the untimed pass cannot see (S303).
    timelocks: Vec<(ProcId, LocId)>,
    /// Zone lower bound on elapsed global time when `[proc][trans]` can
    /// first fire (`None` for dead transitions or with zones off).
    trans_min_time: Vec<Vec<Option<f64>>>,
    /// Fixpoint rounds until stabilization.
    pub rounds: usize,
    /// Number of widening applications.
    pub widenings: usize,
}

/// Runs the fixpoint over `net` with default options (zone product on;
/// the network should have passed validation — on malformed networks the
/// analysis may panic on out-of-range indices).
pub fn analyze_network(net: &Network) -> Fixpoint {
    analyze_network_with(net, &AnalysisOptions::default())
}

/// Runs the fixpoint over `net` with explicit [`AnalysisOptions`].
pub fn analyze_network_with(net: &Network, opts: &AnalysisOptions) -> Fixpoint {
    Engine::new(net, opts).run()
}

struct Engine<'n> {
    net: &'n Network,
    timed: Vec<bool>,
    priv_vars: Vec<Vec<VarId>>,
    /// Global var → index into its owner's `priv_vars` list.
    priv_idx: Vec<Option<(usize, usize)>>,
    reachable: Vec<Vec<bool>>,
    envs: Vec<Vec<Option<Vec<AbsVal>>>>,
    env_joins: Vec<Vec<u32>>,
    store: Vec<AbsVal>,
    store_joins: Vec<u32>,
    /// Guard-satisfiable-from-reachable-source flags (monotone).
    live: Vec<Vec<bool>>,
    /// Zone product: tracked clocks per process (DBM indices 1..), with
    /// the synthetic global-time clock T as the last index.
    zones_on: bool,
    k: f64,
    zclocks: Vec<Vec<VarId>>,
    /// Per process: var → 1-based DBM index of its tracked clock.
    zidx: Vec<Vec<Option<usize>>>,
    /// Residence zone per `[proc][loc]` (`None` until reached). May be
    /// non-canonical after widening/extrapolation; readers re-close.
    zones: Vec<Vec<Option<Dbm>>>,
    zone_joins: Vec<Vec<u32>>,
    changed: bool,
    rounds: usize,
    widenings: usize,
}

impl<'n> Engine<'n> {
    fn new(net: &'n Network, opts: &AnalysisOptions) -> Engine<'n> {
        let vars = net.vars();
        let nvars = vars.len();
        let timed: Vec<bool> = vars.iter().map(|d| d.ty.is_timed()).collect();

        // A variable is private to its owner when only the owner's
        // effects ever write it and no flow re-derives it; everything
        // else lives in the global store.
        let mut flow_target = vec![false; nvars];
        for f in net.flows() {
            flow_target[f.target.0] = true;
        }
        let mut foreign_write = vec![false; nvars];
        for (p, a) in net.automata().iter().enumerate() {
            for t in &a.transitions {
                for eff in &t.effects {
                    if vars[eff.var.0].owner != Some(ProcId(p)) {
                        foreign_write[eff.var.0] = true;
                    }
                }
            }
        }
        let mut priv_vars: Vec<Vec<VarId>> = vec![Vec::new(); net.automata().len()];
        let mut priv_idx: Vec<Option<(usize, usize)>> = vec![None; nvars];
        for (v, decl) in vars.iter().enumerate() {
            if let Some(owner) = decl.owner {
                if !timed[v] && !flow_target[v] && !foreign_write[v] {
                    priv_idx[v] = Some((owner.0, priv_vars[owner.0].len()));
                    priv_vars[owner.0].push(VarId(v));
                }
            }
        }

        // Initial store: declared values exactly, timed pinned to ⊤,
        // then the flows overwrite their targets (the declared initial
        // value of a flow target is never observable).
        let mut store: Vec<AbsVal> = vars
            .iter()
            .enumerate()
            .map(|(v, d)| if timed[v] { TOP_NUM } else { AbsVal::exact(d.ty.canonicalize(d.init)) })
            .collect();
        for f in net.flows() {
            let val = abs_eval(&f.expr, &|v| store[v.0]);
            store[f.target.0] = val
                .meet(AbsVal::of_type(vars[f.target.0].ty))
                .unwrap_or_else(|| AbsVal::of_type(vars[f.target.0].ty));
        }

        let reachable: Vec<Vec<bool>> = net
            .automata()
            .iter()
            .map(|a| {
                let mut r = vec![false; a.locations.len()];
                r[a.init.0] = true;
                r
            })
            .collect();
        let envs: Vec<Vec<Option<Vec<AbsVal>>>> = net
            .automata()
            .iter()
            .enumerate()
            .map(|(p, a)| {
                let mut e: Vec<Option<Vec<AbsVal>>> = vec![None; a.locations.len()];
                e[a.init.0] = Some(priv_vars[p].iter().map(|v| store[v.0]).collect());
                e
            })
            .collect();
        let env_joins = net.automata().iter().map(|a| vec![0; a.locations.len()]).collect();
        let live = net.automata().iter().map(|a| vec![false; a.transitions.len()]).collect();

        // Clock-zone product setup. A clock is tracked by process `p`
        // when only `p`'s effects can reset it (never-written clocks are
        // tracked by everyone): then "whenever p is at l, the clock
        // valuation lies in the zone" holds regardless of interleaving,
        // because no foreign step can move the tracked clocks. Flow
        // targets and rate-listed clocks are excluded (their dynamics are
        // not plain rate-1 elapse).
        let nprocs = net.automata().len();
        let zones_on = opts.zones;
        let mut zclocks: Vec<Vec<VarId>> = vec![Vec::new(); nprocs];
        let mut zidx: Vec<Vec<Option<usize>>> = vec![vec![None; nvars]; nprocs];
        let mut k = opts.deadline.unwrap_or(0.0).abs();
        if zones_on {
            let mut writer: Vec<Option<usize>> = vec![None; nvars];
            let mut multi_writer = vec![false; nvars];
            let mut rate_listed = vec![false; nvars];
            for (p, a) in net.automata().iter().enumerate() {
                for l in &a.locations {
                    k = k.max(max_literal(&l.invariant));
                    for (v, _) in &l.rates {
                        rate_listed[v.0] = true;
                    }
                }
                for t in &a.transitions {
                    if let GuardKind::Boolean(g) = &t.guard {
                        k = k.max(max_literal(g));
                    }
                    for eff in &t.effects {
                        k = k.max(max_literal(&eff.expr));
                        match writer[eff.var.0] {
                            None => writer[eff.var.0] = Some(p),
                            Some(q) if q == p => {}
                            Some(_) => multi_writer[eff.var.0] = true,
                        }
                    }
                }
            }
            for f in net.flows() {
                k = k.max(max_literal(&f.expr));
            }
            for (v, decl) in vars.iter().enumerate() {
                if decl.ty != VarType::Clock || flow_target[v] || multi_writer[v] || rate_listed[v]
                {
                    continue;
                }
                if let Value::Real(r) = decl.ty.canonicalize(decl.init) {
                    k = k.max(r.abs());
                }
                let mut track = |p: usize, zclocks: &mut Vec<Vec<VarId>>| {
                    zidx[p][v] = Some(zclocks[p].len() + 1);
                    zclocks[p].push(VarId(v));
                };
                match writer[v] {
                    Some(p) => track(p, &mut zclocks),
                    None => (0..nprocs).for_each(|p| track(p, &mut zclocks)),
                }
            }
            k = k.max(1.0);
        }
        // Initial residence zones: the exact initial point (clock inits
        // plus global time T = 0), intersected with the init location's
        // invariant, elapsed, and re-intersected.
        let zones: Vec<Vec<Option<Dbm>>> = net
            .automata()
            .iter()
            .enumerate()
            .map(|(p, a)| {
                let mut zs: Vec<Option<Dbm>> = vec![None; a.locations.len()];
                if zones_on {
                    let mut vals: Vec<f64> = zclocks[p]
                        .iter()
                        .map(|v| match vars[v.0].ty.canonicalize(vars[v.0].init) {
                            Value::Real(r) => r,
                            Value::Int(i) => i as f64,
                            Value::Bool(_) => 0.0,
                        })
                        .collect();
                    vals.push(0.0); // global time T
                    let entry = Dbm::point(&vals);
                    let inv = &a.locations[a.init.0].invariant;
                    let ctx = ZoneCtx { zidx: &zidx[p], read: &|v| store[v.0] };
                    let mut met = entry.clone();
                    if !inv.is_const_true() {
                        constrain_expr(&mut met, &ctx, inv, true);
                    }
                    // An initially violated invariant aborts at t = 0;
                    // keep the point zone rather than ⊥ (sound).
                    let met = if met.close() { met } else { entry };
                    zs[a.init.0] = Some(residence_zone(met, inv, &ctx, k));
                }
                zs
            })
            .collect();
        let zone_joins = net.automata().iter().map(|a| vec![0; a.locations.len()]).collect();

        Engine {
            net,
            timed,
            priv_vars,
            priv_idx,
            reachable,
            envs,
            env_joins,
            store_joins: vec![0; nvars],
            store,
            live,
            zones_on,
            k,
            zclocks,
            zidx,
            zones,
            zone_joins,
            changed: false,
            rounds: 0,
            widenings: 0,
        }
    }

    /// Canonical copy of the residence zone at `(p, l)`, `None` with the
    /// zone product off. Stored zones are non-empty by construction; a
    /// failed close (cannot happen) degrades to the unconstrained zone.
    fn residence_at(&self, p: usize, l: usize) -> Option<Dbm> {
        if !self.zones_on {
            return None;
        }
        let dim = self.zclocks[p].len() + 2;
        Some(match &self.zones[p][l] {
            Some(z) => {
                let mut c = z.clone();
                if c.close() {
                    c
                } else {
                    Dbm::unconstrained(dim)
                }
            }
            None => Dbm::unconstrained(dim),
        })
    }

    /// Frame over all variables as seen from `(p, l)`.
    fn frame(&self, p: usize, l: usize) -> Vec<AbsVal> {
        let mut f = self.store.clone();
        if let Some(env) = &self.envs[p][l] {
            for (i, v) in self.priv_vars[p].iter().enumerate() {
                f[v.0] = env[i];
            }
        }
        f
    }

    /// Every participant of `action` has a live transition carrying it.
    fn action_available(&self, action: ActionId) -> bool {
        self.net.participants(action).iter().all(|q| {
            self.net.automata()[q.0]
                .transitions
                .iter()
                .enumerate()
                .any(|(i, t)| t.action == action && self.live[q.0][i])
        })
    }

    fn run(mut self) -> Fixpoint {
        loop {
            self.rounds += 1;
            self.changed = false;
            for p in 0..self.net.automata().len() {
                for l in 0..self.net.automata()[p].locations.len() {
                    if self.reachable[p][l] {
                        self.process_location(p, l);
                    }
                }
            }
            if !self.changed {
                break;
            }
        }
        self.finish()
    }

    fn process_location(&mut self, p: usize, l: usize) {
        let res_zone = self.residence_at(p, l);
        let ntrans = self.net.automata()[p].transitions.len();
        for t in 0..ntrans {
            let trans = &self.net.automata()[p].transitions[t];
            if trans.from.0 != l {
                continue;
            }
            let (to, action) = (trans.to.0, trans.action);
            let mut fr = self.frame(p, l);
            let mut zone = res_zone.clone();
            match &trans.guard {
                GuardKind::Markovian(_) => {
                    if !self.live[p][t] {
                        self.live[p][t] = true;
                        self.changed = true;
                    }
                }
                GuardKind::Boolean(g) => {
                    if !refine(g, true, &mut fr) {
                        continue; // guard unsatisfiable from here
                    }
                    // Zone product: intersect the residence zone with the
                    // guard's difference constraints. An empty meet means
                    // no time-consistent valuation satisfies the guard.
                    if let Some(z) = &mut zone {
                        let ctx = ZoneCtx { zidx: &self.zidx[p], read: &|v| fr[v.0] };
                        constrain_expr(z, &ctx, g, true);
                        if !z.close() {
                            continue; // zone-dead guard from here
                        }
                    }
                    if !self.live[p][t] {
                        self.live[p][t] = true;
                        self.changed = true;
                    }
                    if !action.is_tau() && !self.action_available(action) {
                        continue;
                    }
                }
            }
            self.transfer(p, t, to, fr, zone);
        }
    }

    /// Applies effects, flows, and the target invariant to the refined
    /// source frame, then joins the result into `(p, to)` and the store.
    /// `zone` is the canonical guard-met zone at the source (`None` with
    /// the zone product off).
    fn transfer(&mut self, p: usize, t: usize, to: usize, mut fr: Vec<AbsVal>, zone: Option<Dbm>) {
        let trans = &self.net.automata()[p].transitions[t];
        // Clock resets in the zone, evaluated over the pre-state frame
        // (before the interval writes land). A singleton value is an
        // exact reset; anything else frees the clock to the value's
        // interval hull.
        let mut zone = zone;
        if let Some(z) = &mut zone {
            for eff in &trans.effects {
                let Some(i) = self.zidx[p][eff.var.0] else { continue };
                match abs_eval(&eff.expr, &|v| fr[v.0]) {
                    AbsVal::Num(lo, hi) if lo == hi && lo.is_finite() => z.reset(i, lo),
                    AbsVal::Num(lo, hi) => {
                        z.free(i);
                        if hi.is_finite() {
                            z.constrain(i, 0, hi);
                        }
                        if lo.is_finite() {
                            z.constrain(0, i, -lo);
                        }
                        if !z.close() {
                            return; // unreachable: bounding a freed clock
                        }
                    }
                    AbsVal::Bool(_) => z.free(i),
                }
            }
        }
        // Effects read the pre-state simultaneously, then write.
        let mut writes: Vec<(VarId, AbsVal)> = Vec::with_capacity(trans.effects.len());
        for eff in &trans.effects {
            let val = abs_eval(&eff.expr, &|v| fr[v.0]);
            if self.timed[eff.var.0] {
                continue; // re-pinned to ⊤ below
            }
            let Some(val) = val.meet(AbsVal::of_type(self.net.ty_of(eff.var))) else {
                return; // provably out of range: the step always errors
            };
            writes.push((eff.var, val));
        }
        for (v, val) in &writes {
            fr[v.0] = *val;
        }
        // Time may pass before the frame is next observed.
        for (v, timed) in self.timed.iter().enumerate() {
            if *timed {
                fr[v] = TOP_NUM;
            }
        }
        // Flows re-derive their targets in every state.
        for f in self.net.flows() {
            let val = abs_eval(&f.expr, &|v| fr[v.0]);
            let Some(val) = val.meet(AbsVal::of_type(self.net.ty_of(f.target))) else {
                return;
            };
            fr[f.target.0] = val;
            writes.push((f.target, val));
        }
        // Entering a location whose invariant the new valuation violates
        // aborts the run; surviving runs satisfy it.
        let inv = &self.net.automata()[p].locations[to].invariant;
        if !inv.is_const_true() && !refine(inv, true, &mut fr) {
            return;
        }
        // Zone side of the entry check, then the residence closure: the
        // target zone is every valuation reachable by elapsing time from
        // a surviving entry while the invariant keeps holding.
        let mut zjoin: Option<Dbm> = None;
        if let Some(mut ze) = zone {
            let ctx = ZoneCtx { zidx: &self.zidx[p], read: &|v| fr[v.0] };
            if !inv.is_const_true() {
                constrain_expr(&mut ze, &ctx, inv, true);
            }
            if !ze.close() {
                return; // every entering run aborts on the invariant
            }
            zjoin = Some(residence_zone(ze, inv, &ctx, self.k));
        }

        if !self.reachable[p][to] {
            self.reachable[p][to] = true;
            self.changed = true;
        }
        if let Some(w) = zjoin {
            self.join_zone(p, to, w);
        }
        self.join_env(p, to, &fr);
        for (v, _) in writes {
            if self.priv_idx[v.0].is_none() {
                self.join_store(v, fr[v.0]);
            }
        }
    }

    fn join_env(&mut self, p: usize, to: usize, fr: &[AbsVal]) {
        let vals: Vec<AbsVal> = self.priv_vars[p].iter().map(|v| fr[v.0]).collect();
        let widen = self.env_joins[p][to] >= WIDEN_AFTER;
        let mut grew = false;
        match &mut self.envs[p][to] {
            slot @ None => {
                *slot = Some(vals);
                grew = true;
            }
            Some(old) => {
                for (i, nv) in vals.iter().enumerate() {
                    let joined = old[i].join(*nv);
                    if joined != old[i] {
                        old[i] = if widen {
                            self.widenings += 1;
                            let ty = self.net.ty_of(self.priv_vars[p][i]);
                            old[i]
                                .widen(joined)
                                .meet(AbsVal::of_type(ty))
                                .unwrap_or_else(|| AbsVal::of_type(ty))
                        } else {
                            joined
                        };
                        grew = true;
                    }
                }
            }
        }
        if grew {
            self.changed = true;
            self.env_joins[p][to] += 1;
            // Keep the store an upper bound of every location env, so
            // cross-process reads of private variables stay sound.
            let env: Vec<AbsVal> = self.envs[p][to].as_ref().expect("just set").clone();
            for (i, v) in self.priv_vars[p].clone().into_iter().enumerate() {
                self.join_store_raw(v, env[i]);
            }
        }
    }

    /// Joins a residence zone into `(p, to)`, widening (grown entries
    /// jump to ∞) once the per-location join budget is spent.
    fn join_zone(&mut self, p: usize, to: usize, w: Dbm) {
        match &mut self.zones[p][to] {
            slot @ None => {
                *slot = Some(w);
                self.zone_joins[p][to] = 1;
                self.changed = true;
            }
            Some(old) => {
                let widen = self.zone_joins[p][to] >= WIDEN_AFTER;
                if old.join_widen(&w, widen) {
                    if widen {
                        self.widenings += 1;
                    }
                    self.zone_joins[p][to] += 1;
                    self.changed = true;
                }
            }
        }
    }

    fn join_store(&mut self, v: VarId, val: AbsVal) {
        if self.timed[v.0] {
            return;
        }
        self.join_store_raw(v, val);
    }

    fn join_store_raw(&mut self, v: VarId, val: AbsVal) {
        let joined = self.store[v.0].join(val);
        if joined != self.store[v.0] {
            self.store[v.0] = if self.store_joins[v.0] >= WIDEN_AFTER {
                self.widenings += 1;
                let ty = self.net.ty_of(v);
                self.store[v.0]
                    .widen(joined)
                    .meet(AbsVal::of_type(ty))
                    .unwrap_or_else(|| AbsVal::of_type(ty))
            } else {
                joined
            };
            self.store_joins[v.0] += 1;
            self.changed = true;
        }
    }

    /// Final classification of every transition against the stabilized
    /// environments.
    fn finish(mut self) -> Fixpoint {
        let nprocs = self.net.automata().len();
        let mut status: Vec<Vec<TransStatus>> = Vec::with_capacity(nprocs);
        // Satisfiability against the final envs and zones (recomputed so
        // the flags are consistent with the published environments). The
        // interval and zone verdicts are kept apart so lints can
        // attribute zone-only deadness (S302) precisely.
        let mut int_sat: Vec<Vec<bool>> = Vec::with_capacity(nprocs);
        let mut zone_sat: Vec<Vec<bool>> = Vec::with_capacity(nprocs);
        let mut trans_min_time: Vec<Vec<Option<f64>>> = Vec::with_capacity(nprocs);
        for (p, a) in self.net.automata().iter().enumerate() {
            let tidx = self.zclocks[p].len() + 1;
            let mut si = Vec::with_capacity(a.transitions.len());
            let mut sz = Vec::with_capacity(a.transitions.len());
            let mut mt = Vec::with_capacity(a.transitions.len());
            for trans in &a.transitions {
                let reach = self.reachable[p][trans.from.0];
                let ok = reach
                    && match &trans.guard {
                        GuardKind::Markovian(_) => true,
                        GuardKind::Boolean(g) => {
                            let mut fr = self.frame(p, trans.from.0);
                            refine(g, true, &mut fr)
                        }
                    };
                // Zone verdict only matters where the interval side says
                // "live"; it also yields the earliest global time the
                // transition can fire (lower bound on T in the met zone).
                let (zok, zmin) = if !ok {
                    (true, None)
                } else {
                    match self.residence_at(p, trans.from.0) {
                        None => (true, None),
                        Some(res) => match &trans.guard {
                            GuardKind::Markovian(_) => (true, Some(res.lower(tidx).max(0.0))),
                            GuardKind::Boolean(g) => {
                                let mut fr = self.frame(p, trans.from.0);
                                refine(g, true, &mut fr);
                                let mut zg = res;
                                let ctx = ZoneCtx { zidx: &self.zidx[p], read: &|v| fr[v.0] };
                                constrain_expr(&mut zg, &ctx, g, true);
                                if zg.close() {
                                    (true, Some(zg.lower(tidx).max(0.0)))
                                } else {
                                    (false, None)
                                }
                            }
                        },
                    }
                };
                si.push(ok);
                sz.push(zok);
                mt.push(zmin);
            }
            int_sat.push(si);
            zone_sat.push(sz);
            trans_min_time.push(mt);
        }
        let sat: Vec<Vec<bool>> = int_sat
            .iter()
            .zip(zone_sat.iter())
            .map(|(a, b)| a.iter().zip(b.iter()).map(|(x, y)| *x && *y).collect())
            .collect();
        self.live = sat.clone();
        let mut doomed_effects = Vec::new();
        for (p, a) in self.net.automata().iter().enumerate() {
            let mut st = Vec::with_capacity(a.transitions.len());
            for (t, trans) in a.transitions.iter().enumerate() {
                let s = if !self.reachable[p][trans.from.0] {
                    TransStatus::DeadSource
                } else if !sat[p][t] {
                    TransStatus::DeadGuard
                } else if !trans.action.is_tau() && !self.action_available(trans.action) {
                    TransStatus::SyncBlocked
                } else {
                    // Live: flag effects that provably always error.
                    let mut fr = self.frame(p, trans.from.0);
                    if let GuardKind::Boolean(g) = &trans.guard {
                        refine(g, true, &mut fr);
                    }
                    for (i, eff) in trans.effects.iter().enumerate() {
                        if self.timed[eff.var.0] {
                            continue;
                        }
                        let val = abs_eval(&eff.expr, &|v| fr[v.0]);
                        if val.meet(AbsVal::of_type(self.net.ty_of(eff.var))).is_none() {
                            doomed_effects.push((ProcId(p), TransId(t), i));
                        }
                    }
                    TransStatus::Live
                };
                st.push(s);
            }
            status.push(st);
        }
        // Zone-only deadness (reachable, interval-live, zone-empty), the
        // per-location minimum elapsed time, and static timelocks: a
        // bounded-residence location where every exit is dead and at
        // least one only the zone domain could kill.
        let mut zone_dead: Vec<Vec<bool>> = Vec::with_capacity(nprocs);
        for (p, a) in self.net.automata().iter().enumerate() {
            let mut zd = Vec::with_capacity(a.transitions.len());
            for (t, _) in a.transitions.iter().enumerate() {
                zd.push(int_sat[p][t] && !zone_sat[p][t]);
            }
            zone_dead.push(zd);
        }
        let mut min_time: Vec<Vec<Option<f64>>> = Vec::with_capacity(nprocs);
        let mut timelocks: Vec<(ProcId, LocId)> = Vec::new();
        for (p, a) in self.net.automata().iter().enumerate() {
            let tidx = self.zclocks[p].len() + 1;
            let mut mt = Vec::with_capacity(a.locations.len());
            for l in 0..a.locations.len() {
                let res = if self.reachable[p][l] { self.residence_at(p, l) } else { None };
                mt.push(res.as_ref().map(|z| z.lower(tidx).max(0.0)));
                let Some(res) = res else { continue };
                let outgoing: Vec<usize> = a
                    .transitions
                    .iter()
                    .enumerate()
                    .filter(|(_, tr)| tr.from.0 == l)
                    .map(|(t, _)| t)
                    .collect();
                if outgoing.is_empty()
                    || !outgoing.iter().all(|&t| !sat[p][t])
                    || !outgoing.iter().any(|&t| zone_dead[p][t])
                {
                    continue;
                }
                let bounded = (1..tidx).any(|i| res.upper(i).is_finite());
                if bounded {
                    timelocks.push((ProcId(p), LocId(l)));
                }
            }
            min_time.push(mt);
        }
        Fixpoint {
            reachable: self.reachable,
            envs: self.envs,
            priv_vars: self.priv_vars,
            store: self.store,
            status,
            doomed_effects,
            zones_enabled: self.zones_on,
            extrapolation_k: if self.zones_on { self.k } else { 0.0 },
            zone_clock_count: self.zclocks.iter().map(Vec::len).sum(),
            min_time,
            zone_dead,
            timelocks,
            trans_min_time,
            rounds: self.rounds,
            widenings: self.widenings,
        }
    }
}

/// The residence closure of a canonical, invariant-satisfying entry zone:
/// elapse time, re-intersect the invariant, close, extrapolate. The entry
/// zone itself is the (sound) fallback should closure ever fail — it
/// cannot for a convex invariant, since the entry zone is a subset.
fn residence_zone(entry: Dbm, inv: &Expr, ctx: &ZoneCtx<'_>, k: f64) -> Dbm {
    let mut w = entry.clone();
    w.up();
    if !inv.is_const_true() {
        constrain_expr(&mut w, ctx, inv, true);
    }
    if !w.close() {
        w = entry;
    }
    w.extrapolate(k);
    w
}

impl Fixpoint {
    /// Whether `(p, l)` is reachable in the abstraction. Unreachable here
    /// means unreachable in *every* concrete run.
    pub fn loc_reachable(&self, p: ProcId, l: LocId) -> bool {
        self.reachable[p.0][l.0]
    }

    /// Final classification of transition `(p, t)`.
    pub fn trans_status(&self, p: ProcId, t: TransId) -> TransStatus {
        self.status[p.0][t.0]
    }

    /// Live transitions with an effect that provably assigns outside its
    /// target's declared range (the step always errors at runtime), as
    /// `(proc, trans, effect index)`.
    pub fn doomed_effects(&self) -> &[(ProcId, TransId, usize)] {
        &self.doomed_effects
    }

    /// Global abstract value of a variable: an upper bound over every
    /// reachable state (⊤ interval for timed variables).
    pub fn global(&self, v: VarId) -> AbsVal {
        self.store[v.0]
    }

    /// Abstractly evaluates a predicate over the global store.
    /// `Some(b)` means the predicate is `b` in **every** reachable state;
    /// `None` means the abstraction cannot decide it.
    pub fn may_expr(&self, e: &Expr) -> Option<bool> {
        abs_eval(e, &|v| self.store[v.0]).as_bool()
    }

    /// The guard-refined frame a live transition fires under (`None` for
    /// dead/blocked transitions). Indexed by [`VarId`].
    pub fn transition_frame(&self, net: &Network, p: ProcId, t: TransId) -> Option<Vec<AbsVal>> {
        if self.status[p.0][t.0] != TransStatus::Live {
            return None;
        }
        let trans = &net.automata()[p.0].transitions[t.0];
        let mut fr = self.store.clone();
        if let Some(env) = &self.envs[p.0][trans.from.0] {
            for (i, v) in self.priv_vars[p.0].iter().enumerate() {
                fr[v.0] = env[i];
            }
        }
        if let GuardKind::Boolean(g) = &trans.guard {
            refine(g, true, &mut fr);
        }
        Some(fr)
    }

    /// Computes which transitions and locations can be removed without
    /// changing any observable `(seed, workers)` outcome — see
    /// [`Network::prune`].
    ///
    /// A transition is dropped when it is provably never *fired* **and**
    /// dropping it cannot change runtime behavior:
    ///
    /// * unreachable source — its guard is never even evaluated;
    /// * dead guard or blocked sync from a reachable source — the guard
    ///   *is* evaluated each step, so it must additionally be **total**
    ///   (evaluation can never error) for removal to be invisible;
    /// * sync alphabets are preserved action-wise: either every
    ///   transition of an action goes (the action can never fire and
    ///   disappears entirely) or each participant keeps at least one, so
    ///   the participant table of the pruned network is unchanged for
    ///   every action that can still fire.
    ///
    /// Locations are dropped when unreachable and unreferenced by any
    /// kept transition.
    pub fn prune_plan(&self, net: &Network) -> PrunePlan {
        let nprocs = net.automata().len();
        let mut drop_trans: Vec<Vec<bool>> =
            net.automata().iter().map(|a| vec![false; a.transitions.len()]).collect();

        // Per-action bookkeeping over sync transitions.
        let nactions = net.actions().len();
        // action → (proc, trans) of every transition carrying it.
        let mut carriers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nactions];
        for (p, a) in net.automata().iter().enumerate() {
            for (t, trans) in a.transitions.iter().enumerate() {
                if !trans.action.is_tau() {
                    carriers[trans.action.0].push((p, t));
                }
                // τ and Markovian transitions have no alphabet impact.
                let dead =
                    matches!(self.status[p][t], TransStatus::DeadSource | TransStatus::DeadGuard);
                if trans.action.is_tau() && dead && self.removable(net, p, t) {
                    drop_trans[p][t] = true;
                }
            }
        }

        for (act, carry) in carriers.iter().enumerate() {
            if carry.is_empty() {
                continue;
            }
            let action = ActionId(act);
            let fully_dead = net.participants(action).iter().any(|q| {
                net.automata()[q.0].transitions.iter().enumerate().all(|(t, trans)| {
                    trans.action != action
                        || matches!(
                            self.status[q.0][t],
                            TransStatus::DeadSource | TransStatus::DeadGuard
                        )
                })
            });
            if fully_dead {
                // The action can never fire. Either all its transitions
                // go (the action vanishes network-wide) or only the
                // alphabet-preserving subset does.
                if carry.iter().all(|&(p, t)| self.removable(net, p, t)) {
                    for &(p, t) in carry {
                        drop_trans[p][t] = true;
                    }
                } else {
                    self.drop_alphabet_preserving(net, carry, &mut drop_trans, |s| {
                        s == TransStatus::DeadSource
                    });
                }
            } else {
                // The action may fire: drop individual dead transitions,
                // keeping every participant's alphabet intact.
                self.drop_alphabet_preserving(net, carry, &mut drop_trans, |s| {
                    matches!(s, TransStatus::DeadSource | TransStatus::DeadGuard)
                });
            }
        }

        // Locations: unreachable and unreferenced by anything kept.
        let mut drop_locs: Vec<Vec<bool>> = Vec::with_capacity(nprocs);
        for (p, a) in net.automata().iter().enumerate() {
            let mut drop = vec![false; a.locations.len()];
            for (l, r) in self.reachable[p].iter().enumerate() {
                drop[l] = !r && LocId(l) != a.init;
            }
            for (t, trans) in a.transitions.iter().enumerate() {
                if !drop_trans[p][t] {
                    drop[trans.from.0] = false;
                    drop[trans.to.0] = false;
                }
            }
            drop_locs.push(drop);
        }
        PrunePlan { drop_trans, drop_locs }
    }

    /// Dropping `(p, t)` cannot change runtime behavior: either its guard
    /// is never evaluated (unreachable source) or its evaluation is total.
    fn removable(&self, net: &Network, p: usize, t: usize) -> bool {
        if self.status[p][t] == TransStatus::DeadSource {
            return true;
        }
        match &net.automata()[p].transitions[t].guard {
            GuardKind::Markovian(_) => false, // live from a reachable source
            GuardKind::Boolean(g) => guard_total(g, net, &|v| self.store[v.0]),
        }
    }

    /// Marks droppable transitions among `carry`, keeping ≥ 1 transition
    /// of the action per automaton so alphabets (and hence the pruned
    /// network's participant table) are unchanged.
    fn drop_alphabet_preserving(
        &self,
        net: &Network,
        carry: &[(usize, usize)],
        drop_trans: &mut [Vec<bool>],
        droppable_status: impl Fn(TransStatus) -> bool,
    ) {
        for (p, drops) in drop_trans.iter_mut().enumerate() {
            let mine: Vec<usize> =
                carry.iter().filter(|&&(q, _)| q == p).map(|&(_, t)| t).collect();
            if mine.is_empty() {
                continue;
            }
            let droppable: Vec<bool> = mine
                .iter()
                .map(|&t| droppable_status(self.status[p][t]) && self.removable(net, p, t))
                .collect();
            let fixed_keep = droppable.iter().filter(|d| !**d).count();
            // If nothing is forced to stay, keep one droppable transition
            // anyway so the automaton's alphabet is unchanged.
            let mut budget = if fixed_keep > 0 { usize::MAX } else { mine.len() - 1 };
            for (i, &t) in mine.iter().enumerate() {
                if droppable[i] && budget > 0 {
                    drops[t] = true;
                    budget = budget.saturating_sub(1);
                }
            }
        }
    }

    /// Whether the clock-zone product ran in this fixpoint.
    pub fn zones_enabled(&self) -> bool {
        self.zones_enabled
    }

    /// The k-extrapolation constant the zone domain used (0 when off).
    pub fn extrapolation_k(&self) -> f64 {
        self.extrapolation_k
    }

    /// Total tracked clock slots across all processes.
    pub fn zone_clock_count(&self) -> usize {
        self.zone_clock_count
    }

    /// Zone lower bound on the global elapsed time whenever `(p, l)` is
    /// occupied: every concrete run entering `l` does so at time ≥ this.
    /// `None` when unreachable or with zones off.
    pub fn min_time_to_loc(&self, p: ProcId, l: LocId) -> Option<f64> {
        self.min_time[p.0][l.0]
    }

    /// True when `(p, t)` is dead *only* under the zone domain — its
    /// source is reachable and the interval side finds the guard
    /// satisfiable, but no time-consistent valuation does (S302).
    pub fn zone_dead_guard(&self, p: ProcId, t: TransId) -> bool {
        self.zone_dead[p.0][t.0]
    }

    /// Reachable locations that are static timelocks under the zone
    /// domain: residence is invariant-bounded, every outgoing transition
    /// is dead, and at least one of them only the zones could kill (S303).
    pub fn static_timelocks(&self) -> &[(ProcId, LocId)] {
        &self.timelocks
    }

    /// Zone lower bound on the global elapsed time at which `(p, t)` can
    /// first fire. `None` for dead transitions or with zones off.
    pub fn trans_min_fire_time(&self, p: ProcId, t: TransId) -> Option<f64> {
        self.trans_min_time[p.0][t.0]
    }

    /// Per-location minimum number of transitions (within each process's
    /// own graph, over live transitions) to reach any of `targets`; a
    /// target's `u64` is its base offset (e.g. 1 for "one more firing
    /// makes the goal expression true"). `None` = no live path. This is
    /// the fixpoint-derived level function seam for rare-event splitting.
    pub fn distance_steps(
        &self,
        net: &Network,
        targets: &[(ProcId, LocId, u64)],
    ) -> Vec<Vec<Option<u64>>> {
        let mut dist: Vec<Vec<Option<u64>>> =
            net.automata().iter().map(|a| vec![None; a.locations.len()]).collect();
        for &(p, l, off) in targets {
            let slot = &mut dist[p.0][l.0];
            *slot = Some(slot.map_or(off, |d| d.min(off)));
        }
        // Backward relaxation over live transitions until stable; the
        // graphs are small, so the quadratic loop is fine.
        loop {
            let mut changed = false;
            for (p, a) in net.automata().iter().enumerate() {
                for (t, trans) in a.transitions.iter().enumerate() {
                    if self.status[p][t] != TransStatus::Live {
                        continue;
                    }
                    let Some(dt) = dist[p][trans.to.0] else { continue };
                    let cand = dt.saturating_add(1);
                    if dist[p][trans.from.0].is_none_or(|d| cand < d) {
                        dist[p][trans.from.0] = Some(cand);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    /// Renders the proof-artifact summary.
    pub fn summary(&self, net: &Network) -> crate::summary::AnalysisSummary {
        crate::summary::AnalysisSummary::build(self, net, None)
    }

    /// Renders the summary with the per-location distance-to-goal map
    /// computed against `targets` (see [`Fixpoint::distance_steps`]).
    pub fn summary_with_goals(
        &self,
        net: &Network,
        targets: &[(ProcId, LocId, u64)],
    ) -> crate::summary::AnalysisSummary {
        crate::summary::AnalysisSummary::build(self, net, Some(targets))
    }

    pub(crate) fn reachable_matrix(&self) -> &[Vec<bool>] {
        &self.reachable
    }

    pub(crate) fn status_matrix(&self) -> &[Vec<TransStatus>] {
        &self.status
    }

    pub(crate) fn zone_dead_matrix(&self) -> &[Vec<bool>] {
        &self.zone_dead
    }

    pub(crate) fn min_time_matrix(&self) -> &[Vec<Option<f64>>] {
        &self.min_time
    }
}

/// True when evaluating `e` as a guard can never raise an evaluation
/// error — neither `NonLinear` (from the affine delay solver's fragment
/// limits) nor `DivisionByZero` — for any valuation the store admits.
///
/// This is the gate that makes removing an *evaluated-but-dead* guard
/// invisible: the legacy and compiled solvers evaluate guards eagerly, so
/// a dead transition whose guard could error must be kept.
pub fn guard_total(e: &Expr, net: &Network, read: &dyn Fn(VarId) -> AbsVal) -> bool {
    total_bool(e, net, read)
}

fn delay_free(e: &Expr, net: &Network) -> bool {
    !e.reads_any_var(&|v| net.ty_of(v).is_timed())
}

fn total_bool(e: &Expr, net: &Network, read: &dyn Fn(VarId) -> AbsVal) -> bool {
    use BinOp::*;
    match e {
        Expr::Const(slim_automata::value::Value::Bool(_)) => true,
        Expr::Var(v) => net.ty_of(*v) == VarType::Bool,
        Expr::Not(x) => total_bool(x, net, read),
        Expr::Bin(And | Or | Xor | Implies, a, b) => {
            total_bool(a, net, read) && total_bool(b, net, read)
        }
        Expr::Bin(Eq | Ne, a, b) => {
            (total_bool(a, net, read) && total_bool(b, net, read))
                || (total_num(a, net, read) && total_num(b, net, read))
        }
        Expr::Bin(Lt | Le | Gt | Ge, a, b) => total_num(a, net, read) && total_num(b, net, read),
        // Boolean-branch `if`: the solver solves all three sets eagerly.
        Expr::Ite(c, t, els) => {
            total_bool(c, net, read) && total_bool(t, net, read) && total_bool(els, net, read)
        }
        _ => false,
    }
}

fn total_num(e: &Expr, net: &Network, read: &dyn Fn(VarId) -> AbsVal) -> bool {
    use BinOp::*;
    match e {
        Expr::Const(slim_automata::value::Value::Int(_))
        | Expr::Const(slim_automata::value::Value::Real(_)) => true,
        Expr::Var(v) => net.ty_of(*v) != VarType::Bool,
        Expr::Neg(x) => total_num(x, net, read),
        Expr::Bin(Add | Sub, a, b) => total_num(a, net, read) && total_num(b, net, read),
        // The affine solver multiplies only when one side is constant in
        // the delay; a delay-free side is.
        Expr::Bin(Mul, a, b) => {
            total_num(a, net, read)
                && total_num(b, net, read)
                && (delay_free(a, net) || delay_free(b, net))
        }
        // Division needs a delay-constant, provably nonzero divisor.
        Expr::Bin(Div, a, b) => {
            total_num(a, net, read) && total_num(b, net, read) && delay_free(b, net) && {
                match abs_eval(b, read) {
                    AbsVal::Num(lo, hi) => lo > 0.0 || hi < 0.0,
                    AbsVal::Bool(_) => false,
                }
            }
        }
        // min/max of non-parallel affine lines is out of fragment; be
        // conservative and require both sides delay-free.
        Expr::Bin(Min | Max, a, b) => {
            total_num(a, net, read)
                && total_num(b, net, read)
                && delay_free(a, net)
                && delay_free(b, net)
        }
        // Numeric `if` solves its condition; a delay-free condition is
        // all-or-nothing, after which only the chosen branch evaluates.
        Expr::Ite(c, t, els) => {
            total_bool(c, net, read)
                && delay_free(c, net)
                && total_num(t, net, read)
                && total_num(els, net, read)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::automaton::Effect;
    use slim_automata::network::{AutomatonBuilder, NetworkBuilder};
    use slim_automata::value::Value;

    #[test]
    fn constant_propagation_kills_guard_type_ranges_cannot() {
        // n ∈ int[0..10] but is never written, so only n = 0 is reachable;
        // the type range alone cannot decide `n ≥ 5`.
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 10 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(5)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();

        let fix = analyze_network(&net);
        assert_eq!(fix.trans_status(ProcId(0), TransId(0)), TransStatus::DeadGuard);
        assert!(!fix.loc_reachable(ProcId(0), LocId(1)));
        assert_eq!(fix.global(n), AbsVal::Num(0.0, 0.0));

        let plan = fix.prune_plan(&net);
        assert_eq!(plan.dropped_transitions(), 1);
        assert_eq!(plan.dropped_locations(), 1);
        let (pruned, maps) = net.prune(&plan);
        assert_eq!(pruned.automata()[0].transitions.len(), 0);
        assert_eq!(pruned.automata()[0].locations.len(), 1);
        assert_eq!(maps.locs[0][1], None);
        assert_eq!(maps.trans[0][0], None);
    }

    #[test]
    fn widening_terminates_counting_loops_and_keeps_targets_reachable() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 1_000_000 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("loop");
        let l1 = a.location("out");
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::TRUE,
            [Effect::assign(n, Expr::var(n).add(Expr::int(1)))],
            l0,
        );
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(10)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        assert!(fix.widenings > 0, "the counting loop must trigger widening");
        assert!(fix.rounds < 100, "fixpoint must converge quickly ({} rounds)", fix.rounds);
        assert_eq!(fix.trans_status(ProcId(0), TransId(1)), TransStatus::Live);
        assert!(fix.loc_reachable(ProcId(0), LocId(1)));
        assert!(fix.prune_plan(&net).is_noop());
    }

    #[test]
    fn blocked_sync_is_action_closed_and_prunable() {
        // `right` can never offer `go` (its offering location is
        // unreachable), so `left`'s go-transition is sync-blocked and the
        // whole action can be pruned network-wide.
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("start");
        let l1 = a1.location("after_go");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let _r0 = a2.location("idle");
        let r1 = a2.location("offers_go");
        let r2 = a2.location("done");
        a2.guarded(r1, go, Expr::TRUE, [], r2);
        b.add_automaton(a2);
        let net = b.build().unwrap();

        let fix = analyze_network(&net);
        assert_eq!(fix.trans_status(ProcId(0), TransId(0)), TransStatus::SyncBlocked);
        assert_eq!(fix.trans_status(ProcId(1), TransId(0)), TransStatus::DeadSource);
        assert!(!fix.loc_reachable(ProcId(0), LocId(1)));

        let plan = fix.prune_plan(&net);
        assert_eq!(plan.dropped_transitions(), 2);
        let (pruned, _) = net.prune(&plan);
        assert_eq!(pruned.automata()[0].locations.len(), 1);
        assert_eq!(pruned.automata()[1].locations.len(), 1);
        assert!(pruned.participants(go).is_empty());
    }

    #[test]
    fn private_variables_are_tracked_flow_sensitively() {
        // After the assignment, the *location* env knows n = 5 even
        // though the global join over all locations would be [0, 5].
        let mut b = NetworkBuilder::new();
        let n = b.var_owned("n", VarType::Int { lo: 0, hi: 10 }, Value::Int(0), ProcId(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(n, Expr::int(5))], l1);
        a.guarded(l1, ActionId::TAU, Expr::var(n).le(Expr::int(4)), [], l2);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        assert_eq!(fix.trans_status(ProcId(0), TransId(1)), TransStatus::DeadGuard);
        assert!(!fix.loc_reachable(ProcId(0), LocId(2)));
        // The global view still covers both locations.
        assert_eq!(fix.global(n), AbsVal::Num(0.0, 5.0));
    }

    #[test]
    fn doomed_effects_are_flagged_but_never_pruned() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(n, Expr::int(7))], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        assert_eq!(fix.trans_status(ProcId(0), TransId(0)), TransStatus::Live);
        assert_eq!(fix.doomed_effects(), &[(ProcId(0), TransId(0), 0)]);
        // The erroring step must stay: removing it would suppress the
        // runtime error.
        assert!(fix.prune_plan(&net).dropped_transitions() == 0);
        // ... and its always-erroring step has no successor.
        assert!(!fix.loc_reachable(ProcId(0), LocId(1)));
    }

    #[test]
    fn may_expr_decides_goal_unreachability() {
        let mut b = NetworkBuilder::new();
        let goal = b.var("goal", VarType::Bool, Value::Bool(false));
        let aux = b.var("aux", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(aux, Expr::bool(true))], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        assert_eq!(fix.may_expr(&Expr::var(goal)), Some(false));
        assert_eq!(fix.may_expr(&Expr::var(aux)), None);
        assert_eq!(fix.may_expr(&Expr::var(goal).and(Expr::var(aux))), Some(false));
        assert_eq!(fix.may_expr(&Expr::var(goal).not()), Some(true));
    }

    #[test]
    fn guard_total_gates_error_prone_shapes() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let n = b.var("n", VarType::Int { lo: 1, hi: 5 }, Value::Int(1));
        let z = b.var("z", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        a.location("l0");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let read = |v: VarId| {
            if v == n {
                AbsVal::Num(1.0, 5.0)
            } else if v == z {
                AbsVal::Num(0.0, 5.0)
            } else {
                TOP_NUM
            }
        };
        // Affine clock comparison: total.
        assert!(guard_total(&Expr::var(x).le(Expr::int(3)), &net, &read));
        // Division by a provably nonzero, delay-free divisor: total.
        let div_ok = Expr::var(x).div(Expr::var(n)).le(Expr::int(3));
        assert!(guard_total(&div_ok, &net, &read));
        // Divisor range contains zero: may error.
        let div_zero = Expr::var(x).div(Expr::var(z)).le(Expr::int(3));
        assert!(!guard_total(&div_zero, &net, &read));
        // Clock × clock is outside the affine fragment.
        let nonlinear = Expr::var(x).mul(Expr::var(x)).le(Expr::int(3));
        assert!(!guard_total(&nonlinear, &net, &read));
        // Delay-dependent numeric-if condition may raise NonLinear.
        let ite =
            Expr::ite(Expr::var(x).gt(Expr::int(1)), Expr::int(1), Expr::int(2)).le(Expr::var(x));
        assert!(!guard_total(&ite, &net, &read));
    }

    #[test]
    fn summary_counts_and_json_render() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 10 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(5)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        let s = fix.summary(&net);
        assert_eq!(s.procs.len(), 1);
        assert_eq!(s.procs[0].reachable, 1);
        assert_eq!(s.dead.len(), 1);
        assert_eq!(s.dead[0].reason, "dead-guard");
        let json = s.render_json();
        assert!(json.contains("\"kind\":\"analysis-summary\""), "{json}");
        assert!(json.contains("\"schema_version\":2"), "{json}");
        assert!(json.contains("\"dead_transitions\":[{"), "{json}");
        assert!(json.contains("\"reason\":\"dead-guard\""), "{json}");
        assert!(s.render_text().contains("1/2 locations reachable"));
    }

    /// Clock chain: l0 −(x ≥ 5)→ l1 −(x ≤ 2)→ l2, x never reset. The
    /// interval domain pins clocks to ⊤ so both guards look satisfiable;
    /// the zone domain knows x ≥ 5 holds forever after the first hop.
    fn clock_chain() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::int(5)), [], l1);
        a.guarded(l1, ActionId::TAU, Expr::var(x).le(Expr::int(2)), [], l2);
        b.add_automaton(a);
        b.build().unwrap()
    }

    #[test]
    fn zones_kill_clock_dead_guards_intervals_cannot() {
        let net = clock_chain();
        let fix = analyze_network(&net);
        assert!(fix.zones_enabled());
        assert_eq!(fix.zone_clock_count(), 1);
        assert_eq!(fix.trans_status(ProcId(0), TransId(0)), TransStatus::Live);
        assert_eq!(fix.trans_status(ProcId(0), TransId(1)), TransStatus::DeadGuard);
        assert!(fix.zone_dead_guard(ProcId(0), TransId(1)), "dead only via the zone domain");
        assert!(!fix.zone_dead_guard(ProcId(0), TransId(0)));
        assert!(!fix.loc_reachable(ProcId(0), LocId(2)));

        // The same model with zones disabled degrades to the old verdict.
        let off = analyze_network_with(&net, &AnalysisOptions { zones: false, deadline: None });
        assert!(!off.zones_enabled());
        assert_eq!(off.trans_status(ProcId(0), TransId(1)), TransStatus::Live);
        assert!(off.loc_reachable(ProcId(0), LocId(2)));
        assert_eq!(off.min_time_to_loc(ProcId(0), LocId(1)), None);
    }

    #[test]
    fn min_time_tracks_guard_lower_bounds_through_resets() {
        // l0 −(x ≥ 3, x := 0)→ l1 −(x ≥ 2)→ l2: the reset pins x while the
        // synthetic global clock keeps the elapsed 3, so l2 costs ≥ 5.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(x).ge(Expr::int(3)),
            [Effect::assign(x, Expr::real(0.0))],
            l1,
        );
        a.guarded(l1, ActionId::TAU, Expr::var(x).ge(Expr::int(2)), [], l2);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        assert_eq!(fix.min_time_to_loc(ProcId(0), LocId(0)), Some(0.0));
        assert_eq!(fix.min_time_to_loc(ProcId(0), LocId(1)), Some(3.0));
        assert_eq!(fix.min_time_to_loc(ProcId(0), LocId(2)), Some(5.0));
        assert_eq!(fix.trans_min_fire_time(ProcId(0), TransId(0)), Some(3.0));
        assert_eq!(fix.trans_min_fire_time(ProcId(0), TransId(1)), Some(5.0));
    }

    #[test]
    fn invariant_guard_gap_is_a_static_timelock() {
        // Invariant x ≤ 2 but the only exit needs x ≥ 5: time runs out.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("stuck", Expr::var(x).le(Expr::int(2)), []);
        let l1 = a.location("out");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::int(5)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fix = analyze_network(&net);
        assert_eq!(fix.trans_status(ProcId(0), TransId(0)), TransStatus::DeadGuard);
        assert!(fix.zone_dead_guard(ProcId(0), TransId(0)));
        assert_eq!(fix.static_timelocks(), &[(ProcId(0), LocId(0))]);

        let s = fix.summary(&net);
        assert_eq!(s.dead[0].reason, "zone-dead-guard");
        let z = s.zones.as_ref().expect("zones ran");
        assert_eq!(z.zone_dead_guards, 1);
        assert_eq!(z.timelocks, 1);
        assert!(s.render_json().contains("\"reason\":\"zone-dead-guard\""));
    }

    #[test]
    fn distance_steps_relax_backwards_over_live_transitions() {
        let net = clock_chain();
        let fix = analyze_network(&net);
        // Goal l1 (live chain prefix): l0 is one live hop away; l2 is
        // unreachable and gets no distance.
        let steps = fix.distance_steps(&net, &[(ProcId(0), LocId(1), 0)]);
        assert_eq!(steps[0][1], Some(0));
        assert_eq!(steps[0][0], Some(1));
        assert_eq!(steps[0][2], None);

        let s = fix.summary_with_goals(&net, &[(ProcId(0), LocId(1), 0)]);
        let json = s.render_json();
        assert!(json.contains("\"steps_to_goal\":1"), "{json}");
        assert!(json.contains("\"min_time\":5.0"), "{json}");
    }
}
