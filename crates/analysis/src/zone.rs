//! Clock-zone abstract domain: difference-bound matrices (DBMs).
//!
//! A [`Dbm`] of dimension `n` represents the conjunction of constraints
//! `x_i − x_j ≤ m[i][j]` over clocks `x_1 … x_{n−1}` plus the constant
//! zero clock `x_0 = 0`, so row/column 0 encode plain upper/lower bounds.
//! This is the standard zone representation of timed-automata tooling
//! (UPPAAL lineage); here it runs as the *relational, timed* half of the
//! product domain in [`crate::fixpoint`], next to the non-relational
//! interval store.
//!
//! Two deliberate simplifications keep the domain sound for SLIM:
//!
//! * **Non-strict bounds only.** SLIM guards compare with `<`/`≤` over
//!   reals; we relax every strict bound to its non-strict closure. A
//!   relaxed zone is a superset of the exact one, so emptiness verdicts
//!   ("this guard can never be satisfied here") remain definite facts.
//! * **Uniform k-extrapolation.** Entries above `k` jump to ∞ and below
//!   `−k` clamp to `−k`, where `k` bounds every literal the model (and
//!   the property deadline) mentions. Extrapolation only grows the zone,
//!   so it is sound, and it bounds the constants the fixpoint can
//!   generate.
//!
//! Matrices are kept *canonical* (closed under the triangle inequality
//! via Floyd–Warshall) at the operations that need it — [`Dbm::reset`]
//! requires a canonical input, and emptiness is only decidable after
//! [`Dbm::close`]. Join (entrywise max) and extrapolation may leave a
//! non-canonical but still sound representation; consumers re-close
//! before reading bounds.

use crate::domain::AbsVal;
use slim_automata::expr::{BinOp, Expr, VarId};

/// A difference-bound matrix over `dim` clocks (index 0 is the zero
/// clock). Entry `(i, j)` bounds `x_i − x_j` from above; `f64::INFINITY`
/// means unconstrained.
#[derive(Debug, Clone, PartialEq)]
pub struct Dbm {
    dim: usize,
    m: Vec<f64>,
}

/// Bound addition with absorbing ∞ (avoids `∞ + −∞ = NaN`; widening the
/// sum to ∞ is always sound for an upper bound).
fn badd(a: f64, b: f64) -> f64 {
    if a == f64::INFINITY || b == f64::INFINITY {
        f64::INFINITY
    } else {
        a + b
    }
}

impl Dbm {
    /// The unconstrained zone (every clock anywhere).
    pub fn unconstrained(dim: usize) -> Dbm {
        let mut m = vec![f64::INFINITY; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = 0.0;
        }
        Dbm { dim, m }
    }

    /// The singleton zone where clock `i + 1` equals `vals[i]`. Exact
    /// difference matrices are canonical by construction.
    pub fn point(vals: &[f64]) -> Dbm {
        let dim = vals.len() + 1;
        let at = |i: usize| if i == 0 { 0.0 } else { vals[i - 1] };
        let mut m = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                m[i * dim + j] = at(i) - at(j);
            }
        }
        Dbm { dim, m }
    }

    /// Number of clocks including the zero clock.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The bound on `x_i − x_j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.m[i * self.dim + j]
    }

    /// Upper bound on clock `i` (read on a canonical matrix).
    pub fn upper(&self, i: usize) -> f64 {
        self.get(i, 0)
    }

    /// Lower bound on clock `i` (read on a canonical matrix).
    pub fn lower(&self, i: usize) -> f64 {
        -self.get(0, i)
    }

    /// Floyd–Warshall canonicalization. Returns `false` when the
    /// constraint system is inconsistent (the zone is empty), detected as
    /// a negative cycle through the diagonal.
    pub fn close(&mut self) -> bool {
        let n = self.dim;
        for k in 0..n {
            for i in 0..n {
                let ik = self.m[i * n + k];
                if ik == f64::INFINITY {
                    continue;
                }
                for j in 0..n {
                    let via = badd(ik, self.m[k * n + j]);
                    if via < self.m[i * n + j] {
                        self.m[i * n + j] = via;
                    }
                }
            }
        }
        (0..n).all(|i| self.m[i * n + i] >= 0.0)
    }

    /// True when already closed under the triangle inequality (test aid).
    pub fn is_canonical(&self) -> bool {
        let n = self.dim;
        (0..n).all(|i| {
            (0..n).all(|j| {
                (0..n).all(|k| self.m[i * n + j] <= badd(self.m[i * n + k], self.m[k * n + j]))
            })
        })
    }

    /// Time elapse (`up`): drops every upper bound, keeping differences
    /// and lower bounds. Preserves canonicity.
    pub fn up(&mut self) {
        for i in 1..self.dim {
            self.m[i * self.dim] = f64::INFINITY;
        }
    }

    /// Forgets everything about clock `i` (row and column to ∞).
    /// Preserves canonicity: every path through `i` now costs ∞.
    pub fn free(&mut self, i: usize) {
        for j in 0..self.dim {
            if j != i {
                self.m[i * self.dim + j] = f64::INFINITY;
                self.m[j * self.dim + i] = f64::INFINITY;
            }
        }
    }

    /// Resets clock `i` to the constant `c`. **Requires** a canonical
    /// matrix; the result is canonical.
    pub fn reset(&mut self, i: usize, c: f64) {
        let n = self.dim;
        for j in 0..n {
            if j != i {
                self.m[i * n + j] = badd(c, self.m[j]); // c + m[0][j]
                self.m[j * n + i] = badd(self.m[j * n], -c); // m[j][0] − c
            }
        }
        self.m[i * n + i] = 0.0;
    }

    /// Adds the constraint `x_i − x_j ≤ c` (tightens only; callers close
    /// once after a batch of constraints).
    pub fn constrain(&mut self, i: usize, j: usize, c: f64) {
        if c < self.m[i * self.dim + j] {
            self.m[i * self.dim + j] = c;
        }
    }

    /// Joins `other` into `self` (entrywise max — the smallest DBM zone
    /// containing both; max of two canonical matrices is canonical). With
    /// `widen`, every entry that would grow jumps straight to ∞, which
    /// caps ascending chains; the result is then *not* re-closed (closing
    /// could undo the jump and break termination).
    ///
    /// Returns whether any entry grew.
    pub fn join_widen(&mut self, other: &Dbm, widen: bool) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        let mut grew = false;
        for (a, b) in self.m.iter_mut().zip(other.m.iter()) {
            if *b > *a {
                *a = if widen { f64::INFINITY } else { *b };
                grew = true;
            }
        }
        grew
    }

    /// Uniform k-extrapolation: entries above `k` become ∞, entries below
    /// `−k` clamp to `−k`. Only ever grows the zone (sound); idempotent.
    pub fn extrapolate(&mut self, k: f64) {
        let n = self.dim;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let e = &mut self.m[i * n + j];
                if *e > k {
                    *e = f64::INFINITY;
                } else if *e < -k {
                    *e = -k;
                }
            }
        }
    }
}

/// Context for extracting zone constraints from guard/invariant
/// expressions: the per-process clock indexing plus an interval read for
/// the clock-free remainder of each atom.
pub struct ZoneCtx<'a> {
    /// `VarId` → DBM index (1-based); `None` for untracked variables.
    pub zidx: &'a [Option<usize>],
    /// Interval view of the current frame (for clock-free subterms).
    pub read: &'a dyn Fn(VarId) -> AbsVal,
}

impl std::fmt::Debug for ZoneCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZoneCtx").field("zidx", &self.zidx).finish_non_exhaustive()
    }
}

/// One linearized side of a comparison: at most two unit-coefficient
/// clock terms plus an interval for everything clock-free.
struct Lin {
    /// `(dbm index, ±1)` terms.
    terms: Vec<(usize, i32)>,
    /// Interval of the clock-free remainder.
    lo: f64,
    hi: f64,
}

/// Assumes `e == want` and tightens `z` with every difference constraint
/// the assumption implies. Mirrors the descent of [`crate::refine`]:
/// conjunctions (and negated disjunctions) recurse, comparisons become
/// atoms, everything else is ignored (no constraint — sound). The caller
/// must [`Dbm::close`] afterwards to decide emptiness.
pub fn constrain_expr(z: &mut Dbm, ctx: &ZoneCtx<'_>, e: &Expr, want: bool) {
    use BinOp::*;
    match e {
        Expr::Not(x) => constrain_expr(z, ctx, x, !want),
        Expr::Bin(And, a, b) if want => {
            constrain_expr(z, ctx, a, true);
            constrain_expr(z, ctx, b, true);
        }
        Expr::Bin(Or, a, b) if !want => {
            constrain_expr(z, ctx, a, false);
            constrain_expr(z, ctx, b, false);
        }
        Expr::Bin(Implies, a, b) if !want => {
            constrain_expr(z, ctx, a, true);
            constrain_expr(z, ctx, b, false);
        }
        Expr::Bin(op, a, b) if op.is_comparison() => {
            let op = if want { *op } else { negate_cmp(*op) };
            constrain_cmp(z, ctx, op, a, b);
        }
        _ => {}
    }
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        _ => unreachable!("not a comparison: {op:?}"),
    }
}

/// Tightens `z` with the atom `a op b`. Strict comparisons are relaxed to
/// their non-strict closure, `Ne` contributes nothing.
fn constrain_cmp(z: &mut Dbm, ctx: &ZoneCtx<'_>, op: BinOp, a: &Expr, b: &Expr) {
    let (Some(la), Some(lb)) = (lin(ctx, a), lin(ctx, b)) else { return };
    // Move everything to `sum(terms) op [lo, hi]`.
    let mut terms = la.terms;
    for (i, c) in lb.terms {
        terms.push((i, -c));
    }
    let Some(terms) = cancel(terms) else { return };
    // constant interval of (b − a)'s clock-free parts
    let lo = lb.lo - la.hi;
    let hi = lb.hi - la.lo;
    let le = |z: &mut Dbm| match terms[..] {
        // sum ≤ c for some concrete c ∈ [lo, hi] ⇒ sum ≤ hi.
        [] => {}
        [(i, 1)] => z.constrain(i, 0, hi),
        [(i, -1)] => z.constrain(0, i, hi),
        [(i, 1), (j, -1)] => z.constrain(i, j, hi),
        [(j, -1), (i, 1)] => z.constrain(i, j, hi),
        _ => {}
    };
    let ge = |z: &mut Dbm| match terms[..] {
        // sum ≥ c for some concrete c ∈ [lo, hi] ⇒ sum ≥ lo.
        [] => {}
        [(i, 1)] => z.constrain(0, i, -lo),
        [(i, -1)] => z.constrain(i, 0, -lo),
        [(i, 1), (j, -1)] => z.constrain(j, i, -lo),
        [(j, -1), (i, 1)] => z.constrain(j, i, -lo),
        _ => {}
    };
    match op {
        BinOp::Le | BinOp::Lt => le(z),
        BinOp::Ge | BinOp::Gt => ge(z),
        BinOp::Eq => {
            le(z);
            ge(z);
        }
        _ => {}
    }
}

/// Cancels opposite-sign repeats of the same clock; bails (`None`) on a
/// coefficient outside {−1, 0, +1} or more than two surviving terms.
fn cancel(terms: Vec<(usize, i32)>) -> Option<Vec<(usize, i32)>> {
    let mut acc: Vec<(usize, i32)> = Vec::new();
    for (i, c) in terms {
        match acc.iter_mut().find(|(j, _)| *j == i) {
            Some(slot) => slot.1 += c,
            None => acc.push((i, c)),
        }
    }
    acc.retain(|(_, c)| *c != 0);
    if acc.len() > 2 || acc.iter().any(|(_, c)| c.abs() > 1) {
        return None;
    }
    Some(acc)
}

/// Linearizes a numeric expression over the tracked clocks: `Some` when
/// it is (clock-affine with unit coefficients) + (clock-free remainder).
fn lin(ctx: &ZoneCtx<'_>, e: &Expr) -> Option<Lin> {
    // Clock-free subtree: one interval, no terms.
    if !e.reads_any_var(&|v| ctx.zidx[v.0].is_some()) {
        return match crate::domain::abs_eval(e, ctx.read) {
            AbsVal::Num(lo, hi) => Some(Lin { terms: Vec::new(), lo, hi }),
            AbsVal::Bool(_) => None,
        };
    }
    match e {
        Expr::Var(v) => {
            let i = ctx.zidx[v.0]?;
            Some(Lin { terms: vec![(i, 1)], lo: 0.0, hi: 0.0 })
        }
        Expr::Neg(x) => {
            let l = lin(ctx, x)?;
            Some(Lin {
                terms: l.terms.into_iter().map(|(i, c)| (i, -c)).collect(),
                lo: -l.hi,
                hi: -l.lo,
            })
        }
        Expr::Bin(BinOp::Add, a, b) => {
            let (mut la, lb) = (lin(ctx, a)?, lin(ctx, b)?);
            la.terms.extend(lb.terms);
            Some(Lin { terms: la.terms, lo: la.lo + lb.lo, hi: la.hi + lb.hi })
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let (mut la, lb) = (lin(ctx, a)?, lin(ctx, b)?);
            la.terms.extend(lb.terms.into_iter().map(|(i, c)| (i, -c)));
            Some(Lin { terms: la.terms, lo: la.lo - lb.hi, hi: la.hi - lb.lo })
        }
        _ => None,
    }
}

/// The largest absolute numeric literal in `e` (0.0 when none). Feeds the
/// extrapolation constant `k`.
pub fn max_literal(e: &Expr) -> f64 {
    use slim_automata::value::Value;
    match e {
        Expr::Const(Value::Int(i)) => (*i as f64).abs(),
        Expr::Const(Value::Real(r)) => r.abs(),
        Expr::Const(Value::Bool(_)) | Expr::Var(_) => 0.0,
        Expr::Not(x) | Expr::Neg(x) => max_literal(x),
        Expr::Bin(_, a, b) => max_literal(a).max(max_literal(b)),
        Expr::Ite(c, t, e) => max_literal(c).max(max_literal(t)).max(max_literal(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TOP_NUM;

    #[test]
    fn close_canonicalizes_and_detects_emptiness() {
        // x ∈ [0, 5], y ∈ [0, 3], x − y ≤ 10: closure tightens the
        // difference bound to x − y ≤ 5 (via x ≤ 5, −y ≤ 0).
        let mut z = Dbm::unconstrained(3);
        z.constrain(1, 0, 5.0);
        z.constrain(0, 1, 0.0);
        z.constrain(2, 0, 3.0);
        z.constrain(0, 2, 0.0);
        z.constrain(1, 2, 10.0);
        assert!(z.close());
        assert!(z.is_canonical());
        assert_eq!(z.get(1, 2), 5.0);
        // Contradictory bounds: x ≤ 1 ∧ x ≥ 2 is empty.
        let mut e = Dbm::unconstrained(2);
        e.constrain(1, 0, 1.0);
        e.constrain(0, 1, -2.0);
        assert!(!e.close());
    }

    #[test]
    fn up_elapses_time_preserving_differences() {
        let mut z = Dbm::point(&[1.0, 4.0]);
        z.up();
        assert!(z.is_canonical());
        assert_eq!(z.upper(1), f64::INFINITY);
        assert_eq!(z.lower(1), 1.0);
        // The difference y − x = 3 survives elapse exactly.
        assert_eq!(z.get(2, 1), 3.0);
        assert_eq!(z.get(1, 2), -3.0);
    }

    #[test]
    fn reset_pins_one_clock_and_keeps_the_rest() {
        let mut z = Dbm::point(&[2.0, 7.0]);
        z.up();
        z.reset(1, 0.0);
        assert!(z.is_canonical());
        assert_eq!(z.lower(1), 0.0);
        assert_eq!(z.upper(1), 0.0);
        // y still remembers its lower bound and is now ahead of x by ≥ 5.
        assert_eq!(z.lower(2), 7.0);
        assert_eq!(z.get(1, 2), -7.0);
    }

    #[test]
    fn intersection_emptiness_via_difference_chains() {
        // x and y advance in lockstep from 0 (x = y). Guard y − x ≥ 2 is
        // unsatisfiable even though both clocks are individually unbounded.
        let mut z = Dbm::point(&[0.0, 0.0]);
        z.up();
        z.constrain(1, 2, -2.0); // x − y ≤ −2 i.e. y − x ≥ 2
        assert!(!z.close());
    }

    #[test]
    fn extrapolation_is_idempotent_and_grows() {
        let mut z = Dbm::point(&[12.0, 3.0]);
        z.up();
        let before = z.clone();
        z.extrapolate(5.0);
        // Grows only: every entry is ≥ the original.
        for i in 0..3 {
            for j in 0..3 {
                assert!(z.get(i, j) >= before.get(i, j));
            }
        }
        let once = z.clone();
        z.extrapolate(5.0);
        assert_eq!(z, once, "extrapolation must be idempotent");
        assert_eq!(z.lower(1), 5.0, "deep lower bounds clamp to k");
    }

    #[test]
    fn join_is_entrywise_max_and_widen_jumps_to_infinity() {
        let mut a = Dbm::point(&[1.0]);
        let b = Dbm::point(&[3.0]);
        assert!(!a.clone().join_widen(&a.clone(), false));
        let mut j = a.clone();
        assert!(j.join_widen(&b, false));
        assert_eq!(j.lower(1), 1.0);
        assert_eq!(j.upper(1), 3.0);
        assert!(j.is_canonical());
        assert!(a.join_widen(&b, true));
        assert_eq!(a.upper(1), f64::INFINITY);
    }

    #[test]
    fn constraint_extraction_handles_atoms_and_conjunctions() {
        // Clocks x (idx 1), y (idx 2); n is an untracked data variable
        // with interval [2, 3].
        let zidx = vec![Some(1), Some(2), None];
        let read = |v: VarId| if v.0 == 2 { AbsVal::Num(2.0, 3.0) } else { TOP_NUM };
        let ctx = ZoneCtx { zidx: &zidx, read: &read };
        let (x, y, n) = (Expr::var(VarId(0)), Expr::var(VarId(1)), Expr::var(VarId(2)));
        let g =
            x.clone().ge(Expr::real(2.0)).and(x.clone().sub(y).le(Expr::real(1.0)).and(x.lt(n)));
        let mut z = Dbm::unconstrained(3);
        constrain_expr(&mut z, &ctx, &g, true);
        assert!(z.close());
        assert_eq!(z.lower(1), 2.0);
        assert_eq!(z.get(1, 2), 1.0);
        // x < n with n ∈ [2, 3] relaxes to x ≤ 3.
        assert_eq!(z.upper(1), 3.0);
        // ... and an extra x ≥ 5 makes 5 ≤ x ≤ 3 empty under closure.
        let mut z2 = Dbm::unconstrained(3);
        constrain_expr(&mut z2, &ctx, &g, true);
        z2.constrain(0, 1, -5.0);
        assert!(!z2.close());
    }

    #[test]
    fn negation_flips_polarity_in_extraction() {
        let zidx = vec![Some(1)];
        let read = |_: VarId| TOP_NUM;
        let ctx = ZoneCtx { zidx: &zidx, read: &read };
        // ¬(x < 4) ⇒ x ≥ 4.
        let g = Expr::var(VarId(0)).lt(Expr::real(4.0)).not();
        let mut z = Dbm::unconstrained(2);
        constrain_expr(&mut z, &ctx, &g, true);
        assert!(z.close());
        assert_eq!(z.lower(1), 4.0);
    }

    #[test]
    fn max_literal_walks_every_shape() {
        let x = Expr::var(VarId(0));
        let e = Expr::ite(
            x.clone().ge(Expr::real(7.5)),
            x.clone().add(Expr::int(-9)),
            x.mul(Expr::real(2.0)),
        );
        assert_eq!(max_literal(&e), 9.0);
    }
}
