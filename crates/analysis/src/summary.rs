//! Proof-artifact summary of a fixpoint run.
//!
//! The summary is the auditable record of what the static analysis
//! established: per-process reachability counts, the dead/blocked
//! transitions with their reasons, and the iteration statistics
//! (rounds/widenings) that show the fixpoint converged. It renders as
//! human-readable text and as JSON (hand-rolled — the artifact is small
//! and the workspace carries no serde dependency).

use crate::fixpoint::{Fixpoint, TransStatus};
use slim_automata::network::Network;
use std::fmt::Write as _;

/// One dead or blocked transition.
#[derive(Debug, Clone)]
pub struct DeadTransition {
    /// Automaton name.
    pub automaton: String,
    /// Source and target location names.
    pub from: String,
    /// Target location name.
    pub to: String,
    /// Why it can never fire (`dead-source`, `dead-guard`, `sync-blocked`).
    pub reason: &'static str,
}

/// Per-automaton reachability counts.
#[derive(Debug, Clone)]
pub struct ProcSummary {
    /// Automaton name.
    pub automaton: String,
    /// Total locations.
    pub locations: usize,
    /// Locations the abstraction can reach.
    pub reachable: usize,
    /// Total transitions.
    pub transitions: usize,
    /// Transitions that may fire.
    pub live: usize,
}

/// The proof artifact of one [`crate::analyze_network`] run.
#[derive(Debug, Clone)]
pub struct AnalysisSummary {
    /// Per-automaton counts.
    pub procs: Vec<ProcSummary>,
    /// Every provably-dead transition.
    pub dead: Vec<DeadTransition>,
    /// Fixpoint rounds until stabilization.
    pub rounds: usize,
    /// Widening applications.
    pub widenings: usize,
}

fn status_reason(s: TransStatus) -> Option<&'static str> {
    match s {
        TransStatus::Live => None,
        TransStatus::DeadSource => Some("dead-source"),
        TransStatus::DeadGuard => Some("dead-guard"),
        TransStatus::SyncBlocked => Some("sync-blocked"),
    }
}

impl AnalysisSummary {
    pub(crate) fn build(fix: &Fixpoint, net: &Network) -> AnalysisSummary {
        let mut procs = Vec::new();
        let mut dead = Vec::new();
        for (p, a) in net.automata().iter().enumerate() {
            let reach = &fix.reachable_matrix()[p];
            let st = &fix.status_matrix()[p];
            procs.push(ProcSummary {
                automaton: a.name.clone(),
                locations: a.locations.len(),
                reachable: reach.iter().filter(|r| **r).count(),
                transitions: a.transitions.len(),
                live: st.iter().filter(|s| **s == TransStatus::Live).count(),
            });
            for (t, trans) in a.transitions.iter().enumerate() {
                if let Some(reason) = status_reason(st[t]) {
                    dead.push(DeadTransition {
                        automaton: a.name.clone(),
                        from: a.locations[trans.from.0].name.clone(),
                        to: a.locations[trans.to.0].name.clone(),
                        reason,
                    });
                }
            }
        }
        AnalysisSummary { procs, dead, rounds: fix.rounds, widenings: fix.widenings }
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "static analysis: {} round(s), {} widening(s)",
            self.rounds, self.widenings
        );
        for p in &self.procs {
            let _ = writeln!(
                out,
                "  {}: {}/{} locations reachable, {}/{} transitions live",
                p.automaton, p.reachable, p.locations, p.live, p.transitions
            );
        }
        for d in &self.dead {
            let _ =
                writeln!(out, "  dead: {} `{}` -> `{}` ({})", d.automaton, d.from, d.to, d.reason);
        }
        out
    }

    /// JSON rendering of the proof artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"rounds\":{},\"widenings\":{},", self.rounds, self.widenings);
        out.push_str("\"automata\":[");
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"locations\":{},\"reachable\":{},\"transitions\":{},\"live\":{}}}",
                json_str(&p.automaton),
                p.locations,
                p.reachable,
                p.transitions,
                p.live
            );
        }
        out.push_str("],\"dead_transitions\":[");
        for (i, d) in self.dead.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"automaton\":{},\"from\":{},\"to\":{},\"reason\":{}}}",
                json_str(&d.automaton),
                json_str(&d.from),
                json_str(&d.to),
                json_str(d.reason)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
