//! Proof-artifact summary of a fixpoint run.
//!
//! The summary is the auditable record of what the static analysis
//! established: per-process reachability counts, the dead/blocked
//! transitions with their reasons, zone-domain statistics, the
//! per-location distance-to-goal map, and the iteration statistics
//! (rounds/widenings) that show the fixpoint converged. It renders as
//! human-readable text and as JSON (hand-rolled — the artifact is small
//! and the workspace carries no serde dependency).
//!
//! Schema history:
//!
//! * **v1** — `rounds`, `widenings`, `automata[]`, `dead_transitions[]`
//!   (no `kind`/`schema_version` members).
//! * **v2** — adds `kind: "analysis-summary"`, `schema_version`, the
//!   `zones` object (tracked clocks, extrapolation `k`, zone-dead guard
//!   and timelock counts; `null` with zones off), a `locations[]` array
//!   with `min_time`/`steps_to_goal` per location, and the
//!   `zone-dead-guard` dead reason.

use crate::fixpoint::{Fixpoint, TransStatus};
use slim_automata::automaton::{LocId, ProcId};
use slim_automata::network::Network;
use std::fmt::Write as _;

/// Current JSON schema version of the artifact.
pub const SUMMARY_SCHEMA_VERSION: u64 = 2;
/// The `kind` member identifying the document.
pub const SUMMARY_KIND: &str = "analysis-summary";

/// One dead or blocked transition.
#[derive(Debug, Clone)]
pub struct DeadTransition {
    /// Automaton name.
    pub automaton: String,
    /// Source and target location names.
    pub from: String,
    /// Target location name.
    pub to: String,
    /// Why it can never fire (`dead-source`, `dead-guard`,
    /// `zone-dead-guard`, `sync-blocked`).
    pub reason: &'static str,
}

/// Per-automaton reachability counts.
#[derive(Debug, Clone)]
pub struct ProcSummary {
    /// Automaton name.
    pub automaton: String,
    /// Total locations.
    pub locations: usize,
    /// Locations the abstraction can reach.
    pub reachable: usize,
    /// Total transitions.
    pub transitions: usize,
    /// Transitions that may fire.
    pub live: usize,
}

/// Zone-domain statistics (present when the clock-zone product ran).
#[derive(Debug, Clone)]
pub struct ZoneSummary {
    /// Tracked clock slots across all processes.
    pub clocks: usize,
    /// Extrapolation constant.
    pub k: f64,
    /// Transitions dead only under the zone domain.
    pub zone_dead_guards: usize,
    /// Static timelocks detected.
    pub timelocks: usize,
}

/// Per-location row of the distance-to-goal map.
#[derive(Debug, Clone)]
pub struct LocationSummary {
    /// Automaton name.
    pub automaton: String,
    /// Location name.
    pub location: String,
    /// Whether the abstraction can reach it.
    pub reachable: bool,
    /// Zone lower bound on elapsed time when occupying it.
    pub min_time: Option<f64>,
    /// Minimum live transitions to a goal location (when goals given).
    pub steps_to_goal: Option<u64>,
}

/// The proof artifact of one [`crate::analyze_network`] run.
#[derive(Debug, Clone)]
pub struct AnalysisSummary {
    /// Per-automaton counts.
    pub procs: Vec<ProcSummary>,
    /// Every provably-dead transition.
    pub dead: Vec<DeadTransition>,
    /// Zone-domain statistics (`None` with zones off).
    pub zones: Option<ZoneSummary>,
    /// Per-location reachability / distance rows.
    pub locations: Vec<LocationSummary>,
    /// Fixpoint rounds until stabilization.
    pub rounds: usize,
    /// Widening applications.
    pub widenings: usize,
}

fn status_reason(s: TransStatus) -> Option<&'static str> {
    match s {
        TransStatus::Live => None,
        TransStatus::DeadSource => Some("dead-source"),
        TransStatus::DeadGuard => Some("dead-guard"),
        TransStatus::SyncBlocked => Some("sync-blocked"),
    }
}

impl AnalysisSummary {
    pub(crate) fn build(
        fix: &Fixpoint,
        net: &Network,
        goals: Option<&[(ProcId, LocId, u64)]>,
    ) -> AnalysisSummary {
        let steps = goals.map(|targets| fix.distance_steps(net, targets));
        let mut procs = Vec::new();
        let mut dead = Vec::new();
        let mut locations = Vec::new();
        for (p, a) in net.automata().iter().enumerate() {
            let reach = &fix.reachable_matrix()[p];
            let st = &fix.status_matrix()[p];
            procs.push(ProcSummary {
                automaton: a.name.clone(),
                locations: a.locations.len(),
                reachable: reach.iter().filter(|r| **r).count(),
                transitions: a.transitions.len(),
                live: st.iter().filter(|s| **s == TransStatus::Live).count(),
            });
            for (t, trans) in a.transitions.iter().enumerate() {
                if let Some(reason) = status_reason(st[t]) {
                    let reason =
                        if fix.zone_dead_matrix()[p][t] { "zone-dead-guard" } else { reason };
                    dead.push(DeadTransition {
                        automaton: a.name.clone(),
                        from: a.locations[trans.from.0].name.clone(),
                        to: a.locations[trans.to.0].name.clone(),
                        reason,
                    });
                }
            }
            for (l, loc) in a.locations.iter().enumerate() {
                locations.push(LocationSummary {
                    automaton: a.name.clone(),
                    location: loc.name.clone(),
                    reachable: reach[l],
                    min_time: fix.min_time_matrix()[p][l],
                    steps_to_goal: steps.as_ref().and_then(|s| s[p][l]),
                });
            }
        }
        let zones = fix.zones_enabled().then(|| ZoneSummary {
            clocks: fix.zone_clock_count(),
            k: fix.extrapolation_k(),
            zone_dead_guards: fix
                .zone_dead_matrix()
                .iter()
                .map(|r| r.iter().filter(|d| **d).count())
                .sum(),
            timelocks: fix.static_timelocks().len(),
        });
        AnalysisSummary {
            procs,
            dead,
            zones,
            locations,
            rounds: fix.rounds,
            widenings: fix.widenings,
        }
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "static analysis: {} round(s), {} widening(s)",
            self.rounds, self.widenings
        );
        if let Some(z) = &self.zones {
            let _ = writeln!(
                out,
                "  zones: {} clock(s), k = {}, {} zone-dead guard(s), {} timelock(s)",
                z.clocks, z.k, z.zone_dead_guards, z.timelocks
            );
        }
        for p in &self.procs {
            let _ = writeln!(
                out,
                "  {}: {}/{} locations reachable, {}/{} transitions live",
                p.automaton, p.reachable, p.locations, p.live, p.transitions
            );
        }
        for d in &self.dead {
            let _ =
                writeln!(out, "  dead: {} `{}` -> `{}` ({})", d.automaton, d.from, d.to, d.reason);
        }
        for l in &self.locations {
            if l.min_time.is_some() || l.steps_to_goal.is_some() {
                let _ = writeln!(
                    out,
                    "  loc: {} `{}` min_time={} steps_to_goal={}",
                    l.automaton,
                    l.location,
                    l.min_time.map_or("-".into(), |t| format!("{t}")),
                    l.steps_to_goal.map_or("-".into(), |s: u64| format!("{s}")),
                );
            }
        }
        out
    }

    /// JSON rendering of the proof artifact (schema v2).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"kind\":{},\"schema_version\":{},\"rounds\":{},\"widenings\":{},",
            json_str(SUMMARY_KIND),
            SUMMARY_SCHEMA_VERSION,
            self.rounds,
            self.widenings
        );
        match &self.zones {
            None => out.push_str("\"zones\":null,"),
            Some(z) => {
                let _ = write!(
                    out,
                    "\"zones\":{{\"clocks\":{},\"k\":{},\"zone_dead_guards\":{},\"timelocks\":{}}},",
                    z.clocks, json_f64(z.k), z.zone_dead_guards, z.timelocks
                );
            }
        }
        out.push_str("\"automata\":[");
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"locations\":{},\"reachable\":{},\"transitions\":{},\"live\":{}}}",
                json_str(&p.automaton),
                p.locations,
                p.reachable,
                p.transitions,
                p.live
            );
        }
        out.push_str("],\"locations\":[");
        for (i, l) in self.locations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"automaton\":{},\"location\":{},\"reachable\":{},\"min_time\":{},\"steps_to_goal\":{}}}",
                json_str(&l.automaton),
                json_str(&l.location),
                l.reachable,
                l.min_time.map_or("null".to_string(), json_f64),
                l.steps_to_goal.map_or("null".to_string(), |s| s.to_string()),
            );
        }
        out.push_str("],\"dead_transitions\":[");
        for (i, d) in self.dead.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"automaton\":{},\"from\":{},\"to\":{},\"reason\":{}}}",
                json_str(&d.automaton),
                json_str(&d.from),
                json_str(&d.to),
                json_str(d.reason)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Finite floats render plainly (with a decimal point so they re-parse as
/// reals); infinities have no JSON literal and degrade to `null`.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let v = if v == 0.0 { 0.0 } else { v }; // normalize -0.0
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
