//! Component instantiation: expanding the implementation hierarchy into a
//! tree of component instances (with recursion detection — one of the
//! validations the paper's backend performs on input models).

use crate::ast::{Category, Model, QName, Subcomponent};
use crate::error::{LangError, LangErrorKind};
use crate::token::Pos;

/// One instantiated component.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Absolute instance path (root name first).
    pub path: QName,
    /// The implementation this instance expands.
    pub impl_name: (String, String),
    /// Category tag.
    pub category: Category,
    /// Child instances (instance subcomponents, in declaration order).
    pub children: Vec<Instance>,
}

impl Instance {
    /// Depth-first iteration over this instance and all descendants.
    pub fn walk(&self) -> Vec<&Instance> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }

    /// Finds a descendant (or self) by absolute path.
    pub fn find(&self, path: &QName) -> Option<&Instance> {
        self.walk().into_iter().find(|i| &i.path == path)
    }
}

/// Instantiates `ty.im` from `model` under the root name `root_name`.
///
/// # Errors
/// [`LangErrorKind::Unknown`] for missing implementations and
/// [`LangErrorKind::Invalid`] for recursive component hierarchies.
pub fn instantiate(
    model: &Model,
    ty: &str,
    im: &str,
    root_name: &str,
) -> Result<Instance, LangError> {
    let mut stack = Vec::new();
    build(model, ty, im, QName::simple(root_name), &mut stack)
}

fn build(
    model: &Model,
    ty: &str,
    im: &str,
    path: QName,
    stack: &mut Vec<(String, String)>,
) -> Result<Instance, LangError> {
    let key = (ty.to_string(), im.to_string());
    if stack.contains(&key) {
        return Err(LangError {
            kind: LangErrorKind::Invalid(format!(
                "recursively defined component `{ty}.{im}` (instantiation cycle)"
            )),
            pos: Pos::START,
        });
    }
    let ci = model.find_impl(ty, im).ok_or_else(|| LangError {
        kind: LangErrorKind::Unknown(format!("{ty}.{im}")),
        pos: Pos::START,
    })?;
    // The component type must exist as well (features live there).
    if model.find_type(ty).is_none() {
        return Err(LangError {
            kind: LangErrorKind::Unknown(format!("component type `{ty}`")),
            pos: Pos::START,
        });
    }
    stack.push(key);
    let mut children = Vec::new();
    for sub in &ci.subcomponents {
        if let Subcomponent::Instance { name, category, impl_ref, .. } = sub {
            let child = build(model, &impl_ref.0, &impl_ref.1, path.child(name.clone()), stack)?;
            if child.category != *category {
                stack.pop();
                return Err(LangError {
                    kind: LangErrorKind::Invalid(format!(
                        "subcomponent `{name}`: category `{category}` does not match \
                         implementation `{}.{}` declared as `{}`",
                        impl_ref.0, impl_ref.1, child.category
                    )),
                    pos: Pos::START,
                });
            }
            children.push(child);
        }
    }
    stack.pop();
    Ok(Instance {
        path,
        impl_name: (ty.to_string(), im.to_string()),
        category: ci.category,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn flat_instantiation() {
        let m = parse(
            r#"
            device GPS end GPS;
            device implementation GPS.Impl end GPS.Impl;
            system Top end Top;
            system implementation Top.Impl
              subcomponents
                gps1: device GPS.Impl;
                gps2: device GPS.Impl;
            end Top.Impl;
            "#,
        )
        .unwrap();
        let root = instantiate(&m, "Top", "Impl", "top").unwrap();
        assert_eq!(root.path.to_string(), "top");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].path.to_string(), "top.gps1");
        assert_eq!(root.walk().len(), 3);
        assert!(root.find(&QName::parse("top.gps2")).is_some());
        assert!(root.find(&QName::parse("top.gps3")).is_none());
    }

    #[test]
    fn nested_instantiation() {
        let m = parse(
            r#"
            device Leaf end Leaf;
            device implementation Leaf.I end Leaf.I;
            system Mid end Mid;
            system implementation Mid.I
              subcomponents
                leaf: device Leaf.I;
            end Mid.I;
            system Top end Top;
            system implementation Top.I
              subcomponents
                mid: system Mid.I;
            end Top.I;
            "#,
        )
        .unwrap();
        let root = instantiate(&m, "Top", "I", "t").unwrap();
        assert!(root.find(&QName::parse("t.mid.leaf")).is_some());
    }

    #[test]
    fn recursion_detected() {
        let m = parse(
            r#"
            system S end S;
            system implementation S.I
              subcomponents
                child: system S.I;
            end S.I;
            "#,
        )
        .unwrap();
        let err = instantiate(&m, "S", "I", "root").unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::Invalid(msg) if msg.contains("recursively")));
    }

    #[test]
    fn missing_impl_and_type_reported() {
        let m = parse("system S end S;").unwrap();
        assert!(matches!(
            instantiate(&m, "S", "I", "r").unwrap_err().kind,
            LangErrorKind::Unknown(_)
        ));
        let m2 = parse("system implementation S.I end S.I;").unwrap();
        assert!(matches!(
            instantiate(&m2, "S", "I", "r").unwrap_err().kind,
            LangErrorKind::Unknown(_)
        ));
    }

    #[test]
    fn category_mismatch_rejected() {
        let m = parse(
            r#"
            device D end D;
            device implementation D.I end D.I;
            system T end T;
            system implementation T.I
              subcomponents
                d: process D.I;
            end T.I;
            "#,
        )
        .unwrap();
        let err = instantiate(&m, "T", "I", "r").unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::Invalid(msg) if msg.contains("category")));
    }
}
