//! Abstract syntax of the SLIM subset (see `docs/slim-grammar.md`).
//!
//! Declaration nodes carry the source position (`pos`) of their first
//! token so diagnostics can point at `line:col`. Positions are metadata:
//! they do not participate in equality, so structurally identical models
//! compare equal regardless of where they were written.

use crate::token::Pos;
use std::fmt;

/// A dotted name `a.b.c` (component paths, port references).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName(pub Vec<String>);

impl QName {
    /// A single-segment name.
    pub fn simple(s: impl Into<String>) -> QName {
        QName(vec![s.into()])
    }

    /// Builds from dot-separated text.
    pub fn parse(s: &str) -> QName {
        QName(s.split('.').map(str::to_string).collect())
    }

    /// The segments.
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// Appends a segment.
    pub fn child(&self, seg: impl Into<String>) -> QName {
        let mut v = self.0.clone();
        v.push(seg.into());
        QName(v)
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

/// AADL component categories (semantically interchangeable tags in the
/// subset; kept for fidelity of the surface syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Category {
    System,
    Device,
    Process,
    Processor,
    Bus,
    Thread,
    Memory,
    Abstract,
}

impl Category {
    /// Concrete spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::System => "system",
            Category::Device => "device",
            Category::Process => "process",
            Category::Processor => "processor",
            Category::Bus => "bus",
            Category::Thread => "thread",
            Category::Memory => "memory",
            Category::Abstract => "abstract",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Surface data types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// Integer with optional range.
    Int(Option<(i64, i64)>),
    /// Real.
    Real,
    /// Clock (derivative 1 everywhere).
    Clock,
    /// Continuous (per-mode derivative).
    Continuous,
}

/// Literals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
}

/// Surface expressions (names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal.
    Lit(Literal),
    /// Possibly-dotted name.
    Name(QName),
    /// Unary logical negation.
    Not(Box<Expr>),
    /// Unary arithmetic negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `if c then t else e`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    And,
    Or,
    Xor,
    Implies,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Direction {
    In,
    Out,
}

/// A feature (port) of a component type.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Port name.
    pub name: String,
    /// In/out.
    pub direction: Direction,
    /// `None` for event ports, `Some(ty)` for data ports.
    pub data: Option<DataType>,
    /// Default value for data ports.
    pub default: Option<Literal>,
}

impl Feature {
    /// True for event ports.
    pub fn is_event(&self) -> bool {
        self.data.is_none()
    }
}

/// A component type declaration.
#[derive(Debug, Clone)]
pub struct ComponentType {
    /// Category tag.
    pub category: Category,
    /// Type name.
    pub name: String,
    /// Ports.
    pub features: Vec<Feature>,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for ComponentType {
    fn eq(&self, o: &Self) -> bool {
        self.category == o.category && self.name == o.name && self.features == o.features
    }
}

/// A subcomponent declaration inside an implementation.
#[derive(Debug, Clone)]
pub enum Subcomponent {
    /// A data component.
    Data {
        /// Local name.
        name: String,
        /// Type.
        ty: DataType,
        /// Initial value.
        init: Option<Literal>,
        /// Source position of the declaration.
        pos: Pos,
    },
    /// A nested component instance.
    Instance {
        /// Local name.
        name: String,
        /// Category tag (must match the implementation's).
        category: Category,
        /// Implementation reference `Type.Impl`.
        impl_ref: (String, String),
        /// Source position of the declaration.
        pos: Pos,
    },
}

impl PartialEq for Subcomponent {
    fn eq(&self, o: &Self) -> bool {
        match (self, o) {
            (
                Subcomponent::Data { name: an, ty: at, init: ai, .. },
                Subcomponent::Data { name: bn, ty: bt, init: bi, .. },
            ) => an == bn && at == bt && ai == bi,
            (
                Subcomponent::Instance { name: an, category: ac, impl_ref: ar, .. },
                Subcomponent::Instance { name: bn, category: bc, impl_ref: br, .. },
            ) => an == bn && ac == bc && ar == br,
            _ => false,
        }
    }
}

impl Subcomponent {
    /// The declared local name.
    pub fn name(&self) -> &str {
        match self {
            Subcomponent::Data { name, .. } | Subcomponent::Instance { name, .. } => name,
        }
    }
}

/// A port-to-port connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Source port (qualified from the implementation's viewpoint).
    pub from: QName,
    /// Target port.
    pub to: QName,
}

/// A flow definition `out_port := expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDef {
    /// Target (an out data port or local data).
    pub target: QName,
    /// Defining expression.
    pub expr: Expr,
}

/// A mode (location) declaration.
#[derive(Debug, Clone)]
pub struct ModeDecl {
    /// Mode name.
    pub name: String,
    /// Marked `initial`.
    pub initial: bool,
    /// Invariant (`while`), if any.
    pub invariant: Option<Expr>,
    /// Derivatives `der x = r`.
    pub derivatives: Vec<(QName, f64)>,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for ModeDecl {
    fn eq(&self, o: &Self) -> bool {
        self.name == o.name
            && self.initial == o.initial
            && self.invariant == o.invariant
            && self.derivatives == o.derivatives
    }
}

/// A transition trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Internal (no event).
    Internal,
    /// An event port.
    Port(QName),
    /// An exponential rate.
    Rate(f64),
}

/// A mode transition.
#[derive(Debug, Clone)]
pub struct TransitionDecl {
    /// Source mode.
    pub from: String,
    /// Urgent (eager) transition: time may not pass beyond its first
    /// enabling instant.
    pub urgent: bool,
    /// Trigger.
    pub trigger: Trigger,
    /// Guard (`when`).
    pub guard: Option<Expr>,
    /// Effects (`then`).
    pub effects: Vec<(QName, Expr)>,
    /// Target mode.
    pub to: String,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for TransitionDecl {
    fn eq(&self, o: &Self) -> bool {
        self.from == o.from
            && self.urgent == o.urgent
            && self.trigger == o.trigger
            && self.guard == o.guard
            && self.effects == o.effects
            && self.to == o.to
    }
}

/// A component implementation.
#[derive(Debug, Clone)]
pub struct ComponentImpl {
    /// Category tag.
    pub category: Category,
    /// `(Type, Impl)` name pair.
    pub name: (String, String),
    /// Subcomponents.
    pub subcomponents: Vec<Subcomponent>,
    /// Connections.
    pub connections: Vec<Connection>,
    /// Flows.
    pub flows: Vec<FlowDef>,
    /// Modes.
    pub modes: Vec<ModeDecl>,
    /// Transitions.
    pub transitions: Vec<TransitionDecl>,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for ComponentImpl {
    fn eq(&self, o: &Self) -> bool {
        self.category == o.category
            && self.name == o.name
            && self.subcomponents == o.subcomponents
            && self.connections == o.connections
            && self.flows == o.flows
            && self.modes == o.modes
            && self.transitions == o.transitions
    }
}

/// An error-model state.
#[derive(Debug, Clone)]
pub struct ErrorState {
    /// State name.
    pub name: String,
    /// Marked `initial`.
    pub initial: bool,
    /// Invariant over the implicit clock `c`.
    pub invariant: Option<Expr>,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for ErrorState {
    fn eq(&self, o: &Self) -> bool {
        self.name == o.name && self.initial == o.initial && self.invariant == o.invariant
    }
}

/// An error-model transition trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorTrigger {
    /// Error event with exponential rate.
    Rate(f64),
    /// Timed condition over the implicit clock `c`.
    When(Expr),
    /// Named error propagation (synchronizes across error models).
    Propagation(String),
}

/// An error-model transition.
#[derive(Debug, Clone)]
pub struct ErrorTransition {
    /// Source state.
    pub from: String,
    /// Trigger.
    pub trigger: ErrorTrigger,
    /// Target state.
    pub to: String,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for ErrorTransition {
    fn eq(&self, o: &Self) -> bool {
        self.from == o.from && self.trigger == o.trigger && self.to == o.to
    }
}

/// An error model (§II-D: states + error events/propagations).
#[derive(Debug, Clone)]
pub struct ErrorModel {
    /// Model name.
    pub name: String,
    /// States.
    pub states: Vec<ErrorState>,
    /// Transitions.
    pub transitions: Vec<ErrorTransition>,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for ErrorModel {
    fn eq(&self, o: &Self) -> bool {
        self.name == o.name && self.states == o.states && self.transitions == o.transitions
    }
}

/// A fault injection binding an error model to a component instance
/// (model extension, §II-D).
#[derive(Debug, Clone)]
pub struct FaultInjection {
    /// Instance path of the affected component (from the root).
    pub target: QName,
    /// Error model name.
    pub error_model: String,
    /// `(error state, data path, value)` — applied on entering the state.
    pub effects: Vec<(String, QName, Literal)>,
    /// Source position of the declaration.
    pub pos: Pos,
}

impl PartialEq for FaultInjection {
    fn eq(&self, o: &Self) -> bool {
        self.target == o.target && self.error_model == o.error_model && self.effects == o.effects
    }
}

/// A parsed model: all declarations of a source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Model {
    /// Component types.
    pub types: Vec<ComponentType>,
    /// Component implementations.
    pub impls: Vec<ComponentImpl>,
    /// Error models.
    pub error_models: Vec<ErrorModel>,
    /// Fault injections.
    pub injections: Vec<FaultInjection>,
}

impl Model {
    /// Finds a component type by name.
    pub fn find_type(&self, name: &str) -> Option<&ComponentType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Finds an implementation by `(type, impl)` name.
    pub fn find_impl(&self, ty: &str, im: &str) -> Option<&ComponentImpl> {
        self.impls.iter().find(|i| i.name.0 == ty && i.name.1 == im)
    }

    /// Finds an error model by name.
    pub fn find_error_model(&self, name: &str) -> Option<&ErrorModel> {
        self.error_models.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_parse_display() {
        let q = QName::parse("gps1.pos.x");
        assert_eq!(q.segments().len(), 3);
        assert_eq!(q.to_string(), "gps1.pos.x");
        assert_eq!(QName::simple("a").child("b").to_string(), "a.b");
    }

    #[test]
    fn feature_kinds() {
        let ev = Feature { name: "go".into(), direction: Direction::In, data: None, default: None };
        assert!(ev.is_event());
        let dp = Feature {
            name: "v".into(),
            direction: Direction::Out,
            data: Some(DataType::Bool),
            default: Some(Literal::Bool(true)),
        };
        assert!(!dp.is_event());
    }

    #[test]
    fn model_lookups() {
        let mut m = Model::default();
        m.types.push(ComponentType {
            category: Category::Device,
            name: "GPS".into(),
            features: vec![],
            pos: Pos::START,
        });
        m.impls.push(ComponentImpl {
            category: Category::Device,
            name: ("GPS".into(), "Impl".into()),
            subcomponents: vec![],
            connections: vec![],
            flows: vec![],
            modes: vec![],
            transitions: vec![],
            pos: Pos::START,
        });
        m.error_models.push(ErrorModel {
            name: "E".into(),
            states: vec![],
            transitions: vec![],
            pos: Pos::START,
        });
        assert!(m.find_type("GPS").is_some());
        assert!(m.find_impl("GPS", "Impl").is_some());
        assert!(m.find_impl("GPS", "Other").is_none());
        assert!(m.find_error_model("E").is_some());
    }

    #[test]
    fn subcomponent_name() {
        let d = Subcomponent::Data {
            name: "x".into(),
            ty: DataType::Real,
            init: None,
            pos: Pos::START,
        };
        assert_eq!(d.name(), "x");
    }
}
