//! # slim-lang
//!
//! Front-end for the SLIM subset (the COMPASS dialect of AADL, §II-D of
//! *"A Statistical Approach for Timed Reachability in AADL Models"*,
//! DSN 2015): lexer, parser, component instantiation, model extension
//! (error-model weaving with fault injections) and lowering to the
//! event-data automata of [`slim_automata`].
//!
//! The concrete grammar is documented in `docs/slim-grammar.md`.
//!
//! ## Example
//!
//! ```
//! use slim_lang::{parser::parse, lower::lower};
//!
//! let model = parse(r#"
//!     device GPS
//!       features
//!         fix: out data port bool := false;
//!     end GPS;
//!     device implementation GPS.Impl
//!       subcomponents
//!         c: data clock;
//!       modes
//!         acq: initial mode while c <= 120.0;
//!         active: mode;
//!       transitions
//!         acq -[ when c >= 10.0 then fix := true ]-> active;
//!     end GPS.Impl;
//! "#)?;
//! let lowered = lower(&model, "GPS", "Impl", "gps")?;
//! assert_eq!(lowered.network.automata().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod error;
pub mod instance;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod token;

pub use analysis::{analyze_model, is_lowerable};
pub use error::LangError;
pub use lower::{lower, Lowered};
pub use parser::parse;
pub use pretty::pretty;
pub use slim_lint::{Diagnostic, Severity};
