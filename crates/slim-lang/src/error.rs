//! Front-end error types.

use crate::token::Pos;
use std::fmt;

/// A lexing/parsing/analysis error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// What went wrong.
    pub kind: LangErrorKind,
    /// Where (1-based line:column).
    pub pos: Pos,
}

/// Error kinds of the front-end.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum LangErrorKind {
    /// Lexer met an unexpected character.
    UnexpectedChar(char),
    /// Malformed numeric literal.
    BadNumber(String),
    /// Parser expected something else.
    Expected { expected: String, found: String },
    /// `end X;` does not match the declaration header.
    EndMismatch { declared: String, ended: String },
    /// A name was declared twice.
    Duplicate(String),
    /// A referenced name does not exist.
    Unknown(String),
    /// A construct is well-formed but not allowed here (e.g. a `rate`
    /// trigger combined with a `when` guard).
    Invalid(String),
    /// Lowering produced an ill-formed network.
    Lowering(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.pos)?;
        match &self.kind {
            LangErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            LangErrorKind::BadNumber(s) => write!(f, "malformed number `{s}`"),
            LangErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            LangErrorKind::EndMismatch { declared, ended } => {
                write!(f, "`end {ended}` does not match declaration `{declared}`")
            }
            LangErrorKind::Duplicate(n) => write!(f, "duplicate declaration of `{n}`"),
            LangErrorKind::Unknown(n) => write!(f, "unknown name `{n}`"),
            LangErrorKind::Invalid(msg) => write!(f, "{msg}"),
            LangErrorKind::Lowering(msg) => write!(f, "lowering failed: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e =
            LangError { kind: LangErrorKind::Unknown("gps".into()), pos: Pos { line: 4, col: 2 } };
        let s = e.to_string();
        assert!(s.contains("4:2") && s.contains("gps"));
    }
}
