//! Lexer for the SLIM subset.

use crate::error::{LangError, LangErrorKind};
use crate::token::{Keyword, Pos, Token, TokenKind};

/// Lexes a complete source string into tokens (ending with
/// [`TokenKind::Eof`]).
///
/// # Errors
/// [`LangError`] on unexpected characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), at: 0, pos: Pos::START }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.at += 1;
        if c == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn error(&self, kind: LangErrorKind) -> LangError {
        LangError { kind, pos: self.pos }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let pos = self.pos;
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, pos });
                return Ok(out);
            };
            let kind = match c {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'[' => self.single(TokenKind::LBracket),
                b']' => {
                    // `]->` closes a transition label.
                    if self.src[self.at..].starts_with(b"]->") {
                        self.bump();
                        self.bump();
                        self.bump();
                        TokenKind::TransClose
                    } else {
                        self.single(TokenKind::RBracket)
                    }
                }
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'+' => self.single(TokenKind::Plus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Assign
                    } else {
                        TokenKind::Colon
                    }
                }
                b'.' => {
                    self.bump();
                    if self.peek() == Some(b'.') {
                        self.bump();
                        TokenKind::DotDot
                    } else {
                        TokenKind::Dot
                    }
                }
                b'-' => {
                    self.bump();
                    match self.peek() {
                        Some(b'[') => {
                            self.bump();
                            TokenKind::TransOpen
                        }
                        Some(b'>') => {
                            self.bump();
                            TokenKind::Arrow
                        }
                        _ => TokenKind::Minus,
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Implies
                    } else {
                        TokenKind::Eq
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        return Err(self.error(LangErrorKind::UnexpectedChar('!')));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                b'0'..=b'9' => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                other => {
                    return Err(self.error(LangErrorKind::UnexpectedChar(other as char)));
                }
            };
            out.push(Token { kind, pos });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // `--` line comment.
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, LangError> {
        let start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // A fractional part — but `..` is the range operator, not a dot.
        let mut is_real = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_real = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = (self.at, self.pos);
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                is_real = true;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. identifier follows).
                self.at = save.0;
                self.pos = save.1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("ASCII digits");
        if is_real {
            text.parse::<f64>()
                .map(TokenKind::Real)
                .map_err(|_| self.error(LangErrorKind::BadNumber(text.to_string())))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| self.error(LangErrorKind::BadNumber(text.to_string())))
        }
    }

    fn word(&mut self) -> TokenKind {
        let start = self.at;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("ASCII word");
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x := 3;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(3),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn transition_brackets() {
        assert_eq!(
            kinds("m1 -[ go ]-> m2"),
            vec![
                TokenKind::Ident("m1".into()),
                TokenKind::TransOpen,
                TokenKind::Ident("go".into()),
                TokenKind::TransClose,
                TokenKind::Ident("m2".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a -> b - c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Minus,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_real_exponent() {
        assert_eq!(
            kinds("42 3.5 1e-3 7"),
            vec![
                TokenKind::Int(42),
                TokenKind::Real(3.5),
                TokenKind::Real(0.001),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn int_range_dots_not_real() {
        assert_eq!(
            kinds("int [1..5]"),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::LBracket,
                TokenKind::Int(1),
                TokenKind::DotDot,
                TokenKind::Int(5),
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x -- this is a comment\ny"),
            vec![TokenKind::Ident("x".into()), TokenKind::Ident("y".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(
            kinds("system implementation rate when"),
            vec![
                TokenKind::Keyword(Keyword::System),
                TokenKind::Keyword(Keyword::Implementation),
                TokenKind::Keyword(Keyword::Rate),
                TokenKind::Keyword(Keyword::When),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c != d = e => f"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Eq,
                TokenKind::Ident("e".into()),
                TokenKind::Implies,
                TokenKind::Ident("f".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_char_rejected() {
        assert!(lex("a # b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn identifier_with_e_suffix_after_number() {
        // `2e` is not an exponent — lexed as int then identifier.
        assert_eq!(
            kinds("2e"),
            vec![TokenKind::Int(2), TokenKind::Ident("e".into()), TokenKind::Eof]
        );
    }
}
