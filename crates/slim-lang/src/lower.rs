//! Lowering: instance tree → network of event-data automata.
//!
//! This is the Rust counterpart of the COMPASS backend that feeds the
//! simulator (§II-F/III-A): it flattens the component hierarchy, resolves
//! names, turns event-port connections into synchronizing actions,
//! data-port connections into flows, modes into locations — and performs
//! **model extension** (§II-D): each fault injection weaves its error
//! model in as an additional automaton whose state entries apply the
//! injected data effects.

use crate::ast::{self, Model, QName, Subcomponent, Trigger};
use crate::error::{LangError, LangErrorKind};
use crate::instance::{instantiate, Instance};
use crate::token::Pos;
use slim_automata::automaton::Effect;
use slim_automata::expr::VarId;
use slim_automata::prelude::{
    ActionId, AutomatonBuilder, Expr, Network, NetworkBuilder, Value, VarType,
};
use std::collections::HashMap;

/// The lowering result: the network plus name bookkeeping.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The validated network. Variable names are absolute instance paths
    /// (`top.gps1.fix`); automaton names are instance paths, error
    /// automata are `<path>.error_<model>`.
    pub network: Network,
    /// Source position of each transition, indexed
    /// `[automaton][transition]` in network order — the side table the
    /// profiler uses to resolve hot guards back to `file:line:col`.
    /// Every lowered transition traces back to a `trans` declaration (or
    /// an error-model transition), so entries are `Some` for `.slim`
    /// input; consumers must still tolerate `None` for forward
    /// compatibility with synthesized transitions.
    pub transition_spans: Vec<Vec<Option<Pos>>>,
}

fn err(kind: LangErrorKind) -> LangError {
    LangError { kind, pos: Pos::START }
}

/// Lowers `root_ty.root_im` of `model` into a network, rooted at
/// `root_name`.
///
/// # Errors
/// Name-resolution failures, structural violations, and any
/// well-formedness error from network validation (reported as
/// [`LangErrorKind::Lowering`]).
pub fn lower(
    model: &Model,
    root_ty: &str,
    root_im: &str,
    root_name: &str,
) -> Result<Lowered, LangError> {
    let root = instantiate(model, root_ty, root_im, root_name)?;
    let mut lw = Lowering {
        model,
        builder: NetworkBuilder::new(),
        vars: HashMap::new(),
        event_ports: HashMap::new(),
        uf: UnionFind::default(),
        actions: HashMap::new(),
        spans: Vec::new(),
    };
    lw.declare_vars(&root)?;
    lw.register_event_ports(&root)?;
    lw.process_connections(&root)?;
    lw.build_automata(&root)?;
    lw.process_flows(&root)?;
    lw.weave_injections(&root)?;
    let network = lw.builder.build().map_err(|e| err(LangErrorKind::Lowering(e.to_string())))?;
    Ok(Lowered { network, transition_spans: lw.spans })
}

/// Simple union-find over event-port indices.
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn add(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        i
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let r = self.find(self.parent[i]);
            self.parent[i] = r;
            r
        } else {
            i
        }
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

struct Lowering<'m> {
    model: &'m Model,
    builder: NetworkBuilder,
    /// Absolute path → (var, surface type).
    vars: HashMap<String, (VarId, ast::DataType)>,
    /// Absolute event-port path → union-find node.
    event_ports: HashMap<String, usize>,
    uf: UnionFind,
    /// Union-find class representative (path of the class's first port) →
    /// action.
    actions: HashMap<usize, ActionId>,
    /// Per added automaton: source position of each transition, in the
    /// order the transitions are added (= network transition ids).
    spans: Vec<Vec<Option<Pos>>>,
}

impl<'m> Lowering<'m> {
    fn impl_of(&self, inst: &Instance) -> &'m ast::ComponentImpl {
        self.model
            .find_impl(&inst.impl_name.0, &inst.impl_name.1)
            .expect("instantiation verified the implementation exists")
    }

    fn type_of(&self, inst: &Instance) -> &'m ast::ComponentType {
        self.model.find_type(&inst.impl_name.0).expect("instantiation verified the type exists")
    }

    fn declare_vars(&mut self, root: &Instance) -> Result<(), LangError> {
        for inst in root.walk() {
            let ct = self.type_of(inst);
            for f in &ct.features {
                if let Some(ty) = f.data {
                    let name = inst.path.child(f.name.clone()).to_string();
                    self.declare_var(&name, ty, f.default)?;
                }
            }
            let ci = self.impl_of(inst);
            for sub in &ci.subcomponents {
                if let Subcomponent::Data { name, ty, init, .. } = sub {
                    let full = inst.path.child(name.clone()).to_string();
                    self.declare_var(&full, *ty, *init)?;
                }
            }
        }
        Ok(())
    }

    fn declare_var(
        &mut self,
        name: &str,
        ty: ast::DataType,
        init: Option<ast::Literal>,
    ) -> Result<VarId, LangError> {
        if self.vars.contains_key(name) {
            return Err(err(LangErrorKind::Duplicate(name.to_string())));
        }
        let vt = to_var_type(ty);
        let value = match init {
            Some(lit) => to_value(lit),
            None => vt.default_value(),
        };
        let id = self.builder.var(name.to_string(), vt, value);
        self.vars.insert(name.to_string(), (id, ty));
        Ok(id)
    }

    fn register_event_ports(&mut self, root: &Instance) -> Result<(), LangError> {
        for inst in root.walk() {
            let ct = self.type_of(inst);
            for f in &ct.features {
                if f.is_event() {
                    let name = inst.path.child(f.name.clone()).to_string();
                    let node = self.uf.add();
                    self.event_ports.insert(name, node);
                }
            }
        }
        Ok(())
    }

    /// Resolves a connection endpoint `q` (relative to `inst`) to the
    /// absolute port path, and whether it is an event port.
    fn resolve_port(&self, inst: &Instance, q: &QName) -> Result<(String, bool), LangError> {
        let abs = match q.segments() {
            [port] => inst.path.child(port.clone()),
            segs => {
                // Child-instance port: all but the last segment name a
                // descendant, the last the port.
                let mut path = inst.path.clone();
                for s in &segs[..segs.len() - 1] {
                    path = path.child(s.clone());
                }
                path.child(segs[segs.len() - 1].clone())
            }
        };
        let name = abs.to_string();
        if self.event_ports.contains_key(&name) {
            Ok((name, true))
        } else if self.vars.contains_key(&name) {
            Ok((name, false))
        } else {
            Err(err(LangErrorKind::Unknown(format!("port `{q}` (resolved `{name}`)"))))
        }
    }

    fn process_connections(&mut self, root: &Instance) -> Result<(), LangError> {
        for inst in root.walk() {
            let ci = self.impl_of(inst);
            for conn in &ci.connections {
                let (from, from_event) = self.resolve_port(inst, &conn.from)?;
                let (to, to_event) = self.resolve_port(inst, &conn.to)?;
                if from_event != to_event {
                    return Err(err(LangErrorKind::Invalid(format!(
                        "connection `{from}` -> `{to}` mixes event and data ports"
                    ))));
                }
                if from_event {
                    let a = self.event_ports[&from];
                    let b = self.event_ports[&to];
                    self.uf.union(a, b);
                } else {
                    // Data connection: identity flow into the target port.
                    let src = self.vars[&from].0;
                    let dst = self.vars[&to].0;
                    self.builder.flow(dst, Expr::var(src));
                }
            }
        }
        Ok(())
    }

    /// The synchronizing action of an event port (creates it on first use).
    fn action_for_port(&mut self, abs_port: &str) -> Result<ActionId, LangError> {
        let node = *self
            .event_ports
            .get(abs_port)
            .ok_or_else(|| err(LangErrorKind::Unknown(format!("event port `{abs_port}`"))))?;
        let rep = self.uf.find(node);
        if let Some(&a) = self.actions.get(&rep) {
            return Ok(a);
        }
        let a = self.builder.action(format!("evt:{abs_port}"));
        self.actions.insert(rep, a);
        Ok(a)
    }

    /// Resolves a data reference `q` relative to instance path `prefix`.
    fn resolve_var(&self, prefix: &QName, q: &QName) -> Result<VarId, LangError> {
        let mut path = prefix.clone();
        for s in q.segments() {
            path = path.child(s.clone());
        }
        let name = path.to_string();
        self.vars
            .get(&name)
            .map(|(v, _)| *v)
            .ok_or_else(|| err(LangErrorKind::Unknown(format!("`{q}` (resolved `{name}`)"))))
    }

    fn resolve_expr(&self, prefix: &QName, e: &ast::Expr) -> Result<Expr, LangError> {
        resolve_expr_with(e, &mut |q| self.resolve_var(prefix, q))
    }

    fn build_automata(&mut self, root: &Instance) -> Result<(), LangError> {
        for inst in root.walk() {
            let ci = self.impl_of(inst);
            if ci.modes.is_empty() {
                if !ci.transitions.is_empty() {
                    return Err(err(LangErrorKind::Invalid(format!(
                        "`{}` declares transitions but no modes",
                        inst.path
                    ))));
                }
                continue;
            }
            let mut ab = AutomatonBuilder::new(inst.path.to_string());
            let mut mode_ids = HashMap::new();
            let mut initial = None;
            for m in &ci.modes {
                let invariant = match &m.invariant {
                    Some(e) => self.resolve_expr(&inst.path, e)?,
                    None => Expr::TRUE,
                };
                let mut rates = Vec::new();
                for (q, r) in &m.derivatives {
                    rates.push((self.resolve_var(&inst.path, q)?, *r));
                }
                let id = ab.location_with(m.name.clone(), invariant, rates);
                if mode_ids.insert(m.name.clone(), id).is_some() {
                    return Err(err(LangErrorKind::Duplicate(format!(
                        "mode `{}` in `{}`",
                        m.name, inst.path
                    ))));
                }
                if m.initial {
                    if initial.is_some() {
                        return Err(err(LangErrorKind::Invalid(format!(
                            "`{}` has more than one initial mode",
                            inst.path
                        ))));
                    }
                    initial = Some(id);
                }
            }
            let initial = initial.ok_or_else(|| {
                err(LangErrorKind::Invalid(format!("`{}` has no initial mode", inst.path)))
            })?;
            ab.set_init(initial);

            let mut spans = Vec::with_capacity(ci.transitions.len());
            for t in &ci.transitions {
                let from = *mode_ids.get(&t.from).ok_or_else(|| {
                    err(LangErrorKind::Unknown(format!("mode `{}` in `{}`", t.from, inst.path)))
                })?;
                let to = *mode_ids.get(&t.to).ok_or_else(|| {
                    err(LangErrorKind::Unknown(format!("mode `{}` in `{}`", t.to, inst.path)))
                })?;
                let mut effects = Vec::new();
                for (q, e) in &t.effects {
                    effects.push(Effect::assign(
                        self.resolve_var(&inst.path, q)?,
                        self.resolve_expr(&inst.path, e)?,
                    ));
                }
                match &t.trigger {
                    Trigger::Rate(r) => {
                        if t.guard.is_some() {
                            return Err(err(LangErrorKind::Invalid(format!(
                                "transition in `{}` combines `rate` with `when`",
                                inst.path
                            ))));
                        }
                        if t.urgent {
                            return Err(err(LangErrorKind::Invalid(format!(
                                "transition in `{}` combines `rate` with `urgent`",
                                inst.path
                            ))));
                        }
                        ab.markovian(from, *r, effects, to);
                    }
                    Trigger::Internal => {
                        let guard = match &t.guard {
                            Some(g) => self.resolve_expr(&inst.path, g)?,
                            None => Expr::TRUE,
                        };
                        if t.urgent {
                            ab.guarded_urgent(from, ActionId::TAU, guard, effects, to);
                        } else {
                            ab.guarded(from, ActionId::TAU, guard, effects, to);
                        }
                    }
                    Trigger::Port(q) => {
                        let (abs, is_event) = self.resolve_port(inst, q)?;
                        if !is_event {
                            return Err(err(LangErrorKind::Invalid(format!(
                                "trigger `{q}` in `{}` is a data port",
                                inst.path
                            ))));
                        }
                        let action = self.action_for_port(&abs)?;
                        let guard = match &t.guard {
                            Some(g) => self.resolve_expr(&inst.path, g)?,
                            None => Expr::TRUE,
                        };
                        if t.urgent {
                            ab.guarded_urgent(from, action, guard, effects, to);
                        } else {
                            ab.guarded(from, action, guard, effects, to);
                        }
                    }
                }
                spans.push(Some(t.pos));
            }
            self.builder.add_automaton(ab);
            self.spans.push(spans);
        }
        Ok(())
    }

    fn process_flows(&mut self, root: &Instance) -> Result<(), LangError> {
        for inst in root.walk() {
            let ci = self.impl_of(inst);
            for f in &ci.flows {
                let target = self.resolve_var(&inst.path, &f.target)?;
                let expr = self.resolve_expr(&inst.path, &f.expr)?;
                self.builder.flow(target, expr);
            }
        }
        Ok(())
    }

    /// Model extension: weaves one error automaton per fault injection.
    fn weave_injections(&mut self, root: &Instance) -> Result<(), LangError> {
        for (n, inj) in self.model.injections.iter().enumerate() {
            let inst = root.find(&inj.target).ok_or_else(|| {
                err(LangErrorKind::Unknown(format!("injection target `{}`", inj.target)))
            })?;
            let em = self.model.find_error_model(&inj.error_model).ok_or_else(|| {
                err(LangErrorKind::Unknown(format!("error model `{}`", inj.error_model)))
            })?;
            let auto_name = format!("{}.error_{}{}", inst.path, em.name, disambiguate(n));
            // Implicit clock, reset on every error transition (Fig. 2).
            let clock_name = format!("{auto_name}.c");
            let clock = self.builder.var(clock_name.clone(), VarType::Clock, Value::Real(0.0));
            self.vars.insert(clock_name, (clock, ast::DataType::Clock));

            // Resolution inside the error model: `c` is the implicit
            // clock; anything else resolves relative to the target
            // instance (so guards may read nominal data).
            let target_path = inst.path.clone();
            let resolve = |this: &Self, q: &QName| -> Result<VarId, LangError> {
                if q.segments() == ["c"] {
                    Ok(clock)
                } else {
                    this.resolve_var(&target_path, q)
                }
            };

            let mut ab = AutomatonBuilder::new(auto_name);
            let mut state_ids = HashMap::new();
            let mut initial = None;
            for s in &em.states {
                let invariant = match &s.invariant {
                    Some(e) => resolve_expr_with(e, &mut |q| resolve(self, q))?,
                    None => Expr::TRUE,
                };
                let id = ab.location_with(s.name.clone(), invariant, []);
                if state_ids.insert(s.name.clone(), id).is_some() {
                    return Err(err(LangErrorKind::Duplicate(format!(
                        "error state `{}` in `{}`",
                        s.name, em.name
                    ))));
                }
                if s.initial {
                    if initial.is_some() {
                        return Err(err(LangErrorKind::Invalid(format!(
                            "error model `{}` has more than one initial state",
                            em.name
                        ))));
                    }
                    initial = Some(id);
                }
            }
            let initial = initial.ok_or_else(|| {
                err(LangErrorKind::Invalid(format!(
                    "error model `{}` has no initial state",
                    em.name
                )))
            })?;
            ab.set_init(initial);

            // Injection effects per target state.
            let mut effects_for: HashMap<&str, Vec<Effect>> = HashMap::new();
            for (state, var, value) in &inj.effects {
                if !em.states.iter().any(|s| &s.name == state) {
                    return Err(err(LangErrorKind::Unknown(format!(
                        "error state `{state}` in injection on `{}`",
                        inj.target
                    ))));
                }
                let target = self
                    .vars
                    .get(&var.to_string())
                    .map(|(v, _)| *v)
                    .ok_or_else(|| err(LangErrorKind::Unknown(format!("`{var}`"))))?;
                effects_for
                    .entry(state.as_str())
                    .or_default()
                    .push(Effect::assign(target, literal_expr(*value)));
            }

            let mut spans = Vec::with_capacity(em.transitions.len());
            for t in &em.transitions {
                let from = *state_ids.get(&t.from).ok_or_else(|| {
                    err(LangErrorKind::Unknown(format!("error state `{}`", t.from)))
                })?;
                let to = *state_ids.get(&t.to).ok_or_else(|| {
                    err(LangErrorKind::Unknown(format!("error state `{}`", t.to)))
                })?;
                let mut effects = vec![Effect::assign(clock, Expr::real(0.0))];
                if let Some(inj_effects) = effects_for.get(t.to.as_str()) {
                    effects.extend(inj_effects.iter().cloned());
                }
                match &t.trigger {
                    ast::ErrorTrigger::Rate(r) => {
                        ab.markovian(from, *r, effects, to);
                    }
                    ast::ErrorTrigger::When(g) => {
                        let guard = resolve_expr_with(g, &mut |q| resolve(self, q))?;
                        ab.guarded(from, ActionId::TAU, guard, effects, to);
                    }
                    ast::ErrorTrigger::Propagation(name) => {
                        let action = self.builder.action(format!("prop:{name}"));
                        ab.guarded(from, action, Expr::TRUE, effects, to);
                    }
                }
                spans.push(Some(t.pos));
            }
            self.builder.add_automaton(ab);
            self.spans.push(spans);
        }
        Ok(())
    }
}

fn disambiguate(n: usize) -> String {
    // Multiple injections may target the same instance with the same
    // model; suffix with the injection ordinal past the first.
    if n == 0 {
        String::new()
    } else {
        format!("_{n}")
    }
}

fn to_var_type(ty: ast::DataType) -> VarType {
    match ty {
        ast::DataType::Bool => VarType::Bool,
        ast::DataType::Int(None) => VarType::INT,
        ast::DataType::Int(Some((lo, hi))) => VarType::Int { lo, hi },
        ast::DataType::Real => VarType::Real,
        ast::DataType::Clock => VarType::Clock,
        ast::DataType::Continuous => VarType::Continuous,
    }
}

fn to_value(lit: ast::Literal) -> Value {
    match lit {
        ast::Literal::Bool(b) => Value::Bool(b),
        ast::Literal::Int(i) => Value::Int(i),
        ast::Literal::Real(r) => Value::Real(r),
    }
}

fn literal_expr(lit: ast::Literal) -> Expr {
    Expr::Const(to_value(lit))
}

fn resolve_expr_with(
    e: &ast::Expr,
    resolve: &mut dyn FnMut(&QName) -> Result<VarId, LangError>,
) -> Result<Expr, LangError> {
    Ok(match e {
        ast::Expr::Lit(l) => literal_expr(*l),
        ast::Expr::Name(q) => Expr::var(resolve(q)?),
        ast::Expr::Not(x) => resolve_expr_with(x, resolve)?.not(),
        ast::Expr::Neg(x) => resolve_expr_with(x, resolve)?.neg(),
        ast::Expr::Bin(op, a, b) => {
            let a = resolve_expr_with(a, resolve)?;
            let b = resolve_expr_with(b, resolve)?;
            let op = match op {
                ast::BinOp::Add => slim_automata::expr::BinOp::Add,
                ast::BinOp::Sub => slim_automata::expr::BinOp::Sub,
                ast::BinOp::Mul => slim_automata::expr::BinOp::Mul,
                ast::BinOp::Div => slim_automata::expr::BinOp::Div,
                ast::BinOp::Min => slim_automata::expr::BinOp::Min,
                ast::BinOp::Max => slim_automata::expr::BinOp::Max,
                ast::BinOp::And => slim_automata::expr::BinOp::And,
                ast::BinOp::Or => slim_automata::expr::BinOp::Or,
                ast::BinOp::Xor => slim_automata::expr::BinOp::Xor,
                ast::BinOp::Implies => slim_automata::expr::BinOp::Implies,
                ast::BinOp::Eq => slim_automata::expr::BinOp::Eq,
                ast::BinOp::Ne => slim_automata::expr::BinOp::Ne,
                ast::BinOp::Lt => slim_automata::expr::BinOp::Lt,
                ast::BinOp::Le => slim_automata::expr::BinOp::Le,
                ast::BinOp::Gt => slim_automata::expr::BinOp::Gt,
                ast::BinOp::Ge => slim_automata::expr::BinOp::Ge,
            };
            Expr::Bin(op, Box::new(a), Box::new(b))
        }
        ast::Expr::Ite(c, t, els) => Expr::ite(
            resolve_expr_with(c, resolve)?,
            resolve_expr_with(t, resolve)?,
            resolve_expr_with(els, resolve)?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str, ty: &str, im: &str) -> Result<Lowered, LangError> {
        let m = parse(src).unwrap();
        lower(&m, ty, im, "root")
    }

    #[test]
    fn lowers_simple_component() {
        let l = lower_src(
            r#"
            device GPS
              features
                fix: out data port bool := false;
            end GPS;
            device implementation GPS.Impl
              subcomponents
                c: data clock;
              modes
                acq: initial mode while c <= 120.0;
                active: mode;
              transitions
                acq -[ when c >= 10.0 then fix := true ]-> active;
            end GPS.Impl;
            "#,
            "GPS",
            "Impl",
        )
        .unwrap();
        let net = &l.network;
        assert_eq!(net.automata().len(), 1);
        assert_eq!(net.automata()[0].name, "root");
        assert!(net.var_id("root.fix").is_some());
        assert!(net.var_id("root.c").is_some());
        let s = net.initial_state().unwrap();
        let w = net.delay_window(&s).unwrap();
        assert_eq!(w.prefix_from_zero(), Some((120.0, true)));
        // The span side table aligns with the network and points at the
        // `trans` declaration's source line.
        assert_eq!(l.transition_spans.len(), 1);
        assert_eq!(l.transition_spans[0].len(), net.automata()[0].transitions.len());
        let pos = l.transition_spans[0][0].expect("slim transitions carry a span");
        assert_eq!(pos.line, 13);
    }

    #[test]
    fn span_table_covers_error_automata() {
        let l = lower_src(
            r#"
            device Unit
            end Unit;
            device implementation Unit.I
              modes
                on: initial mode;
                off: mode;
              transitions
                on -[ rate 0.5 ]-> off;
            end Unit.I;
            error model Fail
              states
                ok: initial state;
                dead: state;
              transitions
                ok -[ rate 0.01 ]-> dead;
            end Fail;
            fault injection on root using Fail
            end;
            "#,
            "Unit",
            "I",
        )
        .unwrap();
        let net = &l.network;
        assert_eq!(net.automata().len(), 2);
        assert_eq!(l.transition_spans.len(), 2);
        for (a, spans) in net.automata().iter().zip(&l.transition_spans) {
            assert_eq!(a.transitions.len(), spans.len(), "automaton {}", a.name);
            assert!(spans.iter().all(Option::is_some));
        }
    }

    #[test]
    fn event_connections_synchronize() {
        let l = lower_src(
            r#"
            device Sender
              features
                fire: out event port;
            end Sender;
            device implementation Sender.I
              modes
                a: initial mode;
                b: mode;
              transitions
                a -[ fire ]-> b;
            end Sender.I;
            device Receiver
              features
                hear: in event port;
            end Receiver;
            device implementation Receiver.I
              modes
                idle: initial mode;
                got: mode;
              transitions
                idle -[ hear ]-> got;
            end Receiver.I;
            system Top end Top;
            system implementation Top.I
              subcomponents
                s: device Sender.I;
                r: device Receiver.I;
              connections
                port s.fire -> r.hear;
            end Top.I;
            "#,
            "Top",
            "I",
        )
        .unwrap();
        let net = &l.network;
        assert_eq!(net.automata().len(), 2);
        let s0 = net.initial_state().unwrap();
        let cands = net.guarded_candidates(&s0).unwrap();
        assert_eq!(cands.len(), 1, "one synchronized global transition");
        assert_eq!(cands[0].transition.parts.len(), 2, "both components join");
        let s1 = net.apply(&s0, &cands[0].transition).unwrap();
        assert_eq!(s1.locs.iter().map(|l| l.0).collect::<Vec<_>>(), vec![1, 1]);
    }

    #[test]
    fn data_connections_become_flows() {
        let l = lower_src(
            r#"
            device Source
              features
                v: out data port int := 3;
            end Source;
            device implementation Source.I end Source.I;
            device Sink
              features
                w: in data port int := 0;
            end Sink;
            device implementation Sink.I end Sink.I;
            system Top end Top;
            system implementation Top.I
              subcomponents
                src: device Source.I;
                dst: device Sink.I;
              connections
                port src.v -> dst.w;
            end Top.I;
            "#,
            "Top",
            "I",
        );
        // No automata at all — builder requires ≥1; expect a lowering error
        // complaining about the empty network.
        assert!(l.is_err());
    }

    #[test]
    fn data_connection_with_behavior() {
        let l = lower_src(
            r#"
            device Source
              features
                v: out data port int := 3;
            end Source;
            device implementation Source.I
              modes
                run: initial mode;
              transitions
                run -[ then v := v + 1 ]-> run;
            end Source.I;
            device Sink
              features
                w: in data port int := 0;
            end Sink;
            device implementation Sink.I end Sink.I;
            system Top end Top;
            system implementation Top.I
              subcomponents
                src: device Source.I;
                dst: device Sink.I;
              connections
                port src.v -> dst.w;
            end Top.I;
            "#,
            "Top",
            "I",
        )
        .unwrap();
        let net = &l.network;
        let s0 = net.initial_state().unwrap();
        let w = net.var_id("root.dst.w").unwrap();
        assert_eq!(s0.nu.get(w).unwrap(), Value::Int(3), "flow established at init");
        let cands = net.guarded_candidates(&s0).unwrap();
        let s1 = net.apply(&s0, &cands[0].transition).unwrap();
        assert_eq!(s1.nu.get(w).unwrap(), Value::Int(4), "flow re-established after step");
    }

    #[test]
    fn flows_section_lowered() {
        let l = lower_src(
            r#"
            device Batt
              features
                low: out data port bool := false;
            end Batt;
            device implementation Batt.I
              subcomponents
                energy: data continuous := 10.0;
              flows
                low := energy < 5.0;
              modes
                on: initial mode while energy >= 0.0 der energy = -1.0;
            end Batt.I;
            "#,
            "Batt",
            "I",
        )
        .unwrap();
        let net = &l.network;
        let s0 = net.initial_state().unwrap();
        let low = net.var_id("root.low").unwrap();
        assert_eq!(s0.nu.get(low).unwrap(), Value::Bool(false));
        let s1 = net.advance(&s0, 6.0).unwrap();
        assert_eq!(s1.nu.get(low).unwrap(), Value::Bool(true), "flow tracks dynamics");
    }

    #[test]
    fn error_model_weaving() {
        let l = lower_src(
            r#"
            device GPS
              features
                fix_ok: out data port bool := true;
            end GPS;
            device implementation GPS.I
              modes
                on: initial mode;
            end GPS.I;
            error model Fail
              states
                ok: initial state;
                dead: state;
              transitions
                ok -[ rate 0.5 ]-> dead;
            end Fail;
            fault injection on root using Fail
              effect dead: root.fix_ok := false;
            end;
            "#,
            "GPS",
            "I",
        )
        .unwrap();
        let net = &l.network;
        assert_eq!(net.automata().len(), 2);
        assert!(net.proc_id("root.error_Fail").is_some());
        assert!(net.var_id("root.error_Fail.c").is_some());
        let s0 = net.initial_state().unwrap();
        let ms = net.markovian_candidates(&s0);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].rate, 0.5);
        let s1 = net.apply(&s0, &ms[0].transition).unwrap();
        let fix = net.var_id("root.fix_ok").unwrap();
        assert_eq!(s1.nu.get(fix).unwrap(), Value::Bool(false), "injection applied");
    }

    #[test]
    fn error_model_timed_recovery_window() {
        let l = lower_src(
            r#"
            device D end D;
            device implementation D.I
              modes
                on: initial mode;
            end D.I;
            error model Trans
              states
                ok: initial state;
                transient: state while c <= 300.0;
              transitions
                ok -[ rate 0.1 ]-> transient;
                transient -[ when c >= 200.0 and c <= 300.0 ]-> ok;
            end Trans;
            fault injection on root using Trans end;
            "#,
            "D",
            "I",
        )
        .unwrap();
        let net = &l.network;
        let s0 = net.initial_state().unwrap();
        let ms = net.markovian_candidates(&s0);
        // Enter the transient state; the clock reset means the repair
        // window is exactly [200, 300] relative to entry.
        let s1 = net.apply(&s0, &ms[0].transition).unwrap();
        let cands = net.guarded_candidates(&s1).unwrap();
        assert_eq!(cands.len(), 1);
        assert!(cands[0].window.contains(200.0) && cands[0].window.contains(300.0));
        assert!(!cands[0].window.contains(199.9));
        let w = net.delay_window(&s1).unwrap();
        assert_eq!(w.prefix_from_zero(), Some((300.0, true)));
    }

    #[test]
    fn propagations_synchronize_error_models() {
        let l = lower_src(
            r#"
            device D end D;
            device implementation D.I
              modes
                on: initial mode;
            end D.I;
            error model A
              states
                ok: initial state;
                bad: state;
              transitions
                ok -[ blow ]-> bad;
            end A;
            error model B
              states
                ok: initial state;
                bad: state;
              transitions
                ok -[ blow ]-> bad;
            end B;
            fault injection on root using A end;
            fault injection on root using B end;
            "#,
            "D",
            "I",
        )
        .unwrap();
        let net = &l.network;
        let s0 = net.initial_state().unwrap();
        let cands = net.guarded_candidates(&s0).unwrap();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].transition.parts.len(), 2, "propagation synchronizes");
    }

    #[test]
    fn unknown_names_reported() {
        let r = lower_src(
            r#"
            device D end D;
            device implementation D.I
              modes
                on: initial mode;
              transitions
                on -[ when nosuch > 0 ]-> on;
            end D.I;
            "#,
            "D",
            "I",
        );
        assert!(matches!(r.unwrap_err().kind, LangErrorKind::Unknown(_)));
    }

    #[test]
    fn no_initial_mode_rejected() {
        let r = lower_src(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: mode;
            end D.I;
            "#,
            "D",
            "I",
        );
        assert!(
            matches!(r.unwrap_err().kind, LangErrorKind::Invalid(msg) if msg.contains("initial"))
        );
    }

    #[test]
    fn rate_with_guard_rejected() {
        let r = lower_src(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: initial mode;
              transitions
                a -[ rate 1.0 when true ]-> a;
            end D.I;
            "#,
            "D",
            "I",
        );
        assert!(matches!(r.unwrap_err().kind, LangErrorKind::Invalid(msg) if msg.contains("rate")));
    }

    #[test]
    fn injection_unknown_state_rejected() {
        let r = lower_src(
            r#"
            device D
              features
                v: out data port bool := true;
            end D;
            device implementation D.I
              modes
                on: initial mode;
            end D.I;
            error model E
              states
                ok: initial state;
              transitions
            end E;
            fault injection on root using E
              effect nosuch: root.v := false;
            end;
            "#,
            "D",
            "I",
        );
        assert!(matches!(r.unwrap_err().kind, LangErrorKind::Unknown(_)));
    }

    #[test]
    fn lowering_error_from_validation() {
        // A flow into an effect-written variable is caught by network
        // validation and surfaced as a Lowering error.
        let r = lower_src(
            r#"
            device D
              features
                v: out data port int := 0;
            end D;
            device implementation D.I
              flows
                v := 1;
              modes
                a: initial mode;
              transitions
                a -[ then v := 2 ]-> a;
            end D.I;
            "#,
            "D",
            "I",
        );
        assert!(matches!(r.unwrap_err().kind, LangErrorKind::Lowering(_)));
    }
}
