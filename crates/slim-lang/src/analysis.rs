//! Model-level static analysis: non-fatal diagnostics about a parsed
//! model, before instantiation — the kind of validation the COMPASS
//! front-end performs when loading a specification (§II-F).
//!
//! Every finding is a [`slim_lint::Diagnostic`] carrying a stable `S0xx`
//! lint code and the source position of the offending declaration, so the
//! CLI can render `file:line:col` excerpts and machine-readable output.

use crate::ast::{Model, Subcomponent, Trigger};
use crate::token::Pos;
use slim_lint::{Code, Diagnostic};
use std::collections::HashSet;

pub use slim_lint::{Severity, Span};

fn at(code: Code, message: String, pos: Pos) -> Diagnostic {
    Diagnostic::new(code, message).at(pos.line, pos.col)
}

impl Subcomponent {
    /// Source position of the declaration.
    pub fn pos(&self) -> Pos {
        match self {
            Subcomponent::Data { pos, .. } | Subcomponent::Instance { pos, .. } => *pos,
        }
    }
}

/// Analyzes a parsed model, returning diagnostics (empty = clean).
pub fn analyze_model(model: &Model) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // S001: duplicate declarations.
    let mut seen = HashSet::new();
    for t in &model.types {
        if !seen.insert(("type", t.name.clone())) {
            out.push(at(
                Code::DuplicateDeclaration,
                format!("component type `{}` declared twice", t.name),
                t.pos,
            ));
        }
    }
    let mut seen_impl = HashSet::new();
    for i in &model.impls {
        if !seen_impl.insert(i.name.clone()) {
            out.push(at(
                Code::DuplicateDeclaration,
                format!("implementation `{}.{}` declared twice", i.name.0, i.name.1),
                i.pos,
            ));
        }
    }
    let mut seen_em = HashSet::new();
    for e in &model.error_models {
        if !seen_em.insert(e.name.clone()) {
            out.push(at(
                Code::DuplicateDeclaration,
                format!("error model `{}` declared twice", e.name),
                e.pos,
            ));
        }
    }

    // S002/S003: implementations without a matching type, and vice versa.
    let type_names: HashSet<&str> = model.types.iter().map(|t| t.name.as_str()).collect();
    for i in &model.impls {
        if !type_names.contains(i.name.0.as_str()) {
            out.push(at(
                Code::ImplWithoutType,
                format!(
                    "implementation `{}.{}` has no component type `{}`",
                    i.name.0, i.name.1, i.name.0
                ),
                i.pos,
            ));
        }
    }
    let implemented: HashSet<&str> = model.impls.iter().map(|i| i.name.0.as_str()).collect();
    for t in &model.types {
        if !implemented.contains(t.name.as_str()) {
            out.push(
                at(
                    Code::TypeWithoutImpl,
                    format!("component type `{}` has no implementation", t.name),
                    t.pos,
                )
                .with_help("add a matching `implementation` block or remove the type"),
            );
        }
    }

    // Per-implementation structural checks.
    for i in &model.impls {
        let impl_name = format!("{}.{}", i.name.0, i.name.1);
        // S004: subcomponent name clashes with a feature of the type.
        if let Some(t) = model.find_type(&i.name.0) {
            let feature_names: HashSet<&str> = t.features.iter().map(|f| f.name.as_str()).collect();
            for s in &i.subcomponents {
                if feature_names.contains(s.name()) {
                    out.push(at(
                        Code::SubcomponentShadowsFeature,
                        format!(
                            "`{impl_name}`: subcomponent `{}` shadows a feature of `{}`",
                            s.name(),
                            t.name
                        ),
                        s.pos(),
                    ));
                }
            }
        }
        // S005: referenced child implementations exist.
        for s in &i.subcomponents {
            if let Subcomponent::Instance { name, impl_ref, pos, .. } = s {
                if model.find_impl(&impl_ref.0, &impl_ref.1).is_none() {
                    out.push(at(
                        Code::UnknownImplReference,
                        format!(
                            "`{impl_name}`: subcomponent `{name}` references unknown `{}.{}`",
                            impl_ref.0, impl_ref.1
                        ),
                        *pos,
                    ));
                }
            }
        }
        // S006/S007: mode structure.
        let initials = i.modes.iter().filter(|m| m.initial).count();
        if !i.modes.is_empty() && initials == 0 {
            out.push(at(Code::InitialModeCount, format!("`{impl_name}`: no initial mode"), i.pos));
        }
        if initials > 1 {
            out.push(at(
                Code::InitialModeCount,
                format!("`{impl_name}`: {initials} initial modes"),
                i.pos,
            ));
        }
        if i.modes.is_empty() && !i.transitions.is_empty() {
            out.push(at(
                Code::TransitionsWithoutModes,
                format!("`{impl_name}`: transitions without modes"),
                i.transitions[0].pos,
            ));
        }
        // S008/S009/S010: transitions reference existing modes; rates are
        // positive; every non-initial mode is targeted.
        let mode_names: HashSet<&str> = i.modes.iter().map(|m| m.name.as_str()).collect();
        let mut targeted: HashSet<&str> = HashSet::new();
        for t in &i.transitions {
            for end in [&t.from, &t.to] {
                if !mode_names.contains(end.as_str()) {
                    out.push(at(
                        Code::UnknownMode,
                        format!("`{impl_name}`: unknown mode `{end}`"),
                        t.pos,
                    ));
                }
            }
            targeted.insert(t.to.as_str());
            if let Trigger::Rate(r) = t.trigger {
                if r <= 0.0 {
                    out.push(at(
                        Code::NonPositiveRate,
                        format!("`{impl_name}`: non-positive rate {r}"),
                        t.pos,
                    ));
                }
            }
        }
        for m in &i.modes {
            if !m.initial && !targeted.contains(m.name.as_str()) {
                out.push(
                    at(
                        Code::UnreachableMode,
                        format!(
                            "`{impl_name}`: mode `{}` is unreachable (no transition targets it)",
                            m.name
                        ),
                        m.pos,
                    )
                    .with_help("add a transition targeting it or remove the mode"),
                );
            }
        }
    }

    // S011/S012/S013: error models — initial states, referenced states,
    // reachability.
    for e in &model.error_models {
        let initials = e.states.iter().filter(|s| s.initial).count();
        if initials != 1 {
            out.push(at(
                Code::ErrorModelInitialStates,
                format!("error model `{}`: {} initial states (need exactly 1)", e.name, initials),
                e.pos,
            ));
        }
        let state_names: HashSet<&str> = e.states.iter().map(|s| s.name.as_str()).collect();
        let mut targeted: HashSet<&str> = HashSet::new();
        for t in &e.transitions {
            for end in [&t.from, &t.to] {
                if !state_names.contains(end.as_str()) {
                    out.push(at(
                        Code::UnknownErrorState,
                        format!("error model `{}`: unknown state `{end}`", e.name),
                        t.pos,
                    ));
                }
            }
            targeted.insert(t.to.as_str());
        }
        for s in &e.states {
            if !s.initial && !targeted.contains(s.name.as_str()) {
                out.push(at(
                    Code::UnreachableErrorState,
                    format!("error model `{}`: state `{}` is unreachable", e.name, s.name),
                    s.pos,
                ));
            }
        }
    }

    // S014/S015: injections reference existing error models and states.
    let em_names: HashSet<&str> = model.error_models.iter().map(|e| e.name.as_str()).collect();
    for inj in &model.injections {
        if !em_names.contains(inj.error_model.as_str()) {
            out.push(at(
                Code::UnknownErrorModel,
                format!("injection on `{}`: unknown error model `{}`", inj.target, inj.error_model),
                inj.pos,
            ));
        } else if let Some(em) = model.find_error_model(&inj.error_model) {
            for (state, var, _) in &inj.effects {
                if !em.states.iter().any(|s| &s.name == state) {
                    out.push(at(
                        Code::UnknownInjectionState,
                        format!(
                            "injection on `{}`: error model `{}` has no state `{state}` (effect on `{var}`)",
                            inj.target, inj.error_model
                        ),
                        inj.pos,
                    ));
                }
            }
        }
    }

    // S016: unused error models.
    let used: HashSet<&str> = model.injections.iter().map(|i| i.error_model.as_str()).collect();
    for e in &model.error_models {
        if !used.contains(e.name.as_str()) {
            out.push(
                at(
                    Code::UnusedErrorModel,
                    format!("error model `{}` is never bound by a fault injection", e.name),
                    e.pos,
                )
                .with_help("bind it with a `fault injection` declaration or remove it"),
            );
        }
    }

    out
}

/// True if the diagnostics contain no error-severity finding.
pub fn is_lowerable(diags: &[Diagnostic]) -> bool {
    !slim_lint::has_errors(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diags(src: &str) -> Vec<Diagnostic> {
        analyze_model(&parse(src).unwrap())
    }

    fn errors(ds: &[Diagnostic]) -> usize {
        ds.iter().filter(|d| d.is_error()).count()
    }

    #[test]
    fn clean_model_is_clean() {
        let ds = diags(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: initial mode;
                b: mode;
              transitions
                a -[ ]-> b;
            end D.I;
            "#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn missing_type_and_unimplemented_type() {
        let ds = diags("device implementation D.I end D.I; device E end E;");
        assert_eq!(errors(&ds), 1, "{ds:?}");
        assert!(ds.iter().any(|d| d.message.contains("no component type")));
        assert!(ds.iter().any(|d| d.message.contains("no implementation")));
        assert!(ds.iter().any(|d| d.code == Code::ImplWithoutType));
        assert!(ds.iter().any(|d| d.code == Code::TypeWithoutImpl));
    }

    #[test]
    fn unreachable_mode_warned() {
        let ds = diags(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: initial mode;
                orphan: mode;
            end D.I;
            "#,
        );
        assert_eq!(errors(&ds), 0);
        assert!(ds.iter().any(|d| d.message.contains("unreachable")));
        assert!(is_lowerable(&ds));
    }

    #[test]
    fn unknown_mode_reference_is_error() {
        let ds = diags(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: initial mode;
              transitions
                a -[ ]-> nonexistent;
            end D.I;
            "#,
        );
        assert!(errors(&ds) >= 1);
        assert!(!is_lowerable(&ds));
        assert!(ds.iter().any(|d| d.code == Code::UnknownMode));
    }

    #[test]
    fn initial_mode_counting() {
        let none = diags("device D end D; device implementation D.I modes a: mode; end D.I;");
        assert!(none.iter().any(|d| d.message.contains("no initial mode")));
        let two = diags(
            "device D end D; device implementation D.I modes a: initial mode; b: initial mode; end D.I;",
        );
        assert!(two.iter().any(|d| d.message.contains("2 initial modes")));
        assert!(two.iter().any(|d| d.code == Code::InitialModeCount));
    }

    #[test]
    fn error_model_checks() {
        let ds = diags(
            r#"
            error model E
              states
                ok: initial state;
                lost: state;
              transitions
                ok -[ rate 1.0 ]-> missing;
            end E;
            "#,
        );
        assert!(ds.iter().any(|d| d.message.contains("unknown state `missing`")));
        assert!(ds.iter().any(|d| d.message.contains("`lost` is unreachable")));
        assert!(ds.iter().any(|d| d.message.contains("never bound")));
    }

    #[test]
    fn injection_checks() {
        let ds = diags(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: initial mode;
            end D.I;
            error model E
              states
                ok: initial state;
              transitions
            end E;
            fault injection on root using Nope end;
            fault injection on root using E
              effect ghost: root.x := true;
            end;
            "#,
        );
        assert!(ds.iter().any(|d| d.message.contains("unknown error model `Nope`")));
        assert!(ds.iter().any(|d| d.message.contains("no state `ghost`")));
        assert!(ds.iter().any(|d| d.code == Code::UnknownErrorModel));
        assert!(ds.iter().any(|d| d.code == Code::UnknownInjectionState));
    }

    #[test]
    fn subcomponent_shadowing_feature() {
        let ds = diags(
            r#"
            device D
              features
                x: out data port bool;
            end D;
            device implementation D.I
              subcomponents
                x: data bool;
              modes
                a: initial mode;
            end D.I;
            "#,
        );
        assert!(ds.iter().any(|d| d.message.contains("shadows a feature")));
    }

    #[test]
    fn non_positive_rate_flagged() {
        let ds = diags(
            r#"
            device D end D;
            device implementation D.I
              modes
                a: initial mode;
              transitions
                a -[ rate -2.0 ]-> a;
            end D.I;
            "#,
        );
        assert!(ds.iter().any(|d| d.message.contains("non-positive rate")));
        assert!(ds.iter().any(|d| d.code == Code::NonPositiveRate));
    }

    #[test]
    fn diagnostics_carry_spans() {
        // `orphan` is declared on line 6, column 17 of this snippet.
        let src = "\
device D end D;
device implementation D.I
  modes
    a: initial mode;
    orphan: mode;
end D.I;
";
        let ds = diags(src);
        let d = ds.iter().find(|d| d.code == Code::UnreachableMode).unwrap();
        let span = d.span.expect("unreachable-mode diagnostic has a span");
        assert_eq!(span.line, 5, "{d:?}");
        assert_eq!(span.col, 5, "{d:?}");
    }
}
