//! Recursive-descent parser for the SLIM subset.

use crate::ast::*;
use crate::error::{LangError, LangErrorKind};
use crate::lexer::lex;
use crate::token::{Keyword, Pos, Token, TokenKind};

/// Parses a complete SLIM source file.
///
/// # Errors
/// [`LangError`] with position on the first syntax error.
///
/// # Examples
///
/// ```
/// let model = slim_lang::parser::parse(r#"
///     device GPS
///       features
///         fix: out data port bool := false;
///     end GPS;
/// "#)?;
/// assert_eq!(model.types.len(), 1);
/// # Ok::<(), slim_lang::error::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<Model, LangError> {
    let tokens = lex(src)?;
    Parser { tokens, at: 0 }.model()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at.min(self.tokens.len() - 1)].clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn error(&self, expected: impl Into<String>) -> LangError {
        LangError {
            kind: LangErrorKind::Expected {
                expected: expected.into(),
                found: self.peek_kind().to_string(),
            },
            pos: self.pos(),
        }
    }

    /// Keywords that may double as identifiers (contextual keywords):
    /// they only act as keywords in specific structural positions.
    fn soft_ident(kind: &TokenKind) -> Option<&str> {
        match kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            TokenKind::Keyword(
                kw @ (Keyword::On
                | Keyword::Using
                | Keyword::Effect
                | Keyword::Model
                | Keyword::State
                | Keyword::States),
            ) => Some(kw.as_str()),
            _ => None,
        }
    }

    fn peek_ident_like(&self) -> bool {
        Self::soft_ident(self.peek_kind()).is_some()
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: TokenKind) -> Result<(), LangError> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            Err(self.error(kind.to_string()))
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat_kind(&TokenKind::Keyword(kw))
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), LangError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("keyword `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match Self::soft_ident(self.peek_kind()).map(str::to_string) {
            Some(s) => {
                self.bump();
                Ok(s)
            }
            None => Err(self.error("identifier")),
        }
    }

    fn qname(&mut self) -> Result<QName, LangError> {
        let mut segs = vec![self.ident()?];
        while self.eat_kind(&TokenKind::Dot) {
            segs.push(self.ident()?);
        }
        Ok(QName(segs))
    }

    fn number(&mut self) -> Result<f64, LangError> {
        let neg = self.eat_kind(&TokenKind::Minus);
        let v = match *self.peek_kind() {
            TokenKind::Int(i) => {
                self.bump();
                i as f64
            }
            TokenKind::Real(r) => {
                self.bump();
                r
            }
            _ => return Err(self.error("number")),
        };
        Ok(if neg { -v } else { v })
    }

    fn literal(&mut self) -> Result<Literal, LangError> {
        match *self.peek_kind() {
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Literal::Bool(true))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Literal::Bool(false))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(Literal::Int(i))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Literal::Real(r))
            }
            TokenKind::Minus => {
                self.bump();
                match *self.peek_kind() {
                    TokenKind::Int(i) => {
                        self.bump();
                        Ok(Literal::Int(-i))
                    }
                    TokenKind::Real(r) => {
                        self.bump();
                        Ok(Literal::Real(-r))
                    }
                    _ => Err(self.error("number after `-`")),
                }
            }
            _ => Err(self.error("literal")),
        }
    }

    fn category(&mut self) -> Option<Category> {
        let cat = match self.peek_kind() {
            TokenKind::Keyword(Keyword::System) => Category::System,
            TokenKind::Keyword(Keyword::Device) => Category::Device,
            TokenKind::Keyword(Keyword::Process) => Category::Process,
            TokenKind::Keyword(Keyword::Processor) => Category::Processor,
            TokenKind::Keyword(Keyword::Bus) => Category::Bus,
            TokenKind::Keyword(Keyword::Thread) => Category::Thread,
            TokenKind::Keyword(Keyword::Memory) => Category::Memory,
            TokenKind::Keyword(Keyword::Abstract) => Category::Abstract,
            _ => return None,
        };
        self.bump();
        Some(cat)
    }

    fn model(mut self) -> Result<Model, LangError> {
        let mut model = Model::default();
        loop {
            if self.eat_kind(&TokenKind::Eof) || matches!(self.peek_kind(), TokenKind::Eof) {
                return Ok(model);
            }
            if let Some(cat) = self.category() {
                if self.eat_kw(Keyword::Implementation) {
                    model.impls.push(self.component_impl(cat)?);
                } else {
                    model.types.push(self.component_type(cat)?);
                }
            } else if self.eat_kw(Keyword::Error) {
                self.expect_kw(Keyword::Model)?;
                model.error_models.push(self.error_model()?);
            } else if self.eat_kw(Keyword::Fault) {
                self.expect_kw(Keyword::Injection)?;
                model.injections.push(self.fault_injection()?);
            } else {
                return Err(self.error("component category, `error model` or `fault injection`"));
            }
        }
    }

    fn component_type(&mut self, category: Category) -> Result<ComponentType, LangError> {
        let pos = self.pos();
        let name = self.ident()?;
        let mut features = Vec::new();
        if self.eat_kw(Keyword::Features) {
            while !matches!(self.peek_kind(), TokenKind::Keyword(Keyword::End)) {
                features.push(self.feature()?);
            }
        }
        self.expect_kw(Keyword::End)?;
        let ended = self.ident()?;
        if ended != name {
            return Err(LangError {
                kind: LangErrorKind::EndMismatch { declared: name, ended },
                pos: self.pos(),
            });
        }
        self.expect_kind(TokenKind::Semi)?;
        Ok(ComponentType { category, name, features, pos })
    }

    fn feature(&mut self) -> Result<Feature, LangError> {
        let name = self.ident()?;
        self.expect_kind(TokenKind::Colon)?;
        let direction = if self.eat_kw(Keyword::In) {
            Direction::In
        } else if self.eat_kw(Keyword::Out) {
            Direction::Out
        } else {
            return Err(self.error("`in` or `out`"));
        };
        let feature = if self.eat_kw(Keyword::Event) {
            self.expect_kw(Keyword::Port)?;
            Feature { name, direction, data: None, default: None }
        } else if self.eat_kw(Keyword::Data) {
            self.expect_kw(Keyword::Port)?;
            let ty = self.data_type()?;
            let default =
                if self.eat_kind(&TokenKind::Assign) { Some(self.literal()?) } else { None };
            Feature { name, direction, data: Some(ty), default }
        } else {
            return Err(self.error("`event port` or `data port`"));
        };
        self.expect_kind(TokenKind::Semi)?;
        Ok(feature)
    }

    fn data_type(&mut self) -> Result<DataType, LangError> {
        if self.eat_kw(Keyword::Bool) {
            Ok(DataType::Bool)
        } else if self.eat_kw(Keyword::Int) {
            if self.eat_kind(&TokenKind::LBracket) {
                let lo = self.number()? as i64;
                self.expect_kind(TokenKind::DotDot)?;
                let hi = self.number()? as i64;
                self.expect_kind(TokenKind::RBracket)?;
                Ok(DataType::Int(Some((lo, hi))))
            } else {
                Ok(DataType::Int(None))
            }
        } else if self.eat_kw(Keyword::Real) {
            Ok(DataType::Real)
        } else if self.eat_kw(Keyword::Clock) {
            Ok(DataType::Clock)
        } else if self.eat_kw(Keyword::Continuous) {
            Ok(DataType::Continuous)
        } else {
            Err(self.error("data type"))
        }
    }

    fn component_impl(&mut self, category: Category) -> Result<ComponentImpl, LangError> {
        let pos = self.pos();
        let ty = self.ident()?;
        self.expect_kind(TokenKind::Dot)?;
        let im = self.ident()?;
        let mut ci = ComponentImpl {
            category,
            name: (ty.clone(), im.clone()),
            subcomponents: vec![],
            connections: vec![],
            flows: vec![],
            modes: vec![],
            transitions: vec![],
            pos,
        };
        // Sections may appear in any order (and repeat, accumulating).
        loop {
            if self.eat_kw(Keyword::Subcomponents) {
                while self.peek_ident_like() {
                    ci.subcomponents.push(self.subcomponent()?);
                }
            } else if self.eat_kw(Keyword::Connections) {
                while matches!(self.peek_kind(), TokenKind::Keyword(Keyword::Port)) {
                    self.bump();
                    let from = self.qname()?;
                    self.expect_kind(TokenKind::Arrow)?;
                    let to = self.qname()?;
                    self.expect_kind(TokenKind::Semi)?;
                    ci.connections.push(Connection { from, to });
                }
            } else if self.eat_kw(Keyword::Flows) {
                while self.peek_ident_like() {
                    let target = self.qname()?;
                    self.expect_kind(TokenKind::Assign)?;
                    let expr = self.expr()?;
                    self.expect_kind(TokenKind::Semi)?;
                    ci.flows.push(FlowDef { target, expr });
                }
            } else if self.eat_kw(Keyword::Modes) {
                while self.peek_ident_like() {
                    ci.modes.push(self.mode()?);
                }
            } else if self.eat_kw(Keyword::Transitions) {
                while self.peek_ident_like() {
                    ci.transitions.push(self.transition()?);
                }
            } else {
                break;
            }
        }
        self.expect_kw(Keyword::End)?;
        let ty2 = self.ident()?;
        self.expect_kind(TokenKind::Dot)?;
        let im2 = self.ident()?;
        if ty2 != ty || im2 != im {
            return Err(LangError {
                kind: LangErrorKind::EndMismatch {
                    declared: format!("{ty}.{im}"),
                    ended: format!("{ty2}.{im2}"),
                },
                pos: self.pos(),
            });
        }
        self.expect_kind(TokenKind::Semi)?;
        Ok(ci)
    }

    fn subcomponent(&mut self) -> Result<Subcomponent, LangError> {
        let pos = self.pos();
        let name = self.ident()?;
        self.expect_kind(TokenKind::Colon)?;
        if self.eat_kw(Keyword::Data) {
            let ty = self.data_type()?;
            let init = if self.eat_kind(&TokenKind::Assign) { Some(self.literal()?) } else { None };
            self.expect_kind(TokenKind::Semi)?;
            Ok(Subcomponent::Data { name, ty, init, pos })
        } else if let Some(category) = self.category() {
            let ty = self.ident()?;
            self.expect_kind(TokenKind::Dot)?;
            let im = self.ident()?;
            self.expect_kind(TokenKind::Semi)?;
            Ok(Subcomponent::Instance { name, category, impl_ref: (ty, im), pos })
        } else {
            Err(self.error("`data` or a component category"))
        }
    }

    fn mode(&mut self) -> Result<ModeDecl, LangError> {
        let pos = self.pos();
        let name = self.ident()?;
        self.expect_kind(TokenKind::Colon)?;
        let initial = self.eat_kw(Keyword::Initial);
        self.expect_kw(Keyword::Mode)?;
        let invariant = if self.eat_kw(Keyword::While) { Some(self.expr()?) } else { None };
        let mut derivatives = Vec::new();
        while self.eat_kw(Keyword::Der) {
            let var = self.qname()?;
            self.expect_kind(TokenKind::Eq)?;
            let rate = self.number()?;
            derivatives.push((var, rate));
        }
        self.expect_kind(TokenKind::Semi)?;
        Ok(ModeDecl { name, initial, invariant, derivatives, pos })
    }

    fn transition(&mut self) -> Result<TransitionDecl, LangError> {
        let pos = self.pos();
        let from = self.ident()?;
        self.expect_kind(TokenKind::TransOpen)?;
        let urgent = self.eat_kw(Keyword::Urgent);
        let trigger = if self.eat_kw(Keyword::Rate) {
            Trigger::Rate(self.number()?)
        } else if self.peek_ident_like() {
            Trigger::Port(self.qname()?)
        } else {
            Trigger::Internal
        };
        let guard = if self.eat_kw(Keyword::When) { Some(self.expr()?) } else { None };
        let mut effects = Vec::new();
        if self.eat_kw(Keyword::Then) {
            loop {
                let target = self.qname()?;
                self.expect_kind(TokenKind::Assign)?;
                let expr = self.expr()?;
                effects.push((target, expr));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kind(TokenKind::TransClose)?;
        let to = self.ident()?;
        self.expect_kind(TokenKind::Semi)?;
        Ok(TransitionDecl { from, urgent, trigger, guard, effects, to, pos })
    }

    fn error_model(&mut self) -> Result<ErrorModel, LangError> {
        let pos = self.pos();
        let name = self.ident()?;
        self.expect_kw(Keyword::States)?;
        let mut states = Vec::new();
        while self.peek_ident_like() {
            let spos = self.pos();
            let sname = self.ident()?;
            self.expect_kind(TokenKind::Colon)?;
            let initial = self.eat_kw(Keyword::Initial);
            self.expect_kw(Keyword::State)?;
            let invariant = if self.eat_kw(Keyword::While) { Some(self.expr()?) } else { None };
            self.expect_kind(TokenKind::Semi)?;
            states.push(ErrorState { name: sname, initial, invariant, pos: spos });
        }
        self.expect_kw(Keyword::Transitions)?;
        let mut transitions = Vec::new();
        while self.peek_ident_like() {
            let tpos = self.pos();
            let from = self.ident()?;
            self.expect_kind(TokenKind::TransOpen)?;
            let trigger = if self.eat_kw(Keyword::Rate) {
                ErrorTrigger::Rate(self.number()?)
            } else if self.eat_kw(Keyword::When) {
                ErrorTrigger::When(self.expr()?)
            } else if self.peek_ident_like() {
                ErrorTrigger::Propagation(self.ident()?)
            } else {
                return Err(self.error("`rate`, `when` or a propagation name"));
            };
            self.expect_kind(TokenKind::TransClose)?;
            let to = self.ident()?;
            self.expect_kind(TokenKind::Semi)?;
            transitions.push(ErrorTransition { from, trigger, to, pos: tpos });
        }
        self.expect_kw(Keyword::End)?;
        let ended = self.ident()?;
        if ended != name {
            return Err(LangError {
                kind: LangErrorKind::EndMismatch { declared: name, ended },
                pos: self.pos(),
            });
        }
        self.expect_kind(TokenKind::Semi)?;
        Ok(ErrorModel { name, states, transitions, pos })
    }

    fn fault_injection(&mut self) -> Result<FaultInjection, LangError> {
        let pos = self.pos();
        self.expect_kw(Keyword::On)?;
        let target = self.qname()?;
        self.expect_kw(Keyword::Using)?;
        let error_model = self.ident()?;
        let mut effects = Vec::new();
        while self.eat_kw(Keyword::Effect) {
            let state = self.ident()?;
            self.expect_kind(TokenKind::Colon)?;
            let var = self.qname()?;
            self.expect_kind(TokenKind::Assign)?;
            let value = self.literal()?;
            self.expect_kind(TokenKind::Semi)?;
            effects.push((state, var, value));
        }
        self.expect_kw(Keyword::End)?;
        self.expect_kind(TokenKind::Semi)?;
        Ok(FaultInjection { target, error_model, effects, pos })
    }

    // ----- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.implies_expr()
    }

    fn implies_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.or_expr()?;
        if self.eat_kind(&TokenKind::Implies) {
            let rhs = self.implies_expr()?; // right-associative
            Ok(Expr::Bin(BinOp::Implies, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        loop {
            let op = if self.eat_kw(Keyword::Or) {
                BinOp::Or
            } else if self.eat_kw(Keyword::Xor) {
                BinOp::Xor
            } else {
                return Ok(lhs);
            };
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        if self.eat_kind(&TokenKind::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.unary_expr()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Lit(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Lit(Literal::Bool(false)))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Literal::Int(i)))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::Lit(Literal::Real(r)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_kind(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                let c = self.expr()?;
                self.expect_kw(Keyword::Then)?;
                let t = self.expr()?;
                self.expect_kw(Keyword::Else)?;
                let e = self.expr()?;
                Ok(Expr::Ite(Box::new(c), Box::new(t), Box::new(e)))
            }
            TokenKind::Keyword(kw @ (Keyword::Min | Keyword::Max)) => {
                self.bump();
                self.expect_kind(TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect_kind(TokenKind::Comma)?;
                let b = self.expr()?;
                self.expect_kind(TokenKind::RParen)?;
                let op = if kw == Keyword::Min { BinOp::Min } else { BinOp::Max };
                Ok(Expr::Bin(op, Box::new(a), Box::new(b)))
            }
            ref k if Parser::soft_ident(k).is_some() => Ok(Expr::Name(self.qname()?)),
            _ => Err(self.error("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_component_type_with_features() {
        let m = parse(
            r#"
            device GPS
              features
                activate: in event port;
                fix: out data port bool := false;
                level: out data port int [0..5] := 1;
            end GPS;
            "#,
        )
        .unwrap();
        assert_eq!(m.types.len(), 1);
        let t = &m.types[0];
        assert_eq!(t.name, "GPS");
        assert_eq!(t.features.len(), 3);
        assert!(t.features[0].is_event());
        assert_eq!(t.features[2].data, Some(DataType::Int(Some((0, 5)))));
    }

    #[test]
    fn parses_implementation_full() {
        let m = parse(
            r#"
            device implementation GPS.Impl
              subcomponents
                c: data clock;
                meas: data bool := false;
              modes
                acquisition: initial mode while c <= 120.0;
                active: mode;
              transitions
                acquisition -[ when c >= 10.0 then meas := true ]-> active;
                active -[ rate 0.001 ]-> acquisition;
            end GPS.Impl;
            "#,
        )
        .unwrap();
        let i = &m.impls[0];
        assert_eq!(i.name, ("GPS".into(), "Impl".into()));
        assert_eq!(i.subcomponents.len(), 2);
        assert_eq!(i.modes.len(), 2);
        assert!(i.modes[0].initial && !i.modes[1].initial);
        assert!(i.modes[0].invariant.is_some());
        assert_eq!(i.transitions.len(), 2);
        assert!(matches!(i.transitions[1].trigger, Trigger::Rate(r) if (r - 0.001).abs() < 1e-12));
        assert_eq!(i.transitions[0].effects.len(), 1);
    }

    #[test]
    fn parses_nested_instances_and_connections() {
        let m = parse(
            r#"
            system implementation Top.Impl
              subcomponents
                gps1: device GPS.Impl;
                gps2: device GPS.Impl;
              connections
                port gps1.fix -> gps2.activate;
            end Top.Impl;
            "#,
        )
        .unwrap();
        let i = &m.impls[0];
        assert_eq!(i.subcomponents.len(), 2);
        assert!(
            matches!(&i.subcomponents[0], Subcomponent::Instance { impl_ref, .. } if impl_ref.0 == "GPS")
        );
        assert_eq!(i.connections.len(), 1);
        assert_eq!(i.connections[0].from.to_string(), "gps1.fix");
    }

    #[test]
    fn parses_flows_and_derivatives() {
        let m = parse(
            r#"
            device implementation Batt.Impl
              subcomponents
                energy: data continuous := 100.0;
              flows
                level := energy / 100.0;
              modes
                on: initial mode while energy >= 0.0 der energy = -2.5;
            end Batt.Impl;
            "#,
        )
        .unwrap();
        let i = &m.impls[0];
        assert_eq!(i.flows.len(), 1);
        assert_eq!(i.modes[0].derivatives, vec![(QName::simple("energy"), -2.5)]);
    }

    #[test]
    fn parses_error_model_fig2() {
        // The paper's Fig. 2 GPS error model shape.
        let m = parse(
            r#"
            error model GpsError
              states
                ok: initial state;
                transient: state while c <= 300.0;
                hot: state;
                permanent: state;
              transitions
                ok -[ rate 0.1 ]-> transient;
                ok -[ rate 0.05 ]-> hot;
                ok -[ rate 0.01 ]-> permanent;
                transient -[ when c >= 200.0 and c <= 300.0 ]-> ok;
                hot -[ activation ]-> ok;
            end GpsError;
            "#,
        )
        .unwrap();
        let e = &m.error_models[0];
        assert_eq!(e.states.len(), 4);
        assert!(e.states[0].initial);
        assert!(e.states[1].invariant.is_some());
        assert_eq!(e.transitions.len(), 5);
        assert!(
            matches!(e.transitions[0].trigger, ErrorTrigger::Rate(r) if (r - 0.1).abs() < 1e-12)
        );
        assert!(matches!(&e.transitions[3].trigger, ErrorTrigger::When(_)));
        assert!(
            matches!(&e.transitions[4].trigger, ErrorTrigger::Propagation(p) if p == "activation")
        );
    }

    #[test]
    fn parses_fault_injection() {
        let m = parse(
            r#"
            fault injection on top.gps1 using GpsError
              effect permanent: top.gps1.fix_ok := false;
              effect ok: top.gps1.fix_ok := true;
            end;
            "#,
        )
        .unwrap();
        let fi = &m.injections[0];
        assert_eq!(fi.target.to_string(), "top.gps1");
        assert_eq!(fi.error_model, "GpsError");
        assert_eq!(fi.effects.len(), 2);
        assert_eq!(fi.effects[0].0, "permanent");
        assert_eq!(fi.effects[0].2, Literal::Bool(false));
    }

    #[test]
    fn expression_precedence() {
        let m = parse(
            r#"
            system implementation T.I
              flows
                x := a + b * c <= d and e or not f;
            end T.I;
            "#,
        );
        // `x` is a flow target; precedence: ((a + (b*c)) <= d) and e) or (not f)
        let m = m.unwrap();
        let e = &m.impls[0].flows[0].expr;
        match e {
            Expr::Bin(BinOp::Or, lhs, rhs) => {
                assert!(matches!(**rhs, Expr::Not(_)));
                assert!(matches!(**lhs, Expr::Bin(BinOp::And, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_and_minmax_expressions() {
        let m = parse(
            r#"
            system implementation T.I
              flows
                x := if a > 0 then min(a, 5) else max(b, -1);
            end T.I;
            "#,
        )
        .unwrap();
        assert!(matches!(&m.impls[0].flows[0].expr, Expr::Ite(..)));
    }

    #[test]
    fn sections_in_any_order() {
        let m = parse(
            r#"
            system implementation T.I
              flows
                y := x + 1;
              subcomponents
                x: data int := 1;
                y: data int := 0;
              modes
                a: initial mode;
            end T.I;
            "#,
        )
        .unwrap();
        assert_eq!(m.impls[0].subcomponents.len(), 2);
        assert_eq!(m.impls[0].flows.len(), 1);
        assert_eq!(m.impls[0].modes.len(), 1);
    }

    #[test]
    fn end_mismatch_rejected() {
        let r = parse("system S end T;");
        assert!(matches!(r.unwrap_err().kind, LangErrorKind::EndMismatch { .. }));
        let r = parse("system implementation A.B end A.C;");
        assert!(matches!(r.unwrap_err().kind, LangErrorKind::EndMismatch { .. }));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("system S\n  features\n    p q\nend S;").unwrap_err();
        assert_eq!(err.pos.line, 3);
    }

    #[test]
    fn internal_trigger_with_guard_only() {
        let m = parse(
            r#"
            system implementation T.I
              modes
                a: initial mode;
                b: mode;
              transitions
                a -[ when true then x := 1 ]-> b;
                a -[ ]-> b;
            end T.I;
            "#,
        )
        .unwrap();
        assert!(matches!(m.impls[0].transitions[0].trigger, Trigger::Internal));
        assert!(m.impls[0].transitions[0].guard.is_some());
        assert!(m.impls[0].transitions[1].guard.is_none());
    }

    #[test]
    fn negative_rate_literal_parses() {
        // Negative rates are syntactically fine; lowering rejects them.
        let m = parse(
            r#"
            error model E
              states
                s: initial state;
              transitions
                s -[ rate -1.0 ]-> s;
            end E;
            "#,
        )
        .unwrap();
        assert!(
            matches!(m.error_models[0].transitions[0].trigger, ErrorTrigger::Rate(r) if r < 0.0)
        );
    }
}
