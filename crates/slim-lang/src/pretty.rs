//! Pretty-printer: AST back to concrete SLIM syntax.
//!
//! `parse(pretty(m)) == m` (round-trip), which the property tests in
//! `tests/` exercise.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole model.
pub fn pretty(model: &Model) -> String {
    let mut out = String::new();
    for t in &model.types {
        pretty_type(&mut out, t);
    }
    for i in &model.impls {
        pretty_impl(&mut out, i);
    }
    for e in &model.error_models {
        pretty_error_model(&mut out, e);
    }
    for fi in &model.injections {
        pretty_injection(&mut out, fi);
    }
    out
}

fn pretty_type(out: &mut String, t: &ComponentType) {
    let _ = writeln!(out, "{} {}", t.category, t.name);
    if !t.features.is_empty() {
        let _ = writeln!(out, "  features");
        for f in &t.features {
            let dir = match f.direction {
                Direction::In => "in",
                Direction::Out => "out",
            };
            match (&f.data, &f.default) {
                (None, _) => {
                    let _ = writeln!(out, "    {}: {} event port;", f.name, dir);
                }
                (Some(ty), None) => {
                    let _ = writeln!(out, "    {}: {} data port {};", f.name, dir, ty_str(*ty));
                }
                (Some(ty), Some(d)) => {
                    let _ = writeln!(
                        out,
                        "    {}: {} data port {} := {};",
                        f.name,
                        dir,
                        ty_str(*ty),
                        lit_str(*d)
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "end {};", t.name);
}

fn pretty_impl(out: &mut String, i: &ComponentImpl) {
    let _ = writeln!(out, "{} implementation {}.{}", i.category, i.name.0, i.name.1);
    if !i.subcomponents.is_empty() {
        let _ = writeln!(out, "  subcomponents");
        for s in &i.subcomponents {
            match s {
                Subcomponent::Data { name, ty, init, .. } => match init {
                    Some(v) => {
                        let _ =
                            writeln!(out, "    {name}: data {} := {};", ty_str(*ty), lit_str(*v));
                    }
                    None => {
                        let _ = writeln!(out, "    {name}: data {};", ty_str(*ty));
                    }
                },
                Subcomponent::Instance { name, category, impl_ref, .. } => {
                    let _ = writeln!(out, "    {name}: {category} {}.{};", impl_ref.0, impl_ref.1);
                }
            }
        }
    }
    if !i.connections.is_empty() {
        let _ = writeln!(out, "  connections");
        for c in &i.connections {
            let _ = writeln!(out, "    port {} -> {};", c.from, c.to);
        }
    }
    if !i.flows.is_empty() {
        let _ = writeln!(out, "  flows");
        for f in &i.flows {
            let _ = writeln!(out, "    {} := {};", f.target, expr_str(&f.expr));
        }
    }
    if !i.modes.is_empty() {
        let _ = writeln!(out, "  modes");
        for m in &i.modes {
            let mut line = format!("    {}: ", m.name);
            if m.initial {
                line.push_str("initial ");
            }
            line.push_str("mode");
            if let Some(inv) = &m.invariant {
                let _ = write!(line, " while {}", expr_str(inv));
            }
            for (v, r) in &m.derivatives {
                let _ = write!(line, " der {v} = {}", num_str(*r));
            }
            let _ = writeln!(out, "{line};");
        }
    }
    if !i.transitions.is_empty() {
        let _ = writeln!(out, "  transitions");
        for t in &i.transitions {
            let mut label = String::new();
            if t.urgent {
                label.push_str("urgent");
            }
            match &t.trigger {
                Trigger::Internal => {}
                Trigger::Port(q) => {
                    if !label.is_empty() {
                        label.push(' ');
                    }
                    let _ = write!(label, "{q}");
                }
                Trigger::Rate(r) => {
                    if !label.is_empty() {
                        label.push(' ');
                    }
                    let _ = write!(label, "rate {}", num_str(*r));
                }
            }
            if let Some(g) = &t.guard {
                if !label.is_empty() {
                    label.push(' ');
                }
                let _ = write!(label, "when {}", expr_str(g));
            }
            if !t.effects.is_empty() {
                if !label.is_empty() {
                    label.push(' ');
                }
                label.push_str("then ");
                for (k, (q, e)) in t.effects.iter().enumerate() {
                    if k > 0 {
                        label.push_str(", ");
                    }
                    let _ = write!(label, "{q} := {}", expr_str(e));
                }
            }
            let _ = writeln!(out, "    {} -[ {} ]-> {};", t.from, label, t.to);
        }
    }
    let _ = writeln!(out, "end {}.{};", i.name.0, i.name.1);
}

fn pretty_error_model(out: &mut String, e: &ErrorModel) {
    let _ = writeln!(out, "error model {}", e.name);
    let _ = writeln!(out, "  states");
    for s in &e.states {
        let mut line = format!("    {}: ", s.name);
        if s.initial {
            line.push_str("initial ");
        }
        line.push_str("state");
        if let Some(inv) = &s.invariant {
            let _ = write!(line, " while {}", expr_str(inv));
        }
        let _ = writeln!(out, "{line};");
    }
    let _ = writeln!(out, "  transitions");
    for t in &e.transitions {
        let trig = match &t.trigger {
            ErrorTrigger::Rate(r) => format!("rate {}", num_str(*r)),
            ErrorTrigger::When(g) => format!("when {}", expr_str(g)),
            ErrorTrigger::Propagation(p) => p.clone(),
        };
        let _ = writeln!(out, "    {} -[ {} ]-> {};", t.from, trig, t.to);
    }
    let _ = writeln!(out, "end {};", e.name);
}

fn pretty_injection(out: &mut String, fi: &FaultInjection) {
    let _ = writeln!(out, "fault injection on {} using {}", fi.target, fi.error_model);
    for (state, var, value) in &fi.effects {
        let _ = writeln!(out, "  effect {state}: {var} := {};", lit_str(*value));
    }
    let _ = writeln!(out, "end;");
}

fn ty_str(ty: DataType) -> String {
    match ty {
        DataType::Bool => "bool".into(),
        DataType::Int(None) => "int".into(),
        DataType::Int(Some((lo, hi))) => format!("int [{lo}..{hi}]"),
        DataType::Real => "real".into(),
        DataType::Clock => "clock".into(),
        DataType::Continuous => "continuous".into(),
    }
}

fn lit_str(l: Literal) -> String {
    match l {
        Literal::Bool(b) => b.to_string(),
        Literal::Int(i) => i.to_string(),
        Literal::Real(r) => num_str(r),
    }
}

/// Formats a real so it re-lexes as a real (forces a decimal point).
///
/// `{r:.1}` covers small whole values, but whole reals at or above 1e15
/// format via `{r}` as bare integers (`1000000000000000`), which re-lex
/// as `Int` — or overflow the lexer's i64 beyond 2^63. Appending `.0`
/// whenever the default rendering has neither a `.` nor an exponent
/// keeps the token a real in every range.
fn num_str(r: f64) -> String {
    if r == r.trunc() && r.abs() < 1e15 {
        return format!("{r:.1}");
    }
    let s = format!("{r}");
    if s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.contains("inf")
        || s.contains("NaN")
    {
        s
    } else {
        format!("{s}.0")
    }
}

/// Renders an expression (fully parenthesized to stay precedence-safe).
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Lit(l) => lit_str(*l),
        Expr::Name(q) => q.to_string(),
        Expr::Not(x) => format!("(not {})", expr_str(x)),
        Expr::Neg(x) => format!("(-{})", expr_str(x)),
        Expr::Bin(BinOp::Min, a, b) => format!("min({}, {})", expr_str(a), expr_str(b)),
        Expr::Bin(BinOp::Max, a, b) => format!("max({}, {})", expr_str(a), expr_str(b)),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Xor => "xor",
                BinOp::Implies => "=>",
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Min | BinOp::Max => unreachable!("handled above"),
            };
            format!("({} {} {})", expr_str(a), sym, expr_str(b))
        }
        Expr::Ite(c, t, els) => {
            format!("(if {} then {} else {})", expr_str(c), expr_str(t), expr_str(els))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SAMPLE: &str = r#"
        device GPS
          features
            activate: in event port;
            fix: out data port bool := false;
        end GPS;
        device implementation GPS.Impl
          subcomponents
            c: data clock;
          modes
            acq: initial mode while c <= 120.0;
            active: mode;
          transitions
            acq -[ when c >= 10.0 then fix := true ]-> active;
            active -[ rate 0.5 ]-> acq;
        end GPS.Impl;
        error model E
          states
            ok: initial state;
            bad: state while c <= 300.0;
          transitions
            ok -[ rate 0.1 ]-> bad;
            bad -[ when c >= 200.0 ]-> ok;
            bad -[ boom ]-> ok;
        end E;
        fault injection on root using E
          effect bad: root.fix := false;
        end;
    "#;

    #[test]
    fn round_trip_sample() {
        let m1 = parse(SAMPLE).unwrap();
        let printed = pretty(&m1);
        let m2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(m1, m2);
    }

    #[test]
    fn double_round_trip_is_fixed_point() {
        let m1 = parse(SAMPLE).unwrap();
        let p1 = pretty(&m1);
        let p2 = pretty(&parse(&p1).unwrap());
        assert_eq!(p1, p2);
    }

    #[test]
    fn reals_keep_decimal_point() {
        assert_eq!(num_str(3.0), "3.0");
        assert_eq!(num_str(0.001), "0.001");
        assert_eq!(lit_str(Literal::Real(2.0)), "2.0");
    }

    #[test]
    fn extreme_whole_reals_keep_decimal_point() {
        // Found by the round-trip fuzz oracle: whole reals >= 1e15 used to
        // print as bare integers and re-lex as Int (or overflow the
        // lexer's i64 beyond 2^63).
        assert_eq!(num_str(1e15), "1000000000000000.0");
        assert_eq!(num_str(1e16), "10000000000000000.0");
        assert_eq!(num_str(4e18), "4000000000000000000.0");
        assert_eq!(num_str(2e19), "20000000000000000000.0");
        for r in [1e15, 1e16, 4e18, 2e19, 9007199254740993.0_f64] {
            let src = format!("system implementation T.I flows x := {}; end T.I;", num_str(r));
            let m = parse(&src).unwrap_or_else(|e| panic!("re-lex failed for {r}: {e}"));
            match &m.impls[0].flows[0].expr {
                Expr::Lit(Literal::Real(back)) => assert_eq!(*back, r, "value drifted for {r}"),
                other => panic!("real {r} re-lexed as {other:?}"),
            }
        }
    }

    #[test]
    fn expr_rendering_parenthesized() {
        let m = parse("system implementation T.I flows x := a + b * c; end T.I;").unwrap();
        let s = expr_str(&m.impls[0].flows[0].expr);
        assert_eq!(s, "(a + (b * c))");
    }
}
