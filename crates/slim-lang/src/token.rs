//! Tokens of the SLIM subset.

use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// The start of a file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl Default for Pos {
    /// The start of a file (1:1), matching [`Pos::START`].
    fn default() -> Pos {
        Pos::START
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexed token with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Position of the first character.
    pub pos: Pos,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Keyword.
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `:`.
    Colon,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `..`.
    DotDot,
    /// `:=`.
    Assign,
    /// `->`.
    Arrow,
    /// `-[`.
    TransOpen,
    /// `]->`.
    TransClose,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=>`.
    Implies,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Real(r) => write!(f, "real {r}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::DotDot => write!(f, "`..`"),
            TokenKind::Assign => write!(f, "`:=`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::TransOpen => write!(f, "`-[`"),
            TokenKind::TransClose => write!(f, "`]->`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Implies => write!(f, "`=>`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of the SLIM subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),+
        }

        impl Keyword {
            /// Parses a keyword from identifier text.
            #[allow(clippy::should_implement_trait)] // fallible lookup, not `FromStr` (no error type)
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The concrete spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text),+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.as_str())
            }
        }
    };
}

keywords! {
    System => "system",
    Device => "device",
    Process => "process",
    Processor => "processor",
    Bus => "bus",
    Thread => "thread",
    Memory => "memory",
    Abstract => "abstract",
    Implementation => "implementation",
    Features => "features",
    Subcomponents => "subcomponents",
    Connections => "connections",
    Flows => "flows",
    Modes => "modes",
    Transitions => "transitions",
    End => "end",
    In => "in",
    Out => "out",
    Event => "event",
    Data => "data",
    Port => "port",
    Bool => "bool",
    Int => "int",
    Real => "real",
    Clock => "clock",
    Continuous => "continuous",
    Initial => "initial",
    Mode => "mode",
    While => "while",
    Der => "der",
    When => "when",
    Urgent => "urgent",
    Then => "then",
    Rate => "rate",
    Error => "error",
    Model => "model",
    States => "states",
    State => "state",
    Fault => "fault",
    Injection => "injection",
    On => "on",
    Using => "using",
    Effect => "effect",
    True => "true",
    False => "false",
    And => "and",
    Or => "or",
    Xor => "xor",
    Not => "not",
    Min => "min",
    Max => "max",
    If => "if",
    Else => "else",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::System, Keyword::Rate, Keyword::Else, Keyword::Continuous] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("notakeyword"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::TransClose.to_string(), "`]->`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(Pos { line: 3, col: 7 }.to_string(), "3:7");
    }
}
