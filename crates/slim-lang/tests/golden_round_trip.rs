//! Golden round-trip tests: every committed example model must survive
//! `parse → pretty → parse` with an identical AST, and `pretty` must be a
//! fixed point of that loop. The fuzz harness checks the same property on
//! generated models; this pins it on the real models users start from.

use std::fs;
use std::path::PathBuf;

fn example_models() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/models");
    let mut out: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|x| x == "slim")).then_some(path)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no .slim example models found in {}", dir.display());
    out
}

#[test]
fn example_models_round_trip() {
    for path in example_models() {
        let source = fs::read_to_string(&path).unwrap();
        let m1 = slim_lang::parse(&source)
            .unwrap_or_else(|e| panic!("{} fails to parse: {e}", path.display()));
        let printed = slim_lang::pretty(&m1);
        let m2 = slim_lang::parse(&printed).unwrap_or_else(|e| {
            panic!("{}: pretty output fails to re-parse: {e}\n{printed}", path.display())
        });
        assert_eq!(m1, m2, "{}: reparsed AST differs", path.display());
        assert_eq!(
            printed,
            slim_lang::pretty(&m2),
            "{}: pretty is not a fixed point",
            path.display()
        );
    }
}
