//! Trace replay: re-drives the network from a recorded trace and verifies
//! step-by-step state agreement and the final verdict.
//!
//! Replay is *verification-based*: it does not re-run the strategy or the
//! RNG. Instead it walks the recorded events, applies every delay and
//! firing to a fresh initial state through the same `advance`/`apply`
//! code the engine used, and cross-checks
//!
//! * every recorded time against the reconstructed model time (exactly —
//!   the JSON codec round-trips `f64` losslessly),
//! * every [`TraceEvent::Snapshot`] against the reconstructed locations
//!   and valuation (built through the same conversion, so agreement is
//!   bit-for-bit),
//! * the final [`TraceEvent::Verdict`] against the property semantics in
//!   the reconstructed end state (goal/hold windows, time bound, lock
//!   classification).
//!
//! Any divergence is a [`SimError::ReplayMismatch`] naming the offending
//! event index. A trace that replays cleanly is a machine-checked witness
//! of its verdict.

use crate::error::SimError;
use crate::property::TimedReach;
use crate::trace::{snapshot_event, TraceEvent, TRACE_FORMAT_VERSION};
use crate::verdict::Verdict;
use slim_automata::automaton::TransId;
use slim_automata::interval::IntervalSet;
use slim_automata::network::GlobalTransition;
use slim_automata::prelude::{NetState, Network};

/// Absolute tolerance for verdict-time checks that involve re-derived
/// interval endpoints (recorded times themselves are compared exactly).
const TIME_TOL: f64 = 1e-9;

/// Result of a successful replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The verified verdict.
    pub verdict: Verdict,
    /// Steps claimed by the trace's verdict event.
    pub steps: u64,
    /// Model time the path ended at.
    pub end_time: f64,
    /// Total events walked (including the header, if present).
    pub events_checked: usize,
    /// Snapshot events verified against the reconstructed state.
    pub snapshots_checked: usize,
}

fn mismatch(event: usize, detail: impl Into<String>) -> SimError {
    SimError::ReplayMismatch { event, detail: detail.into() }
}

/// Replays `events` against `net` under `property`.
///
/// The event list is one path's trace, with or without its
/// [`TraceEvent::Start`] header; [`TraceEvent::Decision`] events are
/// informational and skipped.
///
/// # Errors
/// [`SimError::ReplayMismatch`] on any divergence between the trace and
/// the model, [`SimError::Eval`] if the model itself fails to evaluate.
pub fn replay_events(
    net: &Network,
    property: &TimedReach,
    events: &[TraceEvent],
) -> Result<ReplayOutcome, SimError> {
    let mut state = net.initial_state().map_err(SimError::Eval)?;
    let mut snapshots_checked = 0usize;
    let mut verdict_seen: Option<(usize, Verdict, f64, u64)> = None;
    let mut max_step = 0u64;

    for (i, event) in events.iter().enumerate() {
        if verdict_seen.is_some() {
            return Err(mismatch(i, "events after the verdict"));
        }
        match event {
            TraceEvent::Start { format_version, .. } => {
                if i != 0 {
                    return Err(mismatch(i, "start header not at the beginning"));
                }
                if *format_version > TRACE_FORMAT_VERSION {
                    return Err(mismatch(
                        i,
                        format!(
                            "trace format v{format_version} is newer than supported \
                             v{TRACE_FORMAT_VERSION}"
                        ),
                    ));
                }
            }
            TraceEvent::Decision { step, .. } => max_step = max_step.max(*step),
            TraceEvent::Delay { step, at, duration } => {
                max_step = max_step.max(*step);
                if *at != state.time {
                    return Err(mismatch(
                        i,
                        format!("delay recorded at t={at} but replay is at t={}", state.time),
                    ));
                }
                if !duration.is_finite() || *duration < 0.0 {
                    return Err(mismatch(i, format!("invalid delay duration {duration}")));
                }
                state = net.advance(&state, *duration).map_err(|e| {
                    mismatch(i, format!("recorded delay {duration} is not admissible: {e}"))
                })?;
            }
            TraceEvent::Fire { step, at, action, parts, .. } => {
                max_step = max_step.max(*step);
                if *at != state.time {
                    return Err(mismatch(
                        i,
                        format!("firing recorded at t={at} but replay is at t={}", state.time),
                    ));
                }
                let gt = resolve_transition(net, action, parts).map_err(|d| mismatch(i, d))?;
                state = net.apply(&state, &gt).map_err(SimError::Eval)?;
            }
            TraceEvent::Snapshot { step, .. } => {
                max_step = max_step.max(*step);
                let expected = snapshot_event(net, *step, &state);
                if *event != expected {
                    return Err(mismatch(
                        i,
                        format!("snapshot diverged: recorded {event}, replayed {expected}"),
                    ));
                }
                snapshots_checked += 1;
            }
            TraceEvent::Verdict { verdict, at, steps } => {
                let v = Verdict::from_code(verdict)
                    .ok_or_else(|| mismatch(i, format!("unknown verdict code {verdict:?}")))?;
                verdict_seen = Some((i, v, *at, *steps));
            }
        }
    }

    let Some((i, verdict, at, steps)) = verdict_seen else {
        return Err(mismatch(events.len(), "trace has no verdict event"));
    };
    if max_step > steps {
        return Err(mismatch(
            i,
            format!("trace contains step {max_step} but the verdict claims {steps} steps"),
        ));
    }
    verify_verdict(net, property, &state, verdict, at).map_err(|d| mismatch(i, d))?;
    Ok(ReplayOutcome {
        verdict,
        steps,
        end_time: at,
        events_checked: events.len(),
        snapshots_checked,
    })
}

/// Resolves a recorded firing back into a [`GlobalTransition`] by name.
fn resolve_transition(
    net: &Network,
    action: &str,
    parts: &[(String, u64)],
) -> Result<GlobalTransition, String> {
    let action_id = net.action_id(action).ok_or_else(|| format!("unknown action {action:?}"))?;
    let mut resolved = Vec::with_capacity(parts.len());
    for (name, t) in parts {
        let p = net.proc_id(name).ok_or_else(|| format!("unknown automaton {name:?}"))?;
        let count = net.automata()[p.0].transitions.len();
        if *t as usize >= count {
            return Err(format!(
                "automaton {name:?} has {count} transitions, trace names index {t}"
            ));
        }
        resolved.push((p, TransId(*t as usize)));
    }
    Ok(GlobalTransition { action: action_id, parts: resolved })
}

/// Checks that `verdict` at time `at` follows from the property semantics
/// in the reconstructed end state (mirrors the engine's classification).
fn verify_verdict(
    net: &Network,
    property: &TimedReach,
    state: &NetState,
    verdict: Verdict,
    at: f64,
) -> Result<(), String> {
    let remaining = property.remaining(state);
    let goal_win = property.goal.window(net, state).map_err(|e| format!("goal window: {e}"))?;
    let viol_win = match &property.hold {
        None => IntervalSet::empty(),
        Some(h) => h.window(net, state).map_err(|e| format!("hold window: {e}"))?.complement(),
    };
    let first_in = |w: &IntervalSet, up_to: f64| w.truncate(up_to).inf();

    match verdict {
        Verdict::Satisfied => {
            let hit = first_in(&goal_win, remaining)
                .ok_or("recorded satisfied, but the goal is unreachable from the end state")?;
            if let Some(v) = first_in(&viol_win, remaining) {
                if v < hit - TIME_TOL {
                    return Err(format!(
                        "hold is violated at t={} before the goal at t={}",
                        state.time + v,
                        state.time + hit
                    ));
                }
            }
            let t = state.time + hit;
            if (t - at).abs() > TIME_TOL {
                return Err(format!("goal is first reached at t={t}, trace claims t={at}"));
            }
            Ok(())
        }
        Verdict::HoldViolated => {
            let v = first_in(&viol_win, remaining)
                .ok_or("recorded hold_violated, but hold never fails from the end state")?;
            if let Some(g) = first_in(&goal_win, remaining) {
                if g <= v + TIME_TOL {
                    return Err(format!(
                        "goal at t={} precedes the violation at t={}",
                        state.time + g,
                        state.time + v
                    ));
                }
            }
            let t = state.time + v;
            if (t - at).abs() > TIME_TOL {
                return Err(format!("hold first fails at t={t}, trace claims t={at}"));
            }
            Ok(())
        }
        Verdict::TimeBoundExceeded => {
            ensure_clear(&goal_win, &viol_win, remaining, state.time)?;
            if (at - property.bound).abs() > TIME_TOL {
                return Err(format!(
                    "time-bound verdict at t={at}, but the bound is {}",
                    property.bound
                ));
            }
            Ok(())
        }
        Verdict::Deadlock | Verdict::Timelock => {
            if at != state.time {
                return Err(format!("lock recorded at t={at}, replay is at t={}", state.time));
            }
            if !net.markovian_candidates(state).is_empty() {
                return Err("recorded a lock, but Markovian transitions are enabled".into());
            }
            let window = effective_window(net, state)?;
            let bounded = window.sup().is_none_or(f64::is_finite);
            let horizon = if bounded { window.sup().unwrap_or(0.0) } else { remaining };
            let expected = if bounded { Verdict::Timelock } else { Verdict::Deadlock };
            if verdict != expected {
                return Err(format!("end state classifies as {expected}, trace says {verdict}"));
            }
            ensure_clear(&goal_win, &viol_win, horizon.min(remaining), state.time)
        }
        Verdict::StepLimit => Ok(()),
    }
}

/// Goal and violation must not occur within the scanned prefix — the
/// engine would have ended the path earlier otherwise.
fn ensure_clear(
    goal_win: &IntervalSet,
    viol_win: &IntervalSet,
    up_to: f64,
    base: f64,
) -> Result<(), String> {
    if let Some(g) = goal_win.truncate(up_to).inf() {
        return Err(format!("goal is reachable at t={} within the scanned prefix", base + g));
    }
    if let Some(v) = viol_win.truncate(up_to).inf() {
        return Err(format!("hold fails at t={} within the scanned prefix", base + v));
    }
    Ok(())
}

/// The delay window the engine saw: invariants intersected, truncated at
/// the first instant an urgent candidate becomes enabled.
fn effective_window(net: &Network, state: &NetState) -> Result<IntervalSet, String> {
    let invariant = net.delay_window(state).map_err(|e| format!("delay window: {e}"))?;
    let raw = net.guarded_candidates(state).map_err(|e| format!("candidates: {e}"))?;
    let mut cutoff = f64::INFINITY;
    for c in &raw {
        if c.urgent {
            if let Some(inf) = c.window.intersect(&invariant).inf() {
                cutoff = cutoff.min(inf);
            }
        }
    }
    Ok(if cutoff.is_finite() { invariant.truncate(cutoff) } else { invariant })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PathGenerator;
    use crate::property::Goal;
    use crate::strategy::{Asap, MaxTime, Progressive, StrategyKind};
    use crate::trace::{MemorySink, PathTracer};
    use slim_automata::prelude::*;
    use slim_stats::rng::StdRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Clock-driven one-shot: fires between 2 and 4, sets `done`.
    fn window_net() -> (Network, TimedReach) {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let done = b.var("done", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("wait", Expr::var(x).le(Expr::real(4.0)), []);
        let l1 = a.location("done");
        let g = Expr::var(x).ge(Expr::real(2.0)).and(Expr::var(x).le(Expr::real(4.0)));
        a.guarded(l0, ActionId::TAU, g, [Effect::assign(done, Expr::bool(true))], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Expr::var(net.var_id("done").unwrap());
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        (net, prop)
    }

    fn record(
        net: &Network,
        prop: &TimedReach,
        strategy: &mut dyn crate::strategy::Strategy,
        seed: u64,
    ) -> Vec<TraceEvent> {
        let gen = PathGenerator::new(net, prop, 1000);
        let mut sink = MemorySink::default();
        {
            let mut tracer = PathTracer::new(net, &mut sink);
            gen.generate_traced(strategy, &mut rng(seed), &mut tracer).unwrap();
        }
        sink.events
    }

    #[test]
    fn recorded_paths_replay_cleanly() {
        let (net, prop) = window_net();
        for seed in 0..5 {
            let events = record(&net, &prop, &mut Progressive, seed);
            let out = replay_events(&net, &prop, &events).unwrap();
            assert_eq!(out.verdict, Verdict::Satisfied);
            assert!(out.snapshots_checked > 0, "no snapshots verified");
        }
        // The boundary strategies and every builtin kind replay too.
        for kind in StrategyKind::ALL {
            let events = record(&net, &prop, kind.instantiate().as_mut(), 1);
            replay_events(&net, &prop, &events).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn replay_survives_json_roundtrip() {
        let (net, prop) = window_net();
        let events = record(&net, &prop, &mut MaxTime, 3);
        let text = crate::trace::events_to_json_lines(&events);
        let back = crate::trace::parse_trace(&text).unwrap();
        let out = replay_events(&net, &prop, &back).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert_eq!(out.events_checked, events.len());
    }

    #[test]
    fn tampered_snapshot_is_detected() {
        let (net, prop) = window_net();
        let mut events = record(&net, &prop, &mut Asap, 1);
        let pos = events
            .iter()
            .position(|e| matches!(e, TraceEvent::Snapshot { .. }))
            .expect("trace has a snapshot");
        if let TraceEvent::Snapshot { values, .. } = &mut events[pos] {
            values[0].1 = slim_obs::Json::Num(99.0);
        }
        let err = replay_events(&net, &prop, &events).unwrap_err();
        assert!(matches!(err, SimError::ReplayMismatch { event, .. } if event == pos), "{err}");
    }

    #[test]
    fn tampered_verdict_is_detected() {
        let (net, prop) = window_net();
        let mut events = record(&net, &prop, &mut Asap, 1);
        let last = events.len() - 1;
        if let TraceEvent::Verdict { verdict, .. } = &mut events[last] {
            *verdict = "deadlock".into();
        }
        assert!(matches!(
            replay_events(&net, &prop, &events),
            Err(SimError::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn tampered_delay_time_is_detected() {
        let (net, prop) = window_net();
        let mut events = record(&net, &prop, &mut Asap, 1);
        let pos = events
            .iter()
            .position(|e| matches!(e, TraceEvent::Delay { .. }))
            .expect("trace has a delay");
        if let TraceEvent::Delay { duration, .. } = &mut events[pos] {
            *duration += 0.5;
        }
        assert!(matches!(
            replay_events(&net, &prop, &events),
            Err(SimError::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn missing_verdict_is_rejected() {
        let (net, prop) = window_net();
        let mut events = record(&net, &prop, &mut Asap, 1);
        events.pop();
        assert!(matches!(
            replay_events(&net, &prop, &events),
            Err(SimError::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn lock_verdicts_verify() {
        // Deadlock: single location, no transitions, no invariant.
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        a.location("sink");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 10.0);
        let events = record(&net, &prop, &mut Asap, 1);
        let out = replay_events(&net, &prop, &events).unwrap();
        assert_eq!(out.verdict, Verdict::Deadlock);

        // Timelock: invariant x <= 3, only transition needs x >= 5.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("trap", Expr::var(x).le(Expr::real(3.0)), []);
        let l1 = a.location("free");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(5.0)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 10.0);
        let events = record(&net, &prop, &mut Asap, 1);
        let out = replay_events(&net, &prop, &events).unwrap();
        assert_eq!(out.verdict, Verdict::Timelock);
    }
}
