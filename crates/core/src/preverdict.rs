//! Static property pre-verdicts — consumer 1 of the `slim-analysis`
//! fixpoint engine.
//!
//! Before any path is generated, [`crate::runner::analyze`] consults the
//! abstract-interpretation fixpoint: when the goal predicate is false in
//! *every* state of the over-approximation, the timed-reachability
//! probability is exactly 0 and the run completes with **zero samples**;
//! dually, a goal that already holds in the concrete initial state has
//! probability exactly 1, because `◇[0,u]` includes time 0 (and for
//! bounded until there is no earlier instant at which `hold` could fail).
//!
//! Soundness rests on the fixpoint's global store being an upper bound of
//! every reachable valuation with timed variables pinned to ⊤ — so a
//! definite `false` from the abstract evaluation covers states reached
//! *mid-delay* as well as at transition instants, and location atoms are
//! delay-invariant by construction.
//!
//! Pre-verdicts answer the probability question only: a short-circuited
//! run draws no paths, so dynamic errors a simulation would have surfaced
//! (deadlocks under [`crate::config::DeadlockPolicy::Error`], non-linear
//! guard evaluation errors) are not reproduced. Disable with
//! [`crate::config::SimConfig::with_static_pre_verdicts`] to force
//! sampling.

use crate::property::{Goal, TimedReach};
use slim_analysis::Fixpoint;
use slim_automata::prelude::Network;

/// Outcome of the static pre-analysis of a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreVerdict {
    /// The abstraction cannot decide the property; sampling proceeds.
    #[default]
    Unknown,
    /// The goal is unreachable in the abstraction: exactly `P = 0`.
    Unreachable,
    /// The goal holds in the initial state: exactly `P = 1`.
    InitiallySatisfied,
}

impl PreVerdict {
    /// The exact probability this verdict pins down, if any.
    pub fn exact_probability(&self) -> Option<f64> {
        match self {
            PreVerdict::Unknown => None,
            PreVerdict::Unreachable => Some(0.0),
            PreVerdict::InitiallySatisfied => Some(1.0),
        }
    }

    /// Stable machine-readable name (used in run reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            PreVerdict::Unknown => "unknown",
            PreVerdict::Unreachable => "unreachable",
            PreVerdict::InitiallySatisfied => "initially-satisfied",
        }
    }
}

impl std::fmt::Display for PreVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Computes the pre-verdict for `property` on `net`.
///
/// Errors during the concrete initial-state check make that check
/// inconclusive rather than failing the analysis — the simulation will
/// deterministically reproduce them on the first path.
pub fn pre_verdict(net: &Network, property: &TimedReach) -> PreVerdict {
    if let Ok(init) = net.initial_state() {
        if property.goal.holds(net, &init) == Ok(true) {
            return PreVerdict::InitiallySatisfied;
        }
    }
    let fix = slim_analysis::analyze_network(net);
    if may_hold(&property.goal, &fix) == Some(false) {
        return PreVerdict::Unreachable;
    }
    PreVerdict::Unknown
}

/// Three-valued abstract evaluation of a goal over the stabilized
/// fixpoint: `Some(b)` means the goal evaluates to `b` in **every** state
/// of the over-approximation (hence in every reachable state), `None`
/// means undecided.
fn may_hold(goal: &Goal, fix: &Fixpoint) -> Option<bool> {
    match goal {
        Goal::Expr(e) => fix.may_expr(e),
        Goal::InLocation(p, l) => {
            if fix.loc_reachable(*p, *l) {
                None
            } else {
                Some(false)
            }
        }
        Goal::And(a, b) => match (may_hold(a, fix), may_hold(b, fix)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Goal::Or(a, b) => match (may_hold(a, fix), may_hold(b, fix)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Goal::Not(a) => may_hold(a, fix).map(|b| !b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::prelude::*;

    /// `idle --x≥5--> alarm` plus an unreachable `never` location; a flag
    /// that is never set.
    fn net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let _flag = b.var("flag", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let idle = a.location("idle");
        let alarm = a.location("alarm");
        let never = a.location("never");
        a.guarded(idle, ActionId::TAU, Expr::var(x).ge(Expr::real(5.0)), [], alarm);
        a.guarded(alarm, ActionId::TAU, Expr::FALSE, [], never);
        b.add_automaton(a);
        b.build().unwrap()
    }

    #[test]
    fn unreachable_location_gives_zero() {
        let net = net();
        let goal = Goal::in_location(&net, "p", "never").unwrap();
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unreachable);
    }

    #[test]
    fn dead_flag_expression_gives_zero() {
        let net = net();
        let flag = net.var_id("flag").unwrap();
        let goal = Goal::expr(Expr::var(flag));
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unreachable);
    }

    #[test]
    fn initially_true_goal_gives_one() {
        let net = net();
        let goal = Goal::in_location(&net, "p", "idle").unwrap();
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::InitiallySatisfied);
    }

    #[test]
    fn reachable_goal_stays_unknown() {
        let net = net();
        let goal = Goal::in_location(&net, "p", "alarm").unwrap();
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unknown);
    }

    #[test]
    fn combinators_compose_three_valued() {
        let net = net();
        let dead = Goal::in_location(&net, "p", "never").unwrap();
        let maybe = Goal::in_location(&net, "p", "alarm").unwrap();
        // dead ∧ maybe is still dead; dead ∨ maybe is undecided; ¬dead is
        // definitely true (P = 1: it holds initially too, but the And/Or
        // paths below bypass the concrete check).
        let p = TimedReach::new(dead.clone().and(maybe.clone()), 10.0);
        assert_eq!(pre_verdict(&net, &p), PreVerdict::Unreachable);
        let p = TimedReach::new(dead.clone().or(maybe), 10.0);
        assert_eq!(pre_verdict(&net, &p), PreVerdict::Unknown);
        let p = TimedReach::new(dead.not(), 10.0);
        assert_eq!(pre_verdict(&net, &p), PreVerdict::InitiallySatisfied);
    }

    #[test]
    fn timed_goals_are_never_decided_dead_by_the_clock() {
        // x ≥ 5 is false initially but reachable mid-delay: the store pins
        // timed variables to ⊤, so the abstraction must stay undecided.
        let net = net();
        let x = net.var_id("x").unwrap();
        let goal = Goal::expr(Expr::var(x).ge(Expr::real(5.0)));
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unknown);
    }
}
