//! Static property pre-verdicts — consumer 1 of the `slim-analysis`
//! fixpoint engine.
//!
//! Before any path is generated, [`crate::runner::analyze`] consults the
//! abstract-interpretation fixpoint: when the goal predicate is false in
//! *every* state of the over-approximation, the timed-reachability
//! probability is exactly 0 and the run completes with **zero samples**;
//! dually, a goal that already holds in the concrete initial state has
//! probability exactly 1, because `◇[0,u]` includes time 0 (and for
//! bounded until there is no earlier instant at which `hold` could fail).
//!
//! Soundness rests on the fixpoint's global store being an upper bound of
//! every reachable valuation with timed variables pinned to ⊤ — so a
//! definite `false` from the abstract evaluation covers states reached
//! *mid-delay* as well as at transition instants, and location atoms are
//! delay-invariant by construction.
//!
//! The clock-zone product adds a second family of `P = 0` verdicts:
//! when the goal *is* location-reachable but the zone lower bound on
//! elapsed time at every way the goal can first hold exceeds the
//! property deadline, `◇[0,u] goal` has probability exactly 0
//! ([`PreVerdict::DeadlineUnreachable`]). The bound comes from
//! [`slim_analysis::Fixpoint::min_time_to_loc`] /
//! [`slim_analysis::Fixpoint::trans_min_fire_time`], both lower bounds on
//! global elapsed time in every concrete run, so claiming `lb > u` is
//! conservative.
//!
//! Pre-verdicts answer the probability question only: a short-circuited
//! run draws no paths, so dynamic errors a simulation would have surfaced
//! (deadlocks under [`crate::config::DeadlockPolicy::Error`], non-linear
//! guard evaluation errors) are not reproduced. Disable with
//! [`crate::config::SimConfig::with_static_pre_verdicts`] to force
//! sampling, or keep the untimed verdicts and drop only the zone-derived
//! ones with [`crate::config::SimConfig::with_zone_pre_verdicts`].

use crate::property::{Goal, TimedReach};
use slim_analysis::{AnalysisOptions, Fixpoint, TransStatus};
use slim_automata::automaton::{LocId, ProcId, TransId};
use slim_automata::expr::VarId;
use slim_automata::prelude::Network;

/// Outcome of the static pre-analysis of a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreVerdict {
    /// The abstraction cannot decide the property; sampling proceeds.
    #[default]
    Unknown,
    /// The goal is unreachable in the abstraction: exactly `P = 0`.
    Unreachable,
    /// The goal is location-reachable but provably not before the
    /// property deadline: exactly `P = 0`.
    DeadlineUnreachable,
    /// The goal holds in the initial state: exactly `P = 1`.
    InitiallySatisfied,
}

impl PreVerdict {
    /// The exact probability this verdict pins down, if any.
    pub fn exact_probability(&self) -> Option<f64> {
        match self {
            PreVerdict::Unknown => None,
            PreVerdict::Unreachable | PreVerdict::DeadlineUnreachable => Some(0.0),
            PreVerdict::InitiallySatisfied => Some(1.0),
        }
    }

    /// Stable machine-readable name (used in run reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            PreVerdict::Unknown => "unknown",
            PreVerdict::Unreachable => "unreachable",
            PreVerdict::DeadlineUnreachable => "deadline-unreachable",
            PreVerdict::InitiallySatisfied => "initially-satisfied",
        }
    }
}

impl std::fmt::Display for PreVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Computes the pre-verdict for `property` on `net`.
///
/// Errors during the concrete initial-state check make that check
/// inconclusive rather than failing the analysis — the simulation will
/// deterministically reproduce them on the first path.
pub fn pre_verdict(net: &Network, property: &TimedReach) -> PreVerdict {
    pre_verdict_with(net, property, true)
}

/// [`pre_verdict`] with explicit control over the clock-zone domain.
///
/// With `zones = false` the fixpoint runs interval-only and the
/// [`PreVerdict::DeadlineUnreachable`] verdict is never produced — this
/// is the `--no-zones` opt-out, mirroring
/// [`crate::config::SimConfig::with_static_pre_verdicts`].
pub fn pre_verdict_with(net: &Network, property: &TimedReach, zones: bool) -> PreVerdict {
    if let Ok(init) = net.initial_state() {
        if property.goal.holds(net, &init) == Ok(true) {
            return PreVerdict::InitiallySatisfied;
        }
    }
    let opts = AnalysisOptions { zones, deadline: Some(property.bound) };
    let fix = slim_analysis::analyze_network_with(net, &opts);
    if may_hold(&property.goal, &fix) == Some(false) {
        return PreVerdict::Unreachable;
    }
    if fix.zones_enabled() && goal_min_time(&property.goal, net, &fix) > property.bound {
        return PreVerdict::DeadlineUnreachable;
    }
    PreVerdict::Unknown
}

/// Lower bound on the global elapsed time at which `goal` can first hold
/// in any concrete run — `0.0` whenever the abstraction cannot make a
/// claim (so a caller comparing against the deadline stays sound), `∞`
/// when the goal can never hold at all.
fn goal_min_time(goal: &Goal, net: &Network, fix: &Fixpoint) -> f64 {
    match goal {
        Goal::InLocation(p, l) => {
            if !fix.loc_reachable(*p, *l) {
                f64::INFINITY
            } else {
                fix.min_time_to_loc(*p, *l).unwrap_or(0.0).max(0.0)
            }
        }
        Goal::Expr(e) => {
            // Only claim a bound when the expression is concretely false
            // at t = 0 and can only flip through an effect write: then
            // the earliest it can hold is the earliest such write.
            let initially_false =
                net.initial_state().is_ok_and(|init| goal.holds(net, &init) == Ok(false));
            if !initially_false {
                return 0.0;
            }
            let Some(cone) = delay_free_cone(net, e) else {
                return 0.0; // reads a timed variable: may flip mid-delay
            };
            let mut lb = f64::INFINITY;
            for (p, a) in net.automata().iter().enumerate() {
                for (t, trans) in a.transitions.iter().enumerate() {
                    if fix.trans_status(ProcId(p), TransId(t)) != TransStatus::Live {
                        continue;
                    }
                    if !trans.effects.iter().any(|eff| cone.contains(&eff.var)) {
                        continue;
                    }
                    match fix.trans_min_fire_time(ProcId(p), TransId(t)) {
                        Some(t0) => lb = lb.min(t0),
                        None => return 0.0,
                    }
                }
            }
            lb
        }
        // Both conjuncts must hold simultaneously / either suffices.
        Goal::And(a, b) => goal_min_time(a, net, fix).max(goal_min_time(b, net, fix)),
        Goal::Or(a, b) => goal_min_time(a, net, fix).min(goal_min_time(b, net, fix)),
        // ¬a can hold whenever a fails — no useful lower bound.
        Goal::Not(_) => 0.0,
    }
}

/// The variables `e` transitively depends on (closing over data flows),
/// or `None` if any of them is timed — in which case the expression's
/// value can change during a delay and effect writes don't bound it.
fn delay_free_cone(net: &Network, e: &slim_automata::prelude::Expr) -> Option<Vec<VarId>> {
    let mut cone = e.vars();
    // Close over flows: a flow target changes whenever its sources do.
    loop {
        let mut grew = false;
        for f in net.flows() {
            if cone.contains(&f.target) {
                for v in f.expr.vars() {
                    if !cone.contains(&v) {
                        cone.push(v);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    if cone.iter().any(|v| net.vars()[v.0].ty.is_timed()) {
        None
    } else {
        Some(cone)
    }
}

/// Goal locations for the distance-to-goal map: `(process, location,
/// step offset)` seeds for [`Fixpoint::distance_steps`].
///
/// Location atoms seed their own location at offset 0; expression atoms
/// seed the *source* locations of live transitions that write the
/// expression's cone at offset 1 (one hop fires the write). This is a
/// heuristic level map for splitting, not a soundness artifact, so
/// combinators just union their operands.
pub fn goal_distance_targets(
    net: &Network,
    fix: &Fixpoint,
    goal: &Goal,
) -> Vec<(ProcId, LocId, u64)> {
    let mut out = Vec::new();
    collect_targets(net, fix, goal, &mut out);
    out.sort_by_key(|&(p, l, o)| (p.0, l.0, o));
    out.dedup();
    out
}

fn collect_targets(
    net: &Network,
    fix: &Fixpoint,
    goal: &Goal,
    out: &mut Vec<(ProcId, LocId, u64)>,
) {
    match goal {
        Goal::InLocation(p, l) => out.push((*p, *l, 0)),
        Goal::Expr(e) => {
            let cone = delay_free_cone(net, e).unwrap_or_else(|| e.vars());
            for (p, a) in net.automata().iter().enumerate() {
                for (t, trans) in a.transitions.iter().enumerate() {
                    let live = fix.trans_status(ProcId(p), TransId(t)) == TransStatus::Live;
                    let writes = trans.effects.iter().any(|eff| cone.contains(&eff.var));
                    if live && writes {
                        out.push((ProcId(p), trans.from, 1));
                    }
                }
            }
        }
        Goal::And(a, b) | Goal::Or(a, b) => {
            collect_targets(net, fix, a, out);
            collect_targets(net, fix, b, out);
        }
        Goal::Not(a) => collect_targets(net, fix, a, out),
    }
}

/// Three-valued abstract evaluation of a goal over the stabilized
/// fixpoint: `Some(b)` means the goal evaluates to `b` in **every** state
/// of the over-approximation (hence in every reachable state), `None`
/// means undecided.
fn may_hold(goal: &Goal, fix: &Fixpoint) -> Option<bool> {
    match goal {
        Goal::Expr(e) => fix.may_expr(e),
        Goal::InLocation(p, l) => {
            if fix.loc_reachable(*p, *l) {
                None
            } else {
                Some(false)
            }
        }
        Goal::And(a, b) => match (may_hold(a, fix), may_hold(b, fix)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Goal::Or(a, b) => match (may_hold(a, fix), may_hold(b, fix)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Goal::Not(a) => may_hold(a, fix).map(|b| !b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::prelude::*;

    /// `idle --x≥5--> alarm` plus an unreachable `never` location; a flag
    /// that is never set.
    fn net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let _flag = b.var("flag", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let idle = a.location("idle");
        let alarm = a.location("alarm");
        let never = a.location("never");
        a.guarded(idle, ActionId::TAU, Expr::var(x).ge(Expr::real(5.0)), [], alarm);
        a.guarded(alarm, ActionId::TAU, Expr::FALSE, [], never);
        b.add_automaton(a);
        b.build().unwrap()
    }

    #[test]
    fn unreachable_location_gives_zero() {
        let net = net();
        let goal = Goal::in_location(&net, "p", "never").unwrap();
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unreachable);
    }

    #[test]
    fn dead_flag_expression_gives_zero() {
        let net = net();
        let flag = net.var_id("flag").unwrap();
        let goal = Goal::expr(Expr::var(flag));
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unreachable);
    }

    #[test]
    fn initially_true_goal_gives_one() {
        let net = net();
        let goal = Goal::in_location(&net, "p", "idle").unwrap();
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::InitiallySatisfied);
    }

    #[test]
    fn reachable_goal_stays_unknown() {
        let net = net();
        let goal = Goal::in_location(&net, "p", "alarm").unwrap();
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unknown);
    }

    #[test]
    fn combinators_compose_three_valued() {
        let net = net();
        let dead = Goal::in_location(&net, "p", "never").unwrap();
        let maybe = Goal::in_location(&net, "p", "alarm").unwrap();
        // dead ∧ maybe is still dead; dead ∨ maybe is undecided; ¬dead is
        // definitely true (P = 1: it holds initially too, but the And/Or
        // paths below bypass the concrete check).
        let p = TimedReach::new(dead.clone().and(maybe.clone()), 10.0);
        assert_eq!(pre_verdict(&net, &p), PreVerdict::Unreachable);
        let p = TimedReach::new(dead.clone().or(maybe), 10.0);
        assert_eq!(pre_verdict(&net, &p), PreVerdict::Unknown);
        let p = TimedReach::new(dead.not(), 10.0);
        assert_eq!(pre_verdict(&net, &p), PreVerdict::InitiallySatisfied);
    }

    #[test]
    fn timed_goals_are_never_decided_dead_by_the_clock() {
        // x ≥ 5 is false initially but reachable mid-delay: the store pins
        // timed variables to ⊤, so the abstraction must stay undecided.
        let net = net();
        let x = net.var_id("x").unwrap();
        let goal = Goal::expr(Expr::var(x).ge(Expr::real(5.0)));
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 10.0)), PreVerdict::Unknown);
    }

    #[test]
    fn deadline_miss_is_decided_by_the_zone_domain() {
        // alarm needs x ≥ 5 with x never reset, so it cannot be entered
        // before t = 5: a deadline of 2 is a provable miss, a deadline of
        // 5 (non-strict) is not.
        let net = net();
        let goal = Goal::in_location(&net, "p", "alarm").unwrap();
        assert_eq!(
            pre_verdict(&net, &TimedReach::new(goal.clone(), 2.0)),
            PreVerdict::DeadlineUnreachable
        );
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal.clone(), 5.0)), PreVerdict::Unknown);
        // The opt-out degrades the timed verdict back to unknown.
        assert_eq!(pre_verdict_with(&net, &TimedReach::new(goal, 2.0), false), PreVerdict::Unknown);
        assert_eq!(PreVerdict::DeadlineUnreachable.exact_probability(), Some(0.0),);
        assert_eq!(PreVerdict::DeadlineUnreachable.as_str(), "deadline-unreachable");
    }

    #[test]
    fn expression_goals_bound_through_effect_writes() {
        // flag := true only on a transition guarded by x ≥ 5, so the
        // boolean goal `flag` inherits the clock bound through the cone.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let flag = b.var("flag", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let idle = a.location("idle");
        let done = a.location("done");
        a.guarded(
            idle,
            ActionId::TAU,
            Expr::var(x).ge(Expr::real(5.0)),
            [Effect::assign(flag, Expr::TRUE)],
            done,
        );
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(flag));
        assert_eq!(
            pre_verdict(&net, &TimedReach::new(goal.clone(), 2.0)),
            PreVerdict::DeadlineUnreachable
        );
        assert_eq!(pre_verdict(&net, &TimedReach::new(goal, 6.0)), PreVerdict::Unknown);
    }

    #[test]
    fn goal_targets_seed_locations_and_cone_writers() {
        let net = net();
        let fix = slim_analysis::analyze_network(&net);
        let goal = Goal::in_location(&net, "p", "alarm").unwrap();
        assert_eq!(goal_distance_targets(&net, &fix, &goal), vec![(ProcId(0), LocId(1), 0)]);
        // An expression goal seeds the sources of live transitions that
        // write its cone (`flag` is never written → no targets).
        let flag = net.var_id("flag").unwrap();
        let goal = Goal::expr(Expr::var(flag));
        assert!(goal_distance_targets(&net, &fix, &goal).is_empty());
    }
}
