//! Timed reachability properties.
//!
//! The paper's tool evaluates the COMPASS *probabilistic existence*
//! pattern, i.e. the CSL formula `P(◇[0,u] goal)` (§V-d). A [`Goal`] is a
//! Boolean combination of data-expression atoms and location atoms; a
//! [`TimedReach`] property bounds the reachability time by `u`.

use slim_automata::error::EvalError;
use slim_automata::interval::IntervalSet;
use slim_automata::linear::{solve, DelayEnv};
use slim_automata::prelude::*;
use slim_obs::profile::{NoopProfile, ProfileHooks};

/// A [`Goal`] lowered onto a network's compiled step tables: every
/// expression atom becomes a [`CompiledPredicate`], so repeated window
/// evaluation through [`CompiledGoal::window_into`] performs no heap
/// allocation in steady state (combinator temporaries come from a
/// [`GoalPool`] free-list).
#[derive(Debug, Clone)]
pub enum CompiledGoal {
    /// A compiled Boolean expression over the network's variables.
    Pred(CompiledPredicate),
    /// True when automaton `proc` is in location `loc`.
    InLocation(ProcId, LocId),
    /// Conjunction.
    And(Box<CompiledGoal>, Box<CompiledGoal>),
    /// Disjunction.
    Or(Box<CompiledGoal>, Box<CompiledGoal>),
    /// Negation.
    Not(Box<CompiledGoal>),
}

/// Free-list of interval sets recycled across goal-window evaluations.
///
/// `window_into` needs one temporary per combinator level; taking them
/// from the pool (and returning them afterwards) keeps the recursion
/// allocation-free once the pool has warmed up to the goal's depth.
#[derive(Debug, Default)]
pub struct GoalPool {
    free: Vec<IntervalSet>,
}

impl GoalPool {
    /// Creates an empty pool.
    pub fn new() -> GoalPool {
        GoalPool::default()
    }

    fn take(&mut self) -> IntervalSet {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, set: IntervalSet) {
        self.free.push(set);
    }
}

impl CompiledGoal {
    /// Writes the goal's delay window in `state` into `out` — the compiled
    /// counterpart of [`Goal::window`], byte-identical in result and error
    /// behavior but free of per-call allocation.
    ///
    /// # Errors
    /// Linear-solver errors for non-linear goal expressions.
    pub fn window_into(
        &self,
        net: &Network,
        step: &mut StepScratch,
        pool: &mut GoalPool,
        state: &NetState,
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        self.window_with(net, step, pool, state, out, false, &mut NoopProfile)
    }

    /// [`CompiledGoal::window_into`] without the per-atom rate refresh:
    /// evaluates every predicate atom against the rates already in the
    /// step scratch (see [`Network::rates_refresh`]), so a stepping loop
    /// that refreshes once per step pays for exactly one refresh no matter
    /// how many atoms the goal has. Bit-identical to the refreshing form.
    ///
    /// # Errors
    /// Linear-solver errors for non-linear goal expressions.
    pub fn window_rated(
        &self,
        net: &Network,
        step: &mut StepScratch,
        pool: &mut GoalPool,
        state: &NetState,
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        self.window_with(net, step, pool, state, out, true, &mut NoopProfile)
    }

    /// [`CompiledGoal::window_rated`] with profiling hooks: records the
    /// predicate-program opcodes every atom executes.
    ///
    /// # Errors
    /// Linear-solver errors for non-linear goal expressions.
    pub fn window_rated_prof<P: ProfileHooks>(
        &self,
        net: &Network,
        step: &mut StepScratch,
        pool: &mut GoalPool,
        state: &NetState,
        out: &mut IntervalSet,
        prof: &mut P,
    ) -> Result<(), EvalError> {
        self.window_with(net, step, pool, state, out, true, prof)
    }

    #[allow(clippy::too_many_arguments)]
    fn window_with<P: ProfileHooks>(
        &self,
        net: &Network,
        step: &mut StepScratch,
        pool: &mut GoalPool,
        state: &NetState,
        out: &mut IntervalSet,
        rated: bool,
        prof: &mut P,
    ) -> Result<(), EvalError> {
        match self {
            CompiledGoal::Pred(p) => {
                if rated {
                    net.predicate_window_rated_prof(step, p, state, out, prof)
                } else {
                    net.predicate_window_into(step, p, state, out)
                }
            }
            CompiledGoal::InLocation(p, l) => {
                if state.locs[p.0] == *l {
                    out.set_all();
                } else {
                    out.clear();
                }
                Ok(())
            }
            CompiledGoal::And(a, b) | CompiledGoal::Or(a, b) => {
                a.window_with(net, step, pool, state, out, rated, prof)?;
                let mut wb = pool.take();
                b.window_with(net, step, pool, state, &mut wb, rated, prof)?;
                let mut combined = pool.take();
                if matches!(self, CompiledGoal::And(..)) {
                    out.intersect_into(&wb, &mut combined);
                } else {
                    out.union_into(&wb, &mut combined);
                }
                std::mem::swap(out, &mut combined);
                pool.put(wb);
                pool.put(combined);
                Ok(())
            }
            CompiledGoal::Not(a) => {
                a.window_with(net, step, pool, state, out, rated, prof)?;
                let mut flipped = pool.take();
                out.complement_into(&mut flipped);
                std::mem::swap(out, &mut flipped);
                pool.put(flipped);
                Ok(())
            }
        }
    }
}

/// A state predicate over a network: data expressions plus location atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum Goal {
    /// A Boolean expression over the network's variables.
    Expr(Expr),
    /// True when automaton `proc` is in location `loc`.
    InLocation(ProcId, LocId),
    /// Conjunction.
    And(Box<Goal>, Box<Goal>),
    /// Disjunction.
    Or(Box<Goal>, Box<Goal>),
    /// Negation.
    Not(Box<Goal>),
}

impl Goal {
    /// Goal from a Boolean expression.
    pub fn expr(e: Expr) -> Goal {
        Goal::Expr(e)
    }

    /// Goal naming a location of a named automaton.
    ///
    /// # Errors
    /// Returns the unknown name when the automaton or location does not
    /// exist.
    pub fn in_location(net: &Network, proc: &str, loc: &str) -> Result<Goal, String> {
        net.loc_id(proc, loc)
            .map(|(p, l)| Goal::InLocation(p, l))
            .ok_or_else(|| format!("{proc}.{loc}"))
    }

    /// Conjunction.
    pub fn and(self, rhs: Goal) -> Goal {
        Goal::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Goal) -> Goal {
        Goal::Or(Box::new(self), Box::new(rhs))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Goal {
        Goal::Not(Box::new(self))
    }

    /// Evaluates the goal in a concrete state.
    ///
    /// # Errors
    /// Expression-evaluation errors.
    pub fn holds(&self, net: &Network, state: &NetState) -> Result<bool, EvalError> {
        match self {
            Goal::Expr(e) => net.eval_bool(state, e),
            Goal::InLocation(p, l) => Ok(state.locs[p.0] == *l),
            Goal::And(a, b) => Ok(a.holds(net, state)? && b.holds(net, state)?),
            Goal::Or(a, b) => Ok(a.holds(net, state)? || b.holds(net, state)?),
            Goal::Not(a) => Ok(!a.holds(net, state)?),
        }
    }

    /// The set of delays `d ≥ 0` (from the current instant, locations
    /// unchanged) at which the goal holds — goals over clocks/continuous
    /// variables can become true *during* a delay, which timed reachability
    /// must detect (goal hit mid-delay counts).
    ///
    /// # Errors
    /// Linear-solver errors for non-linear goal expressions.
    pub fn window(&self, net: &Network, state: &NetState) -> Result<IntervalSet, EvalError> {
        let rates = net.active_rates(state);
        let rate = |v: VarId| rates[v.0];
        let env = DelayEnv::new(&state.nu, &rate);
        self.window_in(&env, state)
    }

    /// Lowers the goal onto `net`'s compiled kernel for allocation-free
    /// window evaluation via [`CompiledGoal::window_into`].
    pub fn compile(&self, net: &Network) -> CompiledGoal {
        self.compile_with(net, &CompileOptions::default())
    }

    /// [`Goal::compile`] under explicit [`CompileOptions`] — the
    /// differential harnesses use [`CompileOptions::reference`] to pin the
    /// unfused predicate kernel.
    pub fn compile_with(&self, net: &Network, opts: &CompileOptions) -> CompiledGoal {
        match self {
            Goal::Expr(e) => CompiledGoal::Pred(net.compile_predicate_with(e, opts)),
            Goal::InLocation(p, l) => CompiledGoal::InLocation(*p, *l),
            Goal::And(a, b) => CompiledGoal::And(
                Box::new(a.compile_with(net, opts)),
                Box::new(b.compile_with(net, opts)),
            ),
            Goal::Or(a, b) => CompiledGoal::Or(
                Box::new(a.compile_with(net, opts)),
                Box::new(b.compile_with(net, opts)),
            ),
            Goal::Not(a) => CompiledGoal::Not(Box::new(a.compile_with(net, opts))),
        }
    }

    fn window_in(&self, env: &DelayEnv<'_>, state: &NetState) -> Result<IntervalSet, EvalError> {
        match self {
            Goal::Expr(e) => solve(e, env),
            Goal::InLocation(p, l) => {
                Ok(if state.locs[p.0] == *l { IntervalSet::all() } else { IntervalSet::empty() })
            }
            Goal::And(a, b) => Ok(a.window_in(env, state)?.intersect(&b.window_in(env, state)?)),
            Goal::Or(a, b) => Ok(a.window_in(env, state)?.union(&b.window_in(env, state)?)),
            Goal::Not(a) => Ok(a.window_in(env, state)?.complement()),
        }
    }
}

/// A timed reachability property `P(◇[0, bound] goal)` — optionally a
/// bounded **until** `P(hold U[0, bound] goal)`.
///
/// The paper's tool ships the probabilistic-existence pattern
/// (`hold = None`); bounded until is the first step of its stated future
/// work towards full CSL (§VII-A). Semantics: a path satisfies the until
/// property iff the goal holds at some `t ≤ bound` and `hold` holds at
/// every `t' < t` (at `t` itself `hold` may already be false).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedReach {
    /// The goal predicate ψ.
    pub goal: Goal,
    /// The predicate φ that must hold until the goal does (`None` = true,
    /// plain reachability).
    pub hold: Option<Goal>,
    /// The (inclusive) upper time bound `u`.
    pub bound: f64,
}

impl TimedReach {
    /// Creates a plain reachability property `P(◇[0, bound] goal)`.
    ///
    /// # Panics
    /// Panics if `bound` is negative or NaN.
    pub fn new(goal: Goal, bound: f64) -> TimedReach {
        assert!(bound >= 0.0, "time bound must be non-negative, got {bound}");
        TimedReach { goal, hold: None, bound }
    }

    /// Creates a bounded until property `P(hold U[0, bound] goal)`.
    ///
    /// # Panics
    /// Panics if `bound` is negative or NaN.
    pub fn until(hold: Goal, goal: Goal, bound: f64) -> TimedReach {
        assert!(bound >= 0.0, "time bound must be non-negative, got {bound}");
        TimedReach { goal, hold: Some(hold), bound }
    }

    /// Remaining time budget from a state (zero when exhausted).
    pub fn remaining(&self, state: &NetState) -> f64 {
        (self.bound - state.time).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock_net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let f = b.var("flag", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("zero");
        let l1 = a.location("one");
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(x).ge(Expr::real(5.0)),
            [Effect::assign(f, Expr::bool(true))],
            l1,
        );
        b.add_automaton(a);
        b.build().unwrap()
    }

    #[test]
    fn holds_on_expression_and_location() {
        let net = clock_net();
        let s = net.initial_state().unwrap();
        let g_flag = Goal::expr(Expr::var(net.var_id("flag").unwrap()));
        assert!(!g_flag.holds(&net, &s).unwrap());
        let g_loc = Goal::in_location(&net, "p", "zero").unwrap();
        assert!(g_loc.holds(&net, &s).unwrap());
        let g_loc1 = Goal::in_location(&net, "p", "one").unwrap();
        assert!(!g_loc1.holds(&net, &s).unwrap());
        assert!(Goal::in_location(&net, "p", "nope").is_err());
        assert!(Goal::in_location(&net, "q", "zero").is_err());
    }

    #[test]
    fn boolean_combinators() {
        let net = clock_net();
        let s = net.initial_state().unwrap();
        let yes = Goal::in_location(&net, "p", "zero").unwrap();
        let no = Goal::in_location(&net, "p", "one").unwrap();
        assert!(yes.clone().or(no.clone()).holds(&net, &s).unwrap());
        assert!(!yes.and(no.clone()).holds(&net, &s).unwrap());
        assert!(no.not().holds(&net, &s).unwrap());
    }

    #[test]
    fn window_over_clock_goal() {
        let net = clock_net();
        let s = net.initial_state().unwrap();
        let x = net.var_id("x").unwrap();
        let g = Goal::expr(Expr::var(x).ge(Expr::real(3.0)));
        let w = g.window(&net, &s).unwrap();
        assert!(!w.contains(2.9) && w.contains(3.0));
        // Location atoms are delay-independent.
        let gl = Goal::in_location(&net, "p", "zero").unwrap();
        assert_eq!(gl.window(&net, &s).unwrap(), IntervalSet::all());
    }

    #[test]
    fn window_combines_sets() {
        let net = clock_net();
        let s = net.initial_state().unwrap();
        let x = net.var_id("x").unwrap();
        let a = Goal::expr(Expr::var(x).ge(Expr::real(3.0)));
        let b = Goal::expr(Expr::var(x).le(Expr::real(4.0)));
        let w = a.and(b).window(&net, &s).unwrap();
        assert!(w.contains(3.5) && !w.contains(4.5) && !w.contains(2.0));
    }

    #[test]
    fn compiled_goal_window_matches_legacy() {
        let net = clock_net();
        let mut s = net.initial_state().unwrap();
        s.time = 1.5;
        let x = net.var_id("x").unwrap();
        let a = Goal::expr(Expr::var(x).ge(Expr::real(3.0)));
        let b = Goal::expr(Expr::var(x).le(Expr::real(4.0)));
        let loc = Goal::in_location(&net, "p", "zero").unwrap();
        let goals = [
            a.clone(),
            a.clone().and(b.clone()),
            a.clone().or(b.clone()),
            a.clone().not(),
            loc.clone().and(a.or(b.not())),
            loc.not(),
        ];
        let mut step = StepScratch::new();
        let mut pool = GoalPool::new();
        let mut out = IntervalSet::empty();
        for g in &goals {
            let compiled = g.compile(&net);
            // Twice: the second pass runs on a warmed pool.
            for _ in 0..2 {
                compiled.window_into(&net, &mut step, &mut pool, &s, &mut out).unwrap();
                assert_eq!(out, g.window(&net, &s).unwrap(), "goal {g:?}");
            }
        }
    }

    #[test]
    fn remaining_budget_clamps() {
        let net = clock_net();
        let mut s = net.initial_state().unwrap();
        let p = TimedReach::new(Goal::expr(Expr::TRUE), 10.0);
        assert_eq!(p.remaining(&s), 10.0);
        s.time = 12.0;
        assert_eq!(p.remaining(&s), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bound_panics() {
        TimedReach::new(Goal::expr(Expr::TRUE), -1.0);
    }
}
