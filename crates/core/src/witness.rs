//! Deterministic witness capture: the first *K* goal-reaching and the
//! first *K* dead-/timelocked paths of a run.
//!
//! "First" is defined over the runner's deterministic sample-consumption
//! order, which coincides with path-index order for every worker count
//! (see `runner`): consumed sample *j* is exactly path index *j*. The
//! selector therefore only records **indices** during the run — O(K)
//! memory regardless of path count or length — and the full event traces
//! are re-generated afterwards by [`capture_witnesses`], which replays
//! each selected index through its own `path_rng(seed, index)` stream.
//! For a fixed `(seed, workers)` pair the captured traces are
//! byte-identical across runs and worker counts.

use crate::config::SimConfig;
use crate::engine::{PathGenerator, SimScratch};
use crate::error::SimError;
use crate::property::TimedReach;
use crate::trace::{MemorySink, PathTracer, TraceEvent, TraceOptions};
use crate::verdict::{PathOutcome, Verdict};
use slim_automata::prelude::Network;
use slim_stats::rng::path_rng;

/// Which witness list a path belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessCategory {
    /// The path reached the goal (verdict `satisfied`).
    Goal,
    /// The path dead- or timelocked.
    Lock,
}

impl WitnessCategory {
    /// Stable code used in file names (`goal` / `lock`).
    pub fn code(self) -> &'static str {
        match self {
            WitnessCategory::Goal => "goal",
            WitnessCategory::Lock => "lock",
        }
    }
}

/// Records the first *K* goal and lock path indices in consumption order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessSelector {
    k: usize,
    goal: Vec<u64>,
    lock: Vec<u64>,
}

impl WitnessSelector {
    /// Creates a selector keeping at most `k` indices per category.
    pub fn new(k: usize) -> WitnessSelector {
        WitnessSelector { k, goal: Vec::new(), lock: Vec::new() }
    }

    /// The per-category capacity.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offers one accepted sample, in consumption order.
    pub fn offer(&mut self, index: u64, verdict: Verdict) {
        if verdict.is_success() {
            if self.goal.len() < self.k {
                self.goal.push(index);
            }
        } else if verdict.is_lock() && self.lock.len() < self.k {
            self.lock.push(index);
        }
    }

    /// Selected goal-path indices, in consumption order.
    pub fn goal(&self) -> &[u64] {
        &self.goal
    }

    /// Selected lock-path indices, in consumption order.
    pub fn lock(&self) -> &[u64] {
        &self.lock
    }

    /// True once both categories are at capacity (offers become no-ops).
    pub fn is_full(&self) -> bool {
        self.goal.len() == self.k && self.lock.len() == self.k
    }

    /// All selections as `(category, index)` pairs, goals first.
    pub fn selections(&self) -> Vec<(WitnessCategory, u64)> {
        self.goal
            .iter()
            .map(|&i| (WitnessCategory::Goal, i))
            .chain(self.lock.iter().map(|&i| (WitnessCategory::Lock, i)))
            .collect()
    }
}

/// One captured witness path: its index, category, outcome, and the full
/// structured event trace (without a `Start` header — front-ends prepend
/// one with run context).
#[derive(Debug, Clone)]
pub struct Witness {
    /// Path index within the run (also its RNG stream selector).
    pub index: u64,
    /// Which list the path was selected into.
    pub category: WitnessCategory,
    /// The re-generated outcome.
    pub outcome: PathOutcome,
    /// The path's structured events, ending with the verdict.
    pub events: Vec<TraceEvent>,
}

/// Re-generates the selected witness paths with full event traces.
///
/// Each index re-runs the engine with `path_rng(config.seed, index)` and a
/// fresh strategy — bit-identical to the path the run consumed, because
/// strategies are stateless and the observer never touches the RNG.
///
/// # Errors
/// Propagates engine errors, and [`SimError::ReplayMismatch`] if a
/// re-generated path lands in a different verdict category than the one
/// it was selected for (which would indicate broken determinism).
pub fn capture_witnesses(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
    selector: &WitnessSelector,
    opts: TraceOptions,
) -> Result<Vec<Witness>, SimError> {
    let gen = PathGenerator::new(net, property, config.max_steps);
    let mut scratch = SimScratch::new();
    let mut out = Vec::new();
    for (category, index) in selector.selections() {
        let mut rng = path_rng(config.seed, index);
        let mut strategy = config.strategy.instantiate();
        let mut sink = MemorySink::default();
        let outcome = {
            let mut tracer = PathTracer::with_options(net, &mut sink, opts);
            gen.generate_traced_with(&mut scratch, strategy.as_mut(), &mut rng, &mut tracer)?
        };
        let matches = match category {
            WitnessCategory::Goal => outcome.verdict.is_success(),
            WitnessCategory::Lock => outcome.verdict.is_lock(),
        };
        if !matches {
            return Err(SimError::ReplayMismatch {
                event: 0,
                detail: format!(
                    "witness path {index} re-generated as {} but was selected as a {} witness",
                    outcome.verdict,
                    category.code()
                ),
            });
        }
        out.push(Witness { index, category, outcome, events: sink.events });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_keeps_first_k_per_category() {
        let mut s = WitnessSelector::new(2);
        s.offer(0, Verdict::TimeBoundExceeded);
        s.offer(1, Verdict::Satisfied);
        s.offer(2, Verdict::Deadlock);
        s.offer(3, Verdict::Satisfied);
        s.offer(4, Verdict::Satisfied); // over capacity — dropped
        s.offer(5, Verdict::Timelock);
        s.offer(6, Verdict::Timelock); // over capacity — dropped
        assert_eq!(s.goal(), &[1, 3]);
        assert_eq!(s.lock(), &[2, 5]);
        assert!(s.is_full());
        assert_eq!(
            s.selections(),
            vec![
                (WitnessCategory::Goal, 1),
                (WitnessCategory::Goal, 3),
                (WitnessCategory::Lock, 2),
                (WitnessCategory::Lock, 5),
            ]
        );
    }

    #[test]
    fn category_codes() {
        assert_eq!(WitnessCategory::Goal.code(), "goal");
        assert_eq!(WitnessCategory::Lock.code(), "lock");
    }
}
