//! Path verdicts and aggregated path statistics.

use std::fmt;

/// How a generated path ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The goal was reached within the time bound — the sample is `true`.
    Satisfied,
    /// The time bound elapsed without reaching the goal.
    TimeBoundExceeded,
    /// The `hold` predicate of a bounded-until property was violated
    /// before the goal was reached.
    HoldViolated,
    /// No discrete transition will ever be possible and time may diverge —
    /// a *deadlock* in the sense of §III-D.
    Deadlock,
    /// An invariant forces progress but no transition is enabled at the
    /// boundary — a *timelock* (the actionlocks MaxTime hunts for, §III-B).
    Timelock,
    /// The per-path step limit was hit (Zeno behavior guard).
    StepLimit,
}

impl Verdict {
    /// Whether this path satisfies the reachability property.
    ///
    /// Per §III-D, dead- and timelocked paths falsify the property: a goal
    /// state can no longer be reached from them.
    pub fn is_success(self) -> bool {
        matches!(self, Verdict::Satisfied)
    }

    /// Whether this verdict is a dead- or timelock (relevant for the
    /// deadlock policy).
    pub fn is_lock(self) -> bool {
        matches!(self, Verdict::Deadlock | Verdict::Timelock)
    }

    /// Stable machine-readable code used in trace files and reports.
    pub fn code(self) -> &'static str {
        match self {
            Verdict::Satisfied => "satisfied",
            Verdict::TimeBoundExceeded => "time_bound_exceeded",
            Verdict::HoldViolated => "hold_violated",
            Verdict::Deadlock => "deadlock",
            Verdict::Timelock => "timelock",
            Verdict::StepLimit => "step_limit",
        }
    }

    /// Parses a [`Self::code`] string back into a verdict.
    pub fn from_code(code: &str) -> Option<Verdict> {
        Some(match code {
            "satisfied" => Verdict::Satisfied,
            "time_bound_exceeded" => Verdict::TimeBoundExceeded,
            "hold_violated" => Verdict::HoldViolated,
            "deadlock" => Verdict::Deadlock,
            "timelock" => Verdict::Timelock,
            "step_limit" => Verdict::StepLimit,
            _ => return None,
        })
    }

    /// All verdicts, in [`Self::code`] order.
    pub const ALL: [Verdict; 6] = [
        Verdict::Satisfied,
        Verdict::TimeBoundExceeded,
        Verdict::HoldViolated,
        Verdict::Deadlock,
        Verdict::Timelock,
        Verdict::StepLimit,
    ];
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Satisfied => "satisfied",
            Verdict::TimeBoundExceeded => "time bound exceeded",
            Verdict::HoldViolated => "hold predicate violated",
            Verdict::Deadlock => "deadlock",
            Verdict::Timelock => "timelock",
            Verdict::StepLimit => "step limit",
        };
        write!(f, "{s}")
    }
}

/// Outcome of generating one path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// Terminal classification.
    pub verdict: Verdict,
    /// Number of discrete steps taken.
    pub steps: u64,
    /// Model time at which the path ended (goal hit, bound, or lock).
    pub end_time: f64,
}

/// Aggregate counters over many paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Paths satisfying the property.
    pub satisfied: u64,
    /// Paths exceeding the time bound.
    pub time_bound_exceeded: u64,
    /// Paths violating the until-property's hold predicate.
    pub hold_violated: u64,
    /// Deadlocked paths.
    pub deadlocks: u64,
    /// Timelocked paths.
    pub timelocks: u64,
    /// Step-limited paths.
    pub step_limited: u64,
    /// Total discrete steps across all paths.
    pub total_steps: u64,
    /// Satisfaction-time accumulators over satisfied paths (×1e6 fixed
    /// point, keeping `PathStats` hashable/Eq): sum, min, max.
    sat_time_sum_micros: u64,
    sat_time_min_micros: u64,
    sat_time_max_micros: u64,
}

impl PathStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: &PathOutcome) {
        match outcome.verdict {
            Verdict::Satisfied => {
                self.satisfied += 1;
                let micros = (outcome.end_time.max(0.0) * 1e6) as u64;
                self.sat_time_sum_micros += micros;
                if self.satisfied == 1 || micros < self.sat_time_min_micros {
                    self.sat_time_min_micros = micros;
                }
                if micros > self.sat_time_max_micros {
                    self.sat_time_max_micros = micros;
                }
            }
            Verdict::TimeBoundExceeded => self.time_bound_exceeded += 1,
            Verdict::HoldViolated => self.hold_violated += 1,
            Verdict::Deadlock => self.deadlocks += 1,
            Verdict::Timelock => self.timelocks += 1,
            Verdict::StepLimit => self.step_limited += 1,
        }
        self.total_steps += outcome.steps;
    }

    /// Total number of paths recorded.
    pub fn total(&self) -> u64 {
        self.satisfied
            + self.time_bound_exceeded
            + self.hold_violated
            + self.deadlocks
            + self.timelocks
            + self.step_limited
    }

    /// Merges another stats block (parallel workers).
    pub fn merge(&mut self, other: &PathStats) {
        self.satisfied += other.satisfied;
        self.time_bound_exceeded += other.time_bound_exceeded;
        self.hold_violated += other.hold_violated;
        self.deadlocks += other.deadlocks;
        self.timelocks += other.timelocks;
        self.step_limited += other.step_limited;
        self.total_steps += other.total_steps;
        self.sat_time_sum_micros += other.sat_time_sum_micros;
        if other.satisfied > 0 {
            // `self.satisfied` already includes `other`'s; if they are
            // equal, `self` had no satisfied paths of its own before.
            let self_had_none = self.satisfied == other.satisfied;
            self.sat_time_min_micros = if self_had_none {
                other.sat_time_min_micros
            } else {
                self.sat_time_min_micros.min(other.sat_time_min_micros)
            };
            self.sat_time_max_micros = self.sat_time_max_micros.max(other.sat_time_max_micros);
        }
    }

    /// Mean model time at which satisfied paths hit the goal
    /// (time-to-failure summary; `None` without satisfied paths).
    pub fn mean_satisfaction_time(&self) -> Option<f64> {
        if self.satisfied == 0 {
            None
        } else {
            Some(self.sat_time_sum_micros as f64 / 1e6 / self.satisfied as f64)
        }
    }

    /// Earliest goal-hit time over satisfied paths.
    pub fn min_satisfaction_time(&self) -> Option<f64> {
        (self.satisfied > 0).then(|| self.sat_time_min_micros as f64 / 1e6)
    }

    /// Latest goal-hit time over satisfied paths.
    pub fn max_satisfaction_time(&self) -> Option<f64> {
        (self.satisfied > 0).then(|| self.sat_time_max_micros as f64 / 1e6)
    }

    /// Mean discrete steps per path.
    pub fn mean_steps(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            self.total_steps as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_classification() {
        assert!(Verdict::Satisfied.is_success());
        for v in [
            Verdict::TimeBoundExceeded,
            Verdict::HoldViolated,
            Verdict::Deadlock,
            Verdict::Timelock,
            Verdict::StepLimit,
        ] {
            assert!(!v.is_success(), "{v}");
        }
        assert!(Verdict::Deadlock.is_lock());
        assert!(Verdict::Timelock.is_lock());
        assert!(!Verdict::Satisfied.is_lock());
    }

    #[test]
    fn codes_roundtrip() {
        for v in Verdict::ALL {
            assert_eq!(Verdict::from_code(v.code()), Some(v));
        }
        assert_eq!(Verdict::from_code("nope"), None);
    }

    #[test]
    fn stats_record_and_merge() {
        let mut a = PathStats::default();
        a.record(&PathOutcome { verdict: Verdict::Satisfied, steps: 3, end_time: 1.0 });
        a.record(&PathOutcome { verdict: Verdict::Deadlock, steps: 5, end_time: 2.0 });
        let mut b = PathStats::default();
        b.record(&PathOutcome { verdict: Verdict::TimeBoundExceeded, steps: 2, end_time: 9.0 });
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.satisfied, 1);
        assert_eq!(a.deadlocks, 1);
        assert_eq!(a.time_bound_exceeded, 1);
        assert_eq!(a.total_steps, 10);
        assert!((a.mean_steps() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn satisfaction_time_summaries() {
        let mut a = PathStats::default();
        assert_eq!(a.mean_satisfaction_time(), None);
        a.record(&PathOutcome { verdict: Verdict::Satisfied, steps: 1, end_time: 2.0 });
        a.record(&PathOutcome { verdict: Verdict::Satisfied, steps: 1, end_time: 4.0 });
        a.record(&PathOutcome { verdict: Verdict::TimeBoundExceeded, steps: 1, end_time: 9.0 });
        assert!((a.mean_satisfaction_time().unwrap() - 3.0).abs() < 1e-6);
        assert!((a.min_satisfaction_time().unwrap() - 2.0).abs() < 1e-6);
        assert!((a.max_satisfaction_time().unwrap() - 4.0).abs() < 1e-6);

        // Merge: min/max propagate across blocks, including from/into
        // blocks without satisfied paths.
        let mut b = PathStats::default();
        b.record(&PathOutcome { verdict: Verdict::Satisfied, steps: 1, end_time: 1.0 });
        a.merge(&b);
        assert!((a.min_satisfaction_time().unwrap() - 1.0).abs() < 1e-6);
        assert!((a.max_satisfaction_time().unwrap() - 4.0).abs() < 1e-6);
        let mut empty = PathStats::default();
        empty.merge(&a);
        assert!((empty.min_satisfaction_time().unwrap() - 1.0).abs() < 1e-6);
        let before = a;
        a.merge(&PathStats::default());
        assert_eq!(a.min_satisfaction_time(), before.min_satisfaction_time());
    }

    #[test]
    fn empty_stats() {
        let s = PathStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.mean_steps(), 0.0);
    }
}
