//! Rare-event analysis by importance sampling (§VI of the paper).
//!
//! Plain statistical model checking is "inherently unlikely" to observe
//! rare events: at `p ≈ 10⁻⁷`, the CH bound's absolute ε is useless and
//! even a hit is improbable. The standard remedy — which the paper cites
//! as the rare-event literature — is to *bias the model so the event
//! becomes likely and adjust the final probability*: here, every
//! Markovian (fault) rate is multiplied by a boost factor during
//! simulation, and every path carries its exact likelihood ratio. The
//! weighted indicator is an unbiased estimator of the true probability,
//! and a relative-precision CLT rule decides when to stop.
//!
//! Guarded (timed) behavior and strategy resolution are untouched —
//! only the stochastic fault process is biased.

use crate::config::DeadlockPolicy;
use crate::engine::{BatchScratch, PathGenerator};
use crate::error::SimError;
use crate::property::TimedReach;
use crate::strategy::StrategyKind;
use crate::verdict::{PathOutcome, PathStats};
use slim_automata::prelude::Network;
use slim_stats::weighted::{WeightedEstimate, WeightedEstimator};
use std::time::{Duration, Instant};

/// Configuration of a rare-event analysis.
#[derive(Debug, Clone, Copy)]
pub struct RareEventConfig {
    /// Markovian rate multiplier (> 1 accelerates faults).
    pub boost: f64,
    /// Target relative half-width of the confidence interval.
    pub rel_err: f64,
    /// Confidence level of the interval.
    pub confidence: f64,
    /// Strategy resolving the (unbiased) timed non-determinism.
    pub strategy: StrategyKind,
    /// Hard cap on generated paths.
    pub max_paths: u64,
    /// Per-path step limit.
    pub max_steps: u64,
    /// Deadlock handling.
    pub deadlock_policy: DeadlockPolicy,
    /// Master seed.
    pub seed: u64,
    /// Lane width of the batched path kernel (see
    /// [`crate::config::SimConfig::batch_lanes`]); `1` disables batching.
    pub batch_lanes: usize,
}

impl Default for RareEventConfig {
    fn default() -> Self {
        RareEventConfig {
            boost: 100.0,
            rel_err: 0.1,
            confidence: 0.95,
            strategy: StrategyKind::Progressive,
            max_paths: 1_000_000,
            max_steps: 1_000_000,
            deadlock_policy: DeadlockPolicy::Falsify,
            seed: 0xAE0C0FFE,
            batch_lanes: 16,
        }
    }
}

/// Result of a rare-event analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RareEventResult {
    /// The weighted estimate (unbiased for the true probability).
    pub estimate: WeightedEstimate,
    /// Whether the relative-precision target was met within `max_paths`.
    pub converged: bool,
    /// Path verdict counters (under the *biased* measure).
    pub stats: PathStats,
    /// Wall-clock duration.
    pub wall: Duration,
}

/// Estimates `P(◇[0,u] goal)` (or bounded until) by importance sampling.
///
/// # Errors
/// Simulation errors; deadlocks under [`DeadlockPolicy::Error`].
///
/// # Panics
/// Panics unless `boost > 0`.
pub fn analyze_rare(
    net: &Network,
    property: &TimedReach,
    config: &RareEventConfig,
) -> Result<RareEventResult, SimError> {
    assert!(config.boost > 0.0 && config.boost.is_finite(), "boost must be positive");
    let start = Instant::now();
    let gen = PathGenerator::new(net, property, config.max_steps);
    let mut strategy = config.strategy.instantiate();
    let mut estimator = WeightedEstimator::new(config.rel_err, config.confidence);
    let mut stats = PathStats::default();

    let mut scratch = BatchScratch::new();
    let mut batch: Vec<Result<(PathOutcome, f64), SimError>> = Vec::new();
    let lanes = config.batch_lanes.max(1);
    let mut index = 0u64;
    'outer: while !estimator.is_complete() && index < config.max_paths {
        // Never batch past the path cap, so a capped run reports exactly
        // `max_paths` samples; a lane generated after the estimator
        // completed mid-batch is discarded unconsumed — the scalar loop
        // would never have sampled it.
        let count = (config.max_paths - index).min(lanes as u64) as usize;
        gen.generate_batch_biased_with(
            &mut scratch,
            strategy.as_mut(),
            config.seed,
            index,
            1,
            count,
            config.boost,
            &mut batch,
        );
        for res in batch.drain(..) {
            if estimator.is_complete() {
                break 'outer;
            }
            let (outcome, weight) = res?;
            if config.deadlock_policy == DeadlockPolicy::Error && outcome.verdict.is_lock() {
                return Err(SimError::DeadlockDetected {
                    time: outcome.end_time,
                    description: format!("{} after {} steps", outcome.verdict, outcome.steps),
                });
            }
            stats.record(&outcome);
            estimator.add(outcome.verdict.is_success(), weight);
        }
        index += count as u64;
    }

    Ok(RareEventResult {
        estimate: estimator.estimate(),
        converged: estimator.is_complete(),
        stats,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Goal;
    use slim_automata::prelude::*;
    use slim_stats::rng::path_rng;

    /// ok --λ--> failed with a tiny λ: P(◇[0,1] failed) = 1 − e^{−λ}.
    fn rare_net(lambda: f64) -> (Network, TimedReach) {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("unit");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, lambda, [], failed);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "unit", "failed").unwrap();
        (net, TimedReach::new(goal, 1.0))
    }

    #[test]
    fn estimates_rare_probability_within_relative_error() {
        let lambda = 1e-4;
        let (net, prop) = rare_net(lambda);
        let exact = 1.0 - (-lambda).exp(); // ≈ 1e-4
        let cfg = RareEventConfig {
            boost: 2_000.0, // biased rate 0.2: hits are common
            rel_err: 0.1,
            max_paths: 200_000,
            seed: 11,
            ..Default::default()
        };
        let r = analyze_rare(&net, &prop, &cfg).unwrap();
        assert!(r.converged, "did not converge: {}", r.estimate);
        let rel = (r.estimate.mean - exact).abs() / exact;
        assert!(rel < 0.25, "estimate {} vs exact {exact} (rel {rel})", r.estimate.mean);
        // Plain MC would need ~ 1/p ≈ 10⁴ paths per *hit*; IS needed far
        // fewer paths total.
        assert!(r.estimate.samples < 50_000, "used {} paths", r.estimate.samples);
        assert!(r.estimate.hits > 100, "only {} hits", r.estimate.hits);
    }

    #[test]
    fn boost_one_matches_unbiased_weighting() {
        let (net, prop) = rare_net(1.0); // not rare: p ≈ 0.632
        let cfg = RareEventConfig {
            boost: 1.0,
            rel_err: 0.05,
            max_paths: 100_000,
            seed: 3,
            ..Default::default()
        };
        let r = analyze_rare(&net, &prop, &cfg).unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        assert!(r.converged);
        assert!((r.estimate.mean - exact).abs() < 0.05, "{} vs {exact}", r.estimate.mean);
        // Unbiased run: every weight is exactly 1, so ESS = hits.
        assert!((r.estimate.effective_samples - r.estimate.hits as f64).abs() < 1e-6);
    }

    #[test]
    fn different_boosts_agree() {
        let lambda = 1e-3;
        let (net, prop) = rare_net(lambda);
        let exact = 1.0 - (-lambda).exp();
        let mut means = Vec::new();
        for boost in [200.0, 500.0, 1000.0] {
            let cfg = RareEventConfig {
                boost,
                rel_err: 0.1,
                max_paths: 100_000,
                seed: 5,
                ..Default::default()
            };
            let r = analyze_rare(&net, &prop, &cfg).unwrap();
            assert!(r.converged, "boost {boost} did not converge");
            means.push(r.estimate.mean);
        }
        for m in &means {
            let rel = (m - exact).abs() / exact;
            assert!(rel < 0.3, "mean {m} vs exact {exact}");
        }
    }

    #[test]
    fn guarded_behavior_not_biased() {
        // A guarded window with no Markovian transitions at all: the
        // boost must change nothing (weights are exactly 1).
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let hit = b.var("hit", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("w", Expr::var(x).le(Expr::real(5.0)), []);
        let l1 = a.location("done");
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(x).ge(Expr::real(1.0)),
            [Effect::assign(hit, Expr::bool(true))],
            l1,
        );
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(hit)), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let mut strategy = crate::strategy::Asap;
        let mut rng = path_rng(0, 0);
        let (out, w) = gen.generate_biased(&mut strategy, &mut rng, 50.0).unwrap();
        assert_eq!(out.verdict, crate::verdict::Verdict::Satisfied);
        assert!((w - 1.0).abs() < 1e-12, "weight {w} should be exactly 1");
    }

    #[test]
    fn max_paths_cap_reported() {
        let (net, prop) = rare_net(1e-9);
        let cfg = RareEventConfig {
            boost: 2.0, // far too small a boost: event stays rare
            rel_err: 0.01,
            max_paths: 200,
            seed: 1,
            ..Default::default()
        };
        let r = analyze_rare(&net, &prop, &cfg).unwrap();
        assert!(!r.converged);
        assert_eq!(r.estimate.samples, 200);
    }
}
