//! Analysis orchestration: drives the path generator until the statistical
//! generator is satisfied, sequentially or in parallel (§III-C).
//!
//! Reproducibility: path `i` always consumes RNG stream `derive(seed, i)`,
//! so the set of generated paths is identical for any worker count; with
//! sequential stopping rules the *order* samples are consumed in is fixed
//! by the round-robin collector, making results deterministic given
//! `(seed, workers)`.

use crate::config::{DeadlockPolicy, SimConfig};
use crate::engine::PathGenerator;
use crate::error::SimError;
use crate::property::TimedReach;
use crate::verdict::{PathOutcome, PathStats};
use slim_automata::prelude::Network;
use slim_stats::estimator::Estimate;
use slim_stats::parallel::{split_workload, RoundRobinCollector};
use slim_stats::rng::path_rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Result of a statistical analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// The probability estimate with its accuracy.
    pub estimate: Estimate,
    /// Path verdict counters.
    pub stats: PathStats,
    /// Wall-clock duration of the analysis.
    pub wall: Duration,
    /// Approximate peak memory attributable to the analysis (state size +
    /// bookkeeping), in bytes — the simulator's memory column of Table I.
    pub approx_memory_bytes: usize,
}

impl AnalysisResult {
    /// The estimated probability.
    pub fn probability(&self) -> f64 {
        self.estimate.mean
    }
}

/// Runs the statistical analysis described by `config`.
///
/// # Errors
/// * [`SimError::DeadlockDetected`] under [`DeadlockPolicy::Error`];
/// * evaluation errors from ill-formed dynamic behavior;
/// * worker failures in parallel mode.
pub fn analyze(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
) -> Result<AnalysisResult, SimError> {
    if config.workers <= 1 {
        analyze_sequential(net, property, config)
    } else {
        analyze_parallel(net, property, config)
    }
}

fn check_deadlock_policy(config: &SimConfig, outcome: &PathOutcome) -> Result<(), SimError> {
    if config.deadlock_policy == DeadlockPolicy::Error && outcome.verdict.is_lock() {
        return Err(SimError::DeadlockDetected {
            time: outcome.end_time,
            description: format!("{} after {} steps", outcome.verdict, outcome.steps),
        });
    }
    Ok(())
}

fn analyze_sequential(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
) -> Result<AnalysisResult, SimError> {
    let start = Instant::now();
    let mut generator = config.generator.instantiate(config.accuracy);
    let mut strategy = config.strategy.instantiate();
    let gen = PathGenerator::new(net, property, config.max_steps);
    let mut stats = PathStats::default();
    let mut index: u64 = 0;

    while !generator.is_complete() {
        let mut rng = path_rng(config.seed, index);
        let outcome = gen.generate(strategy.as_mut(), &mut rng)?;
        check_deadlock_policy(config, &outcome)?;
        stats.record(&outcome);
        generator.add(outcome.verdict.is_success());
        index += 1;
    }

    Ok(AnalysisResult {
        estimate: generator.estimate(),
        stats,
        wall: start.elapsed(),
        approx_memory_bytes: approx_memory(net, &stats),
    })
}

fn analyze_parallel(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
) -> Result<AnalysisResult, SimError> {
    let start = Instant::now();
    let mut generator = config.generator.instantiate(config.accuracy);
    let workers = config.workers;
    let stop = AtomicBool::new(false);

    // With an a-priori known sample count (CH bound), split statically:
    // each worker computes its share (§III-C's trivial solution). With
    // sequential generators the workers run until told to stop, and the
    // round-robin collector removes arrival-order bias.
    let quota: Option<Vec<u64>> = generator.known_target().map(|n| split_workload(n, workers));

    let mut collector = RoundRobinCollector::new(workers);
    let mut stats = PathStats::default();

    // A panicking worker propagates out of `std::thread::scope`; map that to
    // a structured error like the sequential path's failures.
    let scoped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| -> Result<(), SimError> {
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Result<PathOutcome, SimError>)>(
                workers * 64,
            );
            for w in 0..workers {
                let tx = tx.clone();
                let stop = &stop;
                let quota = quota.as_ref().map(|q| q[w]);
                let gen = PathGenerator::new(net, property, config.max_steps);
                let strategy_kind = config.strategy;
                let seed = config.seed;
                scope.spawn(move || {
                    let mut strategy = strategy_kind.instantiate();
                    // Worker w handles path indices w, w + k, w + 2k, …
                    let mut index = w as u64;
                    let mut produced: u64 = 0;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(q) = quota {
                            if produced >= q {
                                break;
                            }
                        }
                        let mut rng = path_rng(seed, index);
                        let out = gen.generate(strategy.as_mut(), &mut rng);
                        let failed = out.is_err();
                        if tx.send((w, out)).is_err() || failed {
                            break;
                        }
                        produced += 1;
                        index += workers as u64;
                    }
                });
            }
            drop(tx);

            loop {
                match rx.recv() {
                    Ok((w, Ok(outcome))) => {
                        check_deadlock_policy(config, &outcome)?;
                        stats.record(&outcome);
                        collector.push(w, outcome.verdict.is_success());
                        for s in collector.drain_rounds() {
                            if !generator.is_complete() {
                                generator.add(s);
                            }
                        }
                        if generator.is_complete() {
                            stop.store(true, Ordering::Relaxed);
                            // Keep draining the channel so workers can exit.
                        }
                    }
                    Ok((_, Err(e))) => {
                        stop.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                    Err(_) => break, // all senders dropped
                }
            }
            // Channel closed: all workers exited. Mark them finished and
            // consume any leftover complete rounds.
            for w in 0..workers {
                collector.finish_worker(w);
            }
            for s in collector.drain_rounds() {
                if !generator.is_complete() {
                    generator.add(s);
                }
            }
            Ok(())
        })
    }));
    let result: Result<(), SimError> =
        scoped.map_err(|_| SimError::WorkerFailed { detail: "worker thread panicked".into() })?;
    result?;

    Ok(AnalysisResult {
        estimate: generator.estimate(),
        stats,
        wall: start.elapsed(),
        approx_memory_bytes: approx_memory(net, &stats),
    })
}

/// The simulator's memory story (§IV): the per-state footprint plus the
/// recorded outcomes — it does *not* grow with the reachable state space.
fn approx_memory(net: &Network, stats: &PathStats) -> usize {
    net.state_size_bytes() * 2 // current + scratch state per worker
        + std::mem::size_of::<PathStats>()
        + stats.total() as usize / 8 // one bit per sample, amortized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Goal;
    use crate::strategy::StrategyKind;
    use slim_automata::prelude::*;
    use slim_stats::chernoff::Accuracy;
    use slim_stats::sequential::GeneratorKind;

    /// ok --λ--> failed: P(◇[0,t] failed) = 1 − e^{−λt}, analytically.
    fn exp_net(lambda: f64) -> (Network, TimedReach) {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("err");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, lambda, [], failed);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "err", "failed").unwrap();
        (net, TimedReach::new(goal, 1.0))
    }

    fn loose() -> SimConfig {
        SimConfig::default()
            .with_accuracy(Accuracy::new(0.03, 0.05).unwrap())
            .with_strategy(StrategyKind::Asap)
    }

    #[test]
    fn sequential_matches_analytic_exponential() {
        let (net, prop) = exp_net(1.0);
        let r = analyze(&net, &prop, &loose()).unwrap();
        let exact = 1.0 - (-1.0f64).exp(); // ≈ 0.632
        assert!(
            (r.probability() - exact).abs() < 0.03 + 0.01,
            "estimate {} vs exact {exact}",
            r.probability()
        );
        assert_eq!(r.stats.total(), r.estimate.samples);
    }

    #[test]
    fn parallel_agrees_with_analytic() {
        let (net, prop) = exp_net(2.0);
        let cfg = loose().with_workers(4);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        assert!(
            (r.probability() - exact).abs() < 0.03 + 0.01,
            "estimate {} vs exact {exact}",
            r.probability()
        );
        // All quota'd samples accounted for.
        assert_eq!(r.estimate.samples, cfg.accuracy.chernoff_samples());
    }

    #[test]
    fn deadlock_policy_error_aborts() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        a.location("sink");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 1.0);
        let cfg = loose().with_deadlock_policy(DeadlockPolicy::Error);
        assert!(matches!(analyze(&net, &prop, &cfg), Err(SimError::DeadlockDetected { .. })));
        // Falsify counts them as false samples instead.
        let cfg = loose().with_deadlock_policy(DeadlockPolicy::Falsify);
        let r = analyze(&net, &prop, &cfg).unwrap();
        assert_eq!(r.probability(), 0.0);
        assert_eq!(r.stats.deadlocks, r.stats.total());
    }

    #[test]
    fn seeded_reproducibility_across_worker_counts() {
        // CH bound: the sample *set* is identical for 1 and 3 workers, so
        // the estimate (a count) matches exactly.
        let (net, prop) = exp_net(1.0);
        let acc = Accuracy::new(0.05, 0.1).unwrap();
        let c1 = loose().with_accuracy(acc).with_workers(1).with_seed(7);
        let c3 = loose().with_accuracy(acc).with_workers(3).with_seed(7);
        let r1 = analyze(&net, &prop, &c1).unwrap();
        let r3 = analyze(&net, &prop, &c3).unwrap();
        assert_eq!(r1.estimate.successes, r3.estimate.successes);
        assert_eq!(r1.estimate.samples, r3.estimate.samples);
    }

    #[test]
    fn sequential_generator_stops_early_on_rare_events() {
        let (net, prop) = exp_net(0.01); // p ≈ 0.00995
        let cfg = loose().with_generator(GeneratorKind::ChowRobbins);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let ch = cfg.accuracy.chernoff_samples();
        assert!(r.estimate.samples < ch, "sequential rule used {} >= CH {ch}", r.estimate.samples);
        assert!(r.probability() < 0.05);
    }

    #[test]
    fn parallel_sequential_generator_completes() {
        let (net, prop) = exp_net(1.0);
        let cfg = loose().with_generator(GeneratorKind::Gauss).with_workers(3);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        assert!((r.probability() - exact).abs() < 0.06, "estimate {}", r.probability());
    }

    #[test]
    fn memory_estimate_positive_and_flat() {
        let (net, prop) = exp_net(1.0);
        let r = analyze(&net, &prop, &loose()).unwrap();
        assert!(r.approx_memory_bytes > 0);
        assert!(r.approx_memory_bytes < 1_000_000, "simulator memory should be tiny");
    }
}
