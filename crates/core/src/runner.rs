//! Analysis orchestration: drives the path generator until the statistical
//! generator is satisfied, sequentially or in parallel (§III-C).
//!
//! Reproducibility: path `i` always consumes RNG stream `derive(seed, i)`,
//! so the set of generated paths is identical for any worker count; with
//! sequential stopping rules the *order* samples are consumed in is fixed
//! by the round-robin collector, making results deterministic given
//! `(seed, workers)`.
//!
//! The runner is written against a small [`PathSource`] seam rather than
//! the engine directly, so its concurrency protocol — quota splitting,
//! round-robin collection, completion, failure propagation — is testable
//! with deterministic mock samplers (panics, locks, slow late paths).

use crate::config::{DeadlockPolicy, SimConfig};
use crate::engine::{BatchScratch, PathGenerator};
use crate::error::SimError;
use crate::obs::SimObserver;
use crate::preverdict::{pre_verdict_with, PreVerdict};
use crate::property::TimedReach;
use crate::strategy::Strategy;
use crate::verdict::{PathOutcome, PathStats, Verdict};
use slim_automata::prelude::{profile_shape, Network};
use slim_obs::profile::KernelProfile;
use slim_obs::report::ConvergencePoint;
use slim_stats::chernoff::Accuracy;
use slim_stats::estimator::{Estimate, Generator};
use slim_stats::parallel::{split_workload, RoundRobinCollector};
use slim_stats::rng::path_rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Result of a statistical analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// The probability estimate with its accuracy.
    pub estimate: Estimate,
    /// Path verdict counters.
    pub stats: PathStats,
    /// Wall-clock duration of the analysis.
    pub wall: Duration,
    /// Approximate peak memory attributable to the analysis (state size +
    /// bookkeeping), in bytes — the simulator's memory column of Table I.
    pub approx_memory_bytes: usize,
    /// Static pre-verdict: [`PreVerdict::Unknown`] when the estimate was
    /// sampled, otherwise the exact short-circuit that produced it (with
    /// `estimate.samples == 0`).
    pub pre_verdict: PreVerdict,
}

impl AnalysisResult {
    /// The estimated probability.
    pub fn probability(&self) -> f64 {
        self.estimate.mean
    }
}

/// Where the runner gets its per-index path samples from.
///
/// Production uses [`EngineSource`] (the simulation engine seeded per
/// index); tests substitute deterministic mocks to pin down the runner's
/// failure and completion semantics without racing real simulations.
pub(crate) trait PathSource: Sync {
    /// Per-worker reusable workspace threaded through [`Self::sample`].
    type Scratch;

    /// Creates a fresh workspace (once per worker, not per path).
    fn make_scratch(&self) -> Self::Scratch;

    /// Generates the outcome for path `index`.
    fn sample(
        &self,
        index: u64,
        scratch: &mut Self::Scratch,
        strategy: &mut dyn Strategy,
        obs: Option<&SimObserver>,
    ) -> Result<PathOutcome, SimError>;

    /// Generates the outcomes of the `count` paths at indices `start`,
    /// `start + stride`, `start + 2·stride`, …, clearing `out` and
    /// pushing one result per path in index order. The default
    /// implementation loops [`Self::sample`]; the engine source
    /// overrides it with the batched structure-of-arrays kernel
    /// (identical per-path results, amortized dispatch).
    #[allow(clippy::too_many_arguments)]
    fn sample_batch(
        &self,
        start: u64,
        stride: u64,
        count: usize,
        scratch: &mut Self::Scratch,
        strategy: &mut dyn Strategy,
        obs: Option<&SimObserver>,
        out: &mut Vec<Result<PathOutcome, SimError>>,
    ) {
        out.clear();
        for j in 0..count as u64 {
            out.push(self.sample(start + stride * j, scratch, strategy, obs));
        }
    }

    /// Size of one simulation state in bytes (for the memory estimate).
    fn state_bytes(&self) -> usize;
}

/// The production source: one seeded engine run per path index, lifted
/// onto the batched structure-of-arrays kernel when the runner asks for
/// whole lanes at once.
struct EngineSource<'a> {
    gen: PathGenerator<'a>,
    seed: u64,
}

impl PathSource for EngineSource<'_> {
    type Scratch = BatchScratch;

    fn make_scratch(&self) -> BatchScratch {
        BatchScratch::new()
    }

    fn sample(
        &self,
        index: u64,
        scratch: &mut BatchScratch,
        strategy: &mut dyn Strategy,
        obs: Option<&SimObserver>,
    ) -> Result<PathOutcome, SimError> {
        let mut rng = path_rng(self.seed, index);
        self.gen.generate_observed_with(scratch.sim_mut(), strategy, &mut rng, obs)
    }

    fn sample_batch(
        &self,
        start: u64,
        stride: u64,
        count: usize,
        scratch: &mut BatchScratch,
        strategy: &mut dyn Strategy,
        obs: Option<&SimObserver>,
        out: &mut Vec<Result<PathOutcome, SimError>>,
    ) {
        self.gen.generate_batch_with(scratch, strategy, self.seed, start, stride, count, obs, out);
    }

    fn state_bytes(&self) -> usize {
        self.gen.network().state_size_bytes()
    }
}

/// Runs the statistical analysis described by `config`.
///
/// # Errors
/// * [`SimError::DeadlockDetected`] under [`DeadlockPolicy::Error`];
/// * evaluation errors from ill-formed dynamic behavior;
/// * worker failures in parallel mode.
pub fn analyze(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
) -> Result<AnalysisResult, SimError> {
    analyze_observed(net, property, config, None)
}

/// Runs the statistical analysis with optional instrumentation.
///
/// With `obs == Some`, the runner records per-path and per-worker metrics,
/// `simulate`/`estimate` phase timings, collector depth, and drives the
/// observer's progress callback. The observer never feeds back into
/// simulation (it is consulted only after samples are produced and never
/// touches the RNG), so results are bit-identical with and without it.
///
/// # Errors
/// See [`analyze`].
pub fn analyze_observed(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
    obs: Option<&SimObserver>,
) -> Result<AnalysisResult, SimError> {
    if config.static_pre_verdicts {
        let start = Instant::now();
        let verdict = pre_verdict_with(net, property, config.zone_pre_verdicts);
        if let Some(p) = verdict.exact_probability() {
            return Ok(exact_result(net, verdict, p, start, obs));
        }
    }
    let source = EngineSource {
        gen: PathGenerator::new(net, property, config.max_steps),
        seed: config.seed,
    };
    if config.workers <= 1 {
        analyze_sequential_impl(&source, config, obs)
    } else {
        analyze_parallel_impl(&source, config, obs)
    }
}

/// Runs the statistical analysis with the kernel profiler attached,
/// returning the merged [`KernelProfile`] alongside the analysis result.
///
/// Determinism contract: the profile is a pure function of `(model,
/// property, seed, accuracy, batch_lanes)` — in particular it is
/// byte-identical for every worker count. Three ingredients make this
/// hold:
///
/// * profiling requires a generator with an a-priori known sample target
///   (the Chernoff–Hoeffding bound), so the sampled path set is exactly
///   `0..target` with no completion race between workers;
/// * paths are partitioned into blocks of `batch_lanes` *consecutive*
///   indices distributed block-cyclically over the workers, so batch
///   composition — and with it the lane-utilization histogram — does not
///   depend on the worker count;
/// * per-worker profiles are merged with wrapping adds in worker-index
///   order, and the static pre-verdict short-circuit is skipped (a
///   decisive pre-verdict samples zero paths, leaving nothing to
///   profile).
///
/// Outcomes are consumed in path-index order, so the estimate, the
/// deadlock policy and error propagation match the sequential runner
/// exactly.
///
/// # Errors
/// * [`SimError::InvalidInput`] when `config.generator` has no known
///   sample target (sequential stopping rules consume a
///   worker-count-dependent path set — there is no deterministic profile
///   to report);
/// * everything [`analyze`] can raise.
pub fn analyze_profiled(
    net: &Network,
    property: &TimedReach,
    config: &SimConfig,
    obs: Option<&SimObserver>,
) -> Result<(AnalysisResult, KernelProfile), SimError> {
    let start = Instant::now();
    let mut generator = config.generator.instantiate(config.accuracy);
    let Some(target) = generator.known_target() else {
        return Err(SimError::InvalidInput {
            detail: "profiling requires a fixed-target generator (chernoff); sequential \
                     stopping rules sample a worker-count-dependent path set"
                .to_string(),
        });
    };
    let gen = PathGenerator::new(net, property, config.max_steps);
    let shape = profile_shape(net);
    let workers = config.workers.max(1);
    let lanes = config.batch_lanes.max(1) as u64;
    let n_blocks = target.div_ceil(lanes);

    // Worker w simulates blocks w, w + workers, w + 2·workers, … into a
    // local profile and a local queue of per-block outcome vectors.
    type BlockOutcomes = Vec<Vec<Result<PathOutcome, SimError>>>;
    let joined: Vec<std::thread::Result<(KernelProfile, BlockOutcomes)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let gen = &gen;
                    let shape = &shape;
                    scope.spawn(move || {
                        let mut prof = KernelProfile::new(shape.clone());
                        let mut strategy = config.strategy.instantiate();
                        let mut scratch = BatchScratch::new();
                        let mut blocks: BlockOutcomes = Vec::new();
                        let mut b = w as u64;
                        while b < n_blocks {
                            let first = b * lanes;
                            let count = (target - first).min(lanes) as usize;
                            let block_t0 = obs.map(|_| Instant::now());
                            let mut out = Vec::with_capacity(count);
                            gen.generate_batch_profiled_with(
                                &mut scratch,
                                strategy.as_mut(),
                                config.seed,
                                first,
                                1,
                                count,
                                &mut prof,
                                &mut out,
                            );
                            if let (Some(o), Some(t0)) = (obs, block_t0) {
                                let satisfied = out
                                    .iter()
                                    .filter(|r| matches!(r, Ok(oc) if oc.verdict.is_success()))
                                    .count();
                                o.record_worker_batch(
                                    w,
                                    count as u64,
                                    satisfied as u64,
                                    t0.elapsed() / count.max(1) as u32,
                                );
                            }
                            blocks.push(out);
                            b += workers as u64;
                        }
                        (prof, blocks)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

    let mut profile = KernelProfile::new(shape);
    let mut queues: Vec<std::vec::IntoIter<Vec<Result<PathOutcome, SimError>>>> =
        Vec::with_capacity(workers);
    for res in joined {
        let (wprof, blocks) =
            res.map_err(|p| SimError::WorkerFailed { detail: panic_message(p.as_ref()) })?;
        profile.merge(&wprof);
        queues.push(blocks.into_iter());
    }

    // Consume outcomes in global path-index order: block b lives at the
    // front of worker (b mod workers)'s queue.
    let mut stats = PathStats::default();
    for b in 0..n_blocks {
        let block = queues[(b % workers as u64) as usize].next().expect("block schedule");
        for out in block {
            let outcome = out?;
            check_deadlock_policy(config, &outcome)?;
            stats.record(&outcome);
            if !generator.is_complete() {
                generator.add(outcome.verdict.is_success());
            }
        }
    }

    let sim_wall = start.elapsed();
    let result = finish_run(
        start,
        generator.as_ref(),
        config.accuracy,
        stats,
        net.state_size_bytes(),
        obs,
        sim_wall,
    );
    Ok((result, profile))
}

/// Builds the zero-sample result of a decisive static pre-verdict. The
/// estimate is exact (`epsilon = 0`, `confidence = 1`), and the `static`
/// phase records the fixpoint time so instrumented reports stay non-empty.
fn exact_result(
    net: &Network,
    verdict: PreVerdict,
    p: f64,
    start: Instant,
    obs: Option<&SimObserver>,
) -> AnalysisResult {
    let stats = PathStats::default();
    let estimate = Estimate { mean: p, samples: 0, successes: 0, epsilon: 0.0, confidence: 1.0 };
    if let Some(o) = obs {
        o.record_phase("static", start.elapsed());
        o.on_progress(0, Some(0), Some((p, 0.0)));
    }
    AnalysisResult {
        estimate,
        stats,
        wall: start.elapsed(),
        approx_memory_bytes: approx_memory(net.state_size_bytes(), &stats),
        pre_verdict: verdict,
    }
}

fn check_deadlock_policy(config: &SimConfig, outcome: &PathOutcome) -> Result<(), SimError> {
    if config.deadlock_policy == DeadlockPolicy::Error && outcome.verdict.is_lock() {
        return Err(SimError::DeadlockDetected {
            time: outcome.end_time,
            description: format!("{} after {} steps", outcome.verdict, outcome.steps),
        });
    }
    Ok(())
}

/// The live `(p̂, half_width)` pair for progress lines and convergence
/// checkpoints. The half-width is the Hoeffding bound at the current
/// sample count (`Accuracy::epsilon_for_samples`) — a uniform,
/// generator-independent measure of how tight the estimate is so far.
fn current_estimate(generator: &dyn Generator, accuracy: Accuracy) -> Option<(f64, f64)> {
    let n = generator.samples();
    (n > 0).then(|| (generator.estimate().mean, accuracy.epsilon_for_samples(n)))
}

/// Geometric (~×1.25) checkpoint schedule over *accepted* samples.
///
/// Evaluated once per accepted sample — never per drain batch — so the
/// recorded series is identical for every worker count and channel
/// interleaving.
struct ConvergenceSchedule {
    next: u64,
}

impl ConvergenceSchedule {
    fn new() -> ConvergenceSchedule {
        ConvergenceSchedule { next: 1 }
    }

    fn after_sample(&mut self, generator: &dyn Generator, accuracy: Accuracy, obs: &SimObserver) {
        let n = generator.samples();
        if n < self.next {
            return;
        }
        if let Some((mean, half_width)) = current_estimate(generator, accuracy) {
            obs.record_convergence(ConvergencePoint { samples: n, mean, half_width });
        }
        while self.next <= n {
            self.next += (self.next / 4).max(1);
        }
    }
}

fn finish_run(
    start: Instant,
    generator: &dyn Generator,
    accuracy: Accuracy,
    stats: PathStats,
    state_bytes: usize,
    obs: Option<&SimObserver>,
    sim_wall: Duration,
) -> AnalysisResult {
    let est_start = Instant::now();
    let estimate = generator.estimate();
    if let Some(o) = obs {
        o.record_phase("simulate", sim_wall);
        o.record_phase("estimate", est_start.elapsed());
        let est = current_estimate(generator, accuracy);
        // Close the convergence series at the final sample count (the
        // observer drops it if the last checkpoint already sits there).
        if let Some((mean, half_width)) = est {
            o.record_convergence(ConvergencePoint {
                samples: generator.samples(),
                mean,
                half_width,
            });
        }
        o.on_progress(generator.samples(), generator.known_target(), est);
    }
    AnalysisResult {
        estimate,
        stats,
        wall: start.elapsed(),
        approx_memory_bytes: approx_memory(state_bytes, &stats),
        pre_verdict: PreVerdict::Unknown,
    }
}

fn analyze_sequential_impl<S: PathSource>(
    source: &S,
    config: &SimConfig,
    obs: Option<&SimObserver>,
) -> Result<AnalysisResult, SimError> {
    let start = Instant::now();
    let mut generator = config.generator.instantiate(config.accuracy);
    let mut strategy = config.strategy.instantiate();
    let mut scratch = source.make_scratch();
    let mut stats = PathStats::default();
    let mut convergence = ConvergenceSchedule::new();
    let mut index: u64 = 0;
    let lanes = config.batch_lanes.max(1);
    let mut batch: Vec<Result<PathOutcome, SimError>> = Vec::new();

    while !generator.is_complete() {
        // Batch width: never overshoot a known sample target, so a
        // fixed-count (Chernoff) run samples exactly its target and the
        // estimate matches the scalar loop bit-for-bit. Sequential
        // stopping rules have no target; an overshoot of at most
        // `lanes − 1` paths is drained below under the same consumption
        // gating the parallel collector applies to in-flight samples.
        let count = match generator.known_target() {
            Some(n) => n.saturating_sub(generator.samples()).min(lanes as u64).max(1) as usize,
            None => lanes,
        };
        let sampled_at = obs.map(|_| Instant::now());
        source.sample_batch(index, 1, count, &mut scratch, strategy.as_mut(), obs, &mut batch);
        let per_path = sampled_at.map(|t0| t0.elapsed() / count as u32);
        // Worker attribution is flushed once per batch (one counter pass
        // instead of one per path) — the totals are identical.
        let mut w_paths = 0u64;
        let mut w_satisfied = 0u64;
        let flush_worker = |o: Option<&SimObserver>, paths: u64, satisfied: u64| {
            if let (Some(o), Some(d)) = (o, per_path) {
                o.record_worker_batch(0, paths, satisfied, d);
            }
        };
        for (j, res) in batch.drain(..).enumerate() {
            let complete = generator.is_complete();
            match res {
                Ok(outcome) => {
                    if !complete {
                        if let Err(e) = check_deadlock_policy(config, &outcome) {
                            flush_worker(obs, w_paths, w_satisfied);
                            return Err(e);
                        }
                    }
                    if per_path.is_some() {
                        w_paths += 1;
                        w_satisfied += u64::from(outcome.verdict.is_success());
                    }
                    stats.record(&outcome);
                    if !complete {
                        generator.add(outcome.verdict.is_success());
                        if let Some(o) = obs {
                            o.offer_witness(index + j as u64, outcome.verdict);
                            convergence.after_sample(generator.as_ref(), config.accuracy, o);
                            o.on_progress(
                                generator.samples(),
                                generator.known_target(),
                                current_estimate(generator.as_ref(), config.accuracy),
                            );
                        }
                    }
                }
                // An error past completion belongs to a path the scalar
                // loop would never have sampled: ignore it, like the
                // parallel drain ignores late worker errors.
                Err(e) => {
                    if !complete {
                        flush_worker(obs, w_paths, w_satisfied);
                        return Err(e);
                    }
                }
            }
        }
        flush_worker(obs, w_paths, w_satisfied);
        index += count as u64;
    }

    let sim_wall = start.elapsed();
    Ok(finish_run(
        start,
        generator.as_ref(),
        config.accuracy,
        stats,
        source.state_bytes(),
        obs,
        sim_wall,
    ))
}

fn analyze_parallel_impl<S: PathSource>(
    source: &S,
    config: &SimConfig,
    obs: Option<&SimObserver>,
) -> Result<AnalysisResult, SimError> {
    let start = Instant::now();
    let mut generator = config.generator.instantiate(config.accuracy);
    let workers = config.workers;
    let lanes = config.batch_lanes.max(1);
    let stop = AtomicBool::new(false);

    // With an a-priori known sample count (CH bound), split statically:
    // each worker computes its share (§III-C's trivial solution). With
    // sequential generators the workers run until told to stop, and the
    // round-robin collector removes arrival-order bias.
    let quota: Option<Vec<u64>> = generator.known_target().map(|n| split_workload(n, workers));

    let mut collector: RoundRobinCollector<Verdict> = RoundRobinCollector::new(workers);
    let mut stats = PathStats::default();
    // Reused across every drain; the collector appends complete rounds
    // into it instead of allocating a fresh Vec per received sample. It
    // carries full verdicts (not just success flags) so witness selection
    // sees the deterministic consumption order.
    let mut round_buf: Vec<Verdict> = Vec::new();
    let mut last_drain = Instant::now();
    let mut convergence = ConvergenceSchedule::new();
    // Before the stop flag is raised every drained round is complete
    // (worker 0 first), so the j-th consumed sample is exactly path
    // index j — the invariant witness capture builds on.
    let mut consumed: u64 = 0;

    // A panic escaping a worker (or the drain loop) propagates out of
    // `std::thread::scope`; map that to a structured error as a backstop —
    // workers additionally catch their own panics below so the estimate
    // protocol can react *before* the scope unwinds.
    let scoped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| -> Result<(), SimError> {
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Result<PathOutcome, SimError>)>(
                workers * 64,
            );
            for w in 0..workers {
                let tx = tx.clone();
                let stop = &stop;
                let quota = quota.as_ref().map(|q| q[w]);
                let strategy_kind = config.strategy;
                scope.spawn(move || {
                    let body = std::panic::AssertUnwindSafe(|| {
                        let mut strategy = strategy_kind.instantiate();
                        // Created inside the worker: the scratch never
                        // crosses threads, so it needs no Send bound.
                        let mut scratch = source.make_scratch();
                        // Worker w handles path indices w, w + k, w + 2k, …
                        let mut index = w as u64;
                        let mut produced: u64 = 0;
                        let mut batch: Vec<Result<PathOutcome, SimError>> = Vec::new();
                        'work: loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Quota'd (fixed-target) runs batch up to the
                            // configured lane width — the target is known
                            // a priori, so whole lanes can be committed.
                            // Sequential stopping rules sample one path at
                            // a time: completion must be able to react
                            // between outcomes, and a batch finished as a
                            // unit would deliver its early outcomes as
                            // late as its slowest lane.
                            let count = match quota {
                                Some(q) => {
                                    if produced >= q {
                                        break;
                                    }
                                    (q - produced).min(lanes as u64) as usize
                                }
                                None => 1,
                            };
                            let sampled_at = obs.map(|_| Instant::now());
                            source.sample_batch(
                                index,
                                workers as u64,
                                count,
                                &mut scratch,
                                strategy.as_mut(),
                                obs,
                                &mut batch,
                            );
                            let per_path = sampled_at.map(|t0| t0.elapsed() / count as u32);
                            for out in batch.drain(..) {
                                if let (Some(o), Some(d), Ok(outcome)) = (obs, per_path, &out) {
                                    o.record_worker_path(w, outcome, d);
                                }
                                let failed = out.is_err();
                                if tx.send((w, out)).is_err() || failed {
                                    break 'work;
                                }
                            }
                            produced += count as u64;
                            index += workers as u64 * count as u64;
                        }
                    });
                    // A panicking worker reports itself as a structured
                    // failure instead of silently starving the round-robin
                    // protocol (its rounds would otherwise never complete
                    // and sequential generators would spin forever).
                    if let Err(payload) = std::panic::catch_unwind(body) {
                        let detail = panic_message(payload.as_ref());
                        let _ = tx.send((w, Err(SimError::WorkerFailed { detail })));
                    }
                });
            }
            drop(tx);

            // Once the generator completes, the estimate is finalized:
            // leftover in-flight outcomes are drained so workers can exit,
            // but they can no longer fail the run — neither through the
            // deadlock policy nor through late worker errors.
            let mut complete = false;
            loop {
                match rx.recv() {
                    Ok((w, Ok(outcome))) => {
                        if !complete {
                            check_deadlock_policy(config, &outcome)?;
                        }
                        stats.record(&outcome);
                        collector.push(w, outcome.verdict);
                        round_buf.clear();
                        collector.drain_rounds_into(&mut round_buf);
                        if !round_buf.is_empty() {
                            if let Some(o) = obs {
                                o.record_drain(
                                    round_buf.len(),
                                    collector.buffered(),
                                    last_drain.elapsed(),
                                );
                                last_drain = Instant::now();
                            }
                            for &v in &round_buf {
                                if !generator.is_complete() {
                                    generator.add(v.is_success());
                                    if let Some(o) = obs {
                                        o.offer_witness(consumed, v);
                                        convergence.after_sample(
                                            generator.as_ref(),
                                            config.accuracy,
                                            o,
                                        );
                                    }
                                }
                                consumed += 1;
                            }
                            if let Some(o) = obs {
                                o.on_progress(
                                    generator.samples(),
                                    generator.known_target(),
                                    current_estimate(generator.as_ref(), config.accuracy),
                                );
                            }
                        }
                        if !complete && generator.is_complete() {
                            complete = true;
                            stop.store(true, Ordering::Relaxed);
                            // Keep draining the channel so workers can exit.
                        }
                    }
                    Ok((_, Err(e))) => {
                        if !complete {
                            stop.store(true, Ordering::Relaxed);
                            return Err(e);
                        }
                        // Late failure in a path the estimate never needed:
                        // ignore and keep draining.
                    }
                    Err(_) => break, // all senders dropped
                }
            }
            // Channel closed: all workers exited. Mark them finished and
            // consume any leftover complete rounds.
            for w in 0..workers {
                collector.finish_worker(w);
            }
            round_buf.clear();
            collector.drain_rounds_into(&mut round_buf);
            if let (Some(o), false) = (obs, round_buf.is_empty()) {
                o.record_drain(round_buf.len(), collector.buffered(), last_drain.elapsed());
            }
            for &v in &round_buf {
                if !generator.is_complete() {
                    generator.add(v.is_success());
                    if let Some(o) = obs {
                        o.offer_witness(consumed, v);
                        convergence.after_sample(generator.as_ref(), config.accuracy, o);
                    }
                }
                consumed += 1;
            }
            Ok(())
        })
    }));
    let result: Result<(), SimError> =
        scoped.map_err(|_| SimError::WorkerFailed { detail: "worker thread panicked".into() })?;
    result?;

    let sim_wall = start.elapsed();
    Ok(finish_run(
        start,
        generator.as_ref(),
        config.accuracy,
        stats,
        source.state_bytes(),
        obs,
        sim_wall,
    ))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker thread panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker thread panicked: {s}")
    } else {
        "worker thread panicked".to_string()
    }
}

/// The simulator's memory story (§IV): the per-state footprint plus the
/// recorded outcomes — it does *not* grow with the reachable state space.
fn approx_memory(state_bytes: usize, stats: &PathStats) -> usize {
    state_bytes * 2 // current + scratch state per worker
        + std::mem::size_of::<PathStats>()
        + stats.total() as usize / 8 // one bit per sample, amortized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Goal;
    use crate::strategy::StrategyKind;
    use crate::verdict::Verdict;
    use slim_automata::prelude::*;
    use slim_stats::chernoff::Accuracy;
    use slim_stats::sequential::GeneratorKind;

    /// ok --λ--> failed: P(◇[0,t] failed) = 1 − e^{−λt}, analytically.
    fn exp_net(lambda: f64) -> (Network, TimedReach) {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("err");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, lambda, [], failed);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "err", "failed").unwrap();
        (net, TimedReach::new(goal, 1.0))
    }

    fn loose() -> SimConfig {
        SimConfig::default()
            .with_accuracy(Accuracy::new(0.03, 0.05).unwrap())
            .with_strategy(StrategyKind::Asap)
    }

    #[test]
    fn sequential_matches_analytic_exponential() {
        let (net, prop) = exp_net(1.0);
        let r = analyze(&net, &prop, &loose()).unwrap();
        let exact = 1.0 - (-1.0f64).exp(); // ≈ 0.632
        assert!(
            (r.probability() - exact).abs() < 0.03 + 0.01,
            "estimate {} vs exact {exact}",
            r.probability()
        );
        assert_eq!(r.stats.total(), r.estimate.samples);
    }

    #[test]
    fn profiled_analysis_is_worker_count_invariant() {
        let (net, prop) = guarded_net();
        let base = loose().with_seed(7).with_batch_lanes(4);
        let (r1, p1) = analyze_profiled(&net, &prop, &base.with_workers(1), None).unwrap();
        let (r4, p4) = analyze_profiled(&net, &prop, &base.with_workers(4), None).unwrap();
        assert_eq!(r1.estimate, r4.estimate);
        assert_eq!(p1.op_counts(), p4.op_counts());
        assert_eq!(p1.digram_counts(), p4.digram_counts());
        assert_eq!(p1.batch_counts(), p4.batch_counts());
        assert!(p1.total_ops() > 0);
        assert!(p1.delay_solve_count() > 0);
        // The estimate also matches the unprofiled runner on the same
        // config (same path set, same consumption order).
        let plain = analyze(&net, &prop, &base.with_workers(1)).unwrap();
        assert_eq!(r1.estimate, plain.estimate);
    }

    /// The worker-count test's model: a Markovian race plus a
    /// clock-guarded process, so profiles see solver bytecode.
    fn guarded_net() -> (Network, TimedReach) {
        let mut b = NetworkBuilder::new();
        let c = b.var("c", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("err");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, 1.0, [], failed);
        b.add_automaton(a);
        let mut g = AutomatonBuilder::new("g");
        let idle = g.location("idle");
        let done = g.location("done");
        g.guarded(idle, ActionId::TAU, Expr::var(c).ge(Expr::real(0.2)), [], done);
        b.add_automaton(g);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "err", "failed").unwrap();
        (net, TimedReach::new(goal, 1.0))
    }

    #[test]
    fn profiled_path_has_exact_golden_counts() {
        // Pins the profiler to exact per-opcode and digram counts for one
        // seeded path: any change to the compiled kernel's instruction
        // stream — reordering, fusion, extra evals — shows up here as a
        // count diff, not as a silent profile drift.
        use crate::engine::{PathGenerator, SimScratch};
        use slim_stats::rng::path_rng;

        // A compound clock guard so the solver executes a multi-op
        // program (comparisons joined by an intersection) and the digram
        // table is non-trivial.
        let mut b = NetworkBuilder::new();
        let c = b.var("c", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("err");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, 1.0, [], failed);
        b.add_automaton(a);
        let mut g = AutomatonBuilder::new("g");
        let idle = g.location("idle");
        let done = g.location("done");
        let guard = Expr::var(c).ge(Expr::real(0.2)).and(Expr::var(c).le(Expr::real(0.8)));
        g.guarded(idle, ActionId::TAU, guard, [], done);
        b.add_automaton(g);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "err", "failed").unwrap();
        let prop = TimedReach::new(goal, 1.0);

        let gen = PathGenerator::new(&net, &prop, 10_000);
        let run_one = || {
            let mut strategy = StrategyKind::Asap.instantiate();
            let mut scratch = SimScratch::new();
            let mut prof = KernelProfile::new(profile_shape(&net));
            for path in 0..4 {
                let mut rng = path_rng(7, path);
                gen.generate_profiled_with(&mut scratch, strategy.as_mut(), &mut rng, &mut prof)
                    .unwrap();
            }
            prof
        };
        let prof = run_one();
        let ops: Vec<(&str, u64)> = prof
            .op_counts()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (PROFILE_OP_NAMES[i], c))
            .collect();
        assert_eq!(
            ops,
            vec![("solve.cmp_var_const", 4), ("solve.cmp_var_const_and", 4)],
            "opcode counts drifted; update the golden vector deliberately"
        );
        let n_ops = prof.shape().n_ops;
        let digrams: Vec<(String, u64)> = prof
            .digram_counts()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(cell, &c)| {
                (
                    format!(
                        "{} -> {}",
                        PROFILE_OP_NAMES[cell / n_ops],
                        PROFILE_OP_NAMES[cell % n_ops]
                    ),
                    c,
                )
            })
            .collect();
        // The two-atom conjunction fuses to `cmp; cmp_and`, leaving one
        // digram per guard evaluation.
        assert_eq!(
            digrams,
            vec![("solve.cmp_var_const -> solve.cmp_var_const_and".to_string(), 4)]
        );
        // And the counts are a pure function of the seed: a second run
        // reproduces them exactly.
        let again = run_one();
        assert_eq!(prof.op_counts(), again.op_counts());
        assert_eq!(prof.digram_counts(), again.digram_counts());
    }

    #[test]
    fn profiled_analysis_rejects_sequential_generators() {
        let (net, prop) = exp_net(1.0);
        let cfg = loose().with_generator(GeneratorKind::Gauss);
        let err = analyze_profiled(&net, &prop, &cfg, None).unwrap_err();
        assert!(matches!(err, SimError::InvalidInput { .. }));
    }

    #[test]
    fn parallel_agrees_with_analytic() {
        let (net, prop) = exp_net(2.0);
        let cfg = loose().with_workers(4);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        assert!(
            (r.probability() - exact).abs() < 0.03 + 0.01,
            "estimate {} vs exact {exact}",
            r.probability()
        );
        // All quota'd samples accounted for.
        assert_eq!(r.estimate.samples, cfg.accuracy.chernoff_samples());
    }

    #[test]
    fn deadlock_policy_error_aborts() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        a.location("sink");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 1.0);
        // A constant-false goal is decided statically; disable pre-verdicts
        // to exercise the dynamic deadlock machinery.
        let cfg =
            loose().with_deadlock_policy(DeadlockPolicy::Error).with_static_pre_verdicts(false);
        assert!(matches!(analyze(&net, &prop, &cfg), Err(SimError::DeadlockDetected { .. })));
        // Falsify counts them as false samples instead.
        let cfg =
            loose().with_deadlock_policy(DeadlockPolicy::Falsify).with_static_pre_verdicts(false);
        let r = analyze(&net, &prop, &cfg).unwrap();
        assert_eq!(r.probability(), 0.0);
        assert_eq!(r.stats.deadlocks, r.stats.total());
        // With pre-verdicts on (the default), the same property
        // short-circuits to an exact zero before any path is drawn — even
        // under the Error policy, which a zero-sample run cannot trip.
        let r = analyze(&net, &prop, &loose().with_deadlock_policy(DeadlockPolicy::Error)).unwrap();
        assert_eq!(r.pre_verdict, PreVerdict::Unreachable);
        assert_eq!(r.probability(), 0.0);
        assert_eq!(r.estimate.samples, 0);
    }

    #[test]
    fn pre_verdicts_short_circuit_before_sampling() {
        let (net, prop) = exp_net(1.0);
        // Unreachable goal: conjunction with constant false.
        let dead = TimedReach::new(prop.goal.clone().and(Goal::expr(Expr::FALSE)), 1.0);
        let r = analyze(&net, &dead, &loose()).unwrap();
        assert_eq!(r.pre_verdict, PreVerdict::Unreachable);
        assert_eq!(r.estimate.samples, 0);
        assert_eq!(r.estimate.epsilon, 0.0);
        assert_eq!(r.estimate.confidence, 1.0);
        assert_eq!(r.probability(), 0.0);
        assert_eq!(r.stats.total(), 0);
        // Initially-satisfied goal: the `ok` location.
        let init = TimedReach::new(Goal::in_location(&net, "err", "ok").unwrap(), 1.0);
        let r = analyze(&net, &init, &loose()).unwrap();
        assert_eq!(r.pre_verdict, PreVerdict::InitiallySatisfied);
        assert_eq!(r.estimate.samples, 0);
        assert_eq!(r.probability(), 1.0);
        // The sampled path reports Unknown.
        let r = analyze(&net, &prop, &loose()).unwrap();
        assert_eq!(r.pre_verdict, PreVerdict::Unknown);
        assert!(r.estimate.samples > 0);
        // Observed short-circuits record a non-empty phase list.
        let obs = SimObserver::new(1);
        analyze_observed(&net, &dead, &loose(), Some(&obs)).unwrap();
        let phases = obs.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "static");
    }

    #[test]
    fn seeded_reproducibility_across_worker_counts() {
        // CH bound: the sample *set* is identical for 1 and 3 workers, so
        // the estimate (a count) matches exactly.
        let (net, prop) = exp_net(1.0);
        let acc = Accuracy::new(0.05, 0.1).unwrap();
        let c1 = loose().with_accuracy(acc).with_workers(1).with_seed(7);
        let c3 = loose().with_accuracy(acc).with_workers(3).with_seed(7);
        let r1 = analyze(&net, &prop, &c1).unwrap();
        let r3 = analyze(&net, &prop, &c3).unwrap();
        assert_eq!(r1.estimate.successes, r3.estimate.successes);
        assert_eq!(r1.estimate.samples, r3.estimate.samples);
    }

    #[test]
    fn sequential_generator_stops_early_on_rare_events() {
        let (net, prop) = exp_net(0.01); // p ≈ 0.00995
        let cfg = loose().with_generator(GeneratorKind::ChowRobbins);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let ch = cfg.accuracy.chernoff_samples();
        assert!(r.estimate.samples < ch, "sequential rule used {} >= CH {ch}", r.estimate.samples);
        assert!(r.probability() < 0.05);
    }

    #[test]
    fn parallel_sequential_generator_completes() {
        let (net, prop) = exp_net(1.0);
        let cfg = loose().with_generator(GeneratorKind::Gauss).with_workers(3);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        assert!((r.probability() - exact).abs() < 0.06, "estimate {}", r.probability());
    }

    #[test]
    fn memory_estimate_positive_and_flat() {
        let (net, prop) = exp_net(1.0);
        let r = analyze(&net, &prop, &loose()).unwrap();
        assert!(r.approx_memory_bytes > 0);
        assert!(r.approx_memory_bytes < 1_000_000, "simulator memory should be tiny");
    }

    #[test]
    fn observer_does_not_perturb_results() {
        let (net, prop) = exp_net(1.0);
        for workers in [1usize, 3] {
            let cfg = loose()
                .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
                .with_workers(workers)
                .with_seed(11);
            let plain = analyze(&net, &prop, &cfg).unwrap();
            let obs = SimObserver::new(workers);
            let observed = analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
            assert_eq!(plain.estimate, observed.estimate, "workers={workers}");
            assert_eq!(plain.stats, observed.stats, "workers={workers}");
        }
    }

    #[test]
    fn observer_accounts_every_path_and_phase() {
        let (net, prop) = exp_net(1.0);
        let cfg =
            loose().with_accuracy(Accuracy::new(0.05, 0.1).unwrap()).with_workers(2).with_seed(3);
        let obs = SimObserver::new(2);
        let r = analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
        let snap = obs.snapshot();
        let verdict_total: u64 = [
            "paths.satisfied",
            "paths.time_bound_exceeded",
            "paths.hold_violated",
            "paths.deadlock",
            "paths.timelock",
            "paths.step_limit",
        ]
        .iter()
        .map(|k| snap.counters[*k])
        .sum();
        assert_eq!(verdict_total, r.stats.total());
        assert_eq!(snap.counters["paths.satisfied"], r.stats.satisfied);
        assert_eq!(snap.histograms["sim.steps_per_path"].count, r.stats.total());
        // Every produced path is attributed to exactly one worker.
        let ws = obs.worker_stats();
        assert_eq!(ws.iter().map(|w| w.paths).sum::<u64>(), r.stats.total());
        assert_eq!(ws.iter().map(|w| w.satisfied).sum::<u64>(), r.stats.satisfied);
        // Consumed (round-robin) samples match the estimate exactly.
        assert_eq!(snap.counters["collector.samples_consumed"], r.estimate.samples);
        let phases = obs.phases();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["simulate", "estimate"]);
    }

    #[test]
    fn progress_callback_reaches_target() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let (net, prop) = exp_net(1.0);
        let cfg = loose().with_accuracy(Accuracy::new(0.1, 0.1).unwrap()).with_workers(2);
        let last = Arc::new(AtomicU64::new(0));
        let last2 = Arc::clone(&last);
        let obs = SimObserver::new(2).with_progress(Box::new(move |done, target, estimate| {
            assert!(target.is_some(), "CH bound has a known target");
            if done > 0 {
                let (mean, half_width) = estimate.expect("estimate available once sampled");
                assert!((0.0..=1.0).contains(&mean));
                assert!(half_width > 0.0);
            }
            last2.store(done, Ordering::Relaxed);
        }));
        let r = analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
        assert_eq!(last.load(Ordering::Relaxed), r.estimate.samples);
    }

    #[test]
    fn witness_selection_identical_across_worker_counts() {
        let (net, prop) = exp_net(1.0);
        let mut selections = Vec::new();
        for workers in [1usize, 4] {
            let cfg = loose()
                .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
                .with_workers(workers)
                .with_seed(7);
            let obs = SimObserver::new(workers).with_witness_capture(3);
            analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
            selections.push(obs.witness_selection().unwrap());
        }
        assert_eq!(selections[0], selections[1], "witness indices depend on worker count");
        assert!(!selections[0].goal().is_empty(), "λ=1 run should hit the goal");
    }

    #[test]
    fn witness_selection_deterministic_with_sequential_generator() {
        // Sequential stopping rules accept a worker-count-independent
        // prefix of the consumption order, so witnesses still agree.
        let (net, prop) = exp_net(1.0);
        let mut selections = Vec::new();
        for workers in [1usize, 3] {
            let cfg =
                loose().with_generator(GeneratorKind::Gauss).with_workers(workers).with_seed(13);
            let obs = SimObserver::new(workers).with_witness_capture(2);
            analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
            selections.push(obs.witness_selection().unwrap());
        }
        assert_eq!(selections[0], selections[1]);
    }

    #[test]
    fn convergence_series_recorded_and_well_formed() {
        let (net, prop) = exp_net(1.0);
        for workers in [1usize, 2] {
            let cfg = loose()
                .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
                .with_workers(workers)
                .with_seed(5);
            let obs = SimObserver::new(workers);
            let r = analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
            let series = obs.convergence();
            assert!(series.len() >= 2, "workers={workers}: series too short");
            assert!(series.windows(2).all(|w| w[0].samples < w[1].samples));
            assert!(series.windows(2).all(|w| w[0].half_width >= w[1].half_width));
            let last = series.last().unwrap();
            assert_eq!(last.samples, r.estimate.samples);
            assert!((last.mean - r.estimate.mean).abs() < 1e-12);
        }
    }

    #[test]
    fn convergence_checkpoints_independent_of_worker_count() {
        let (net, prop) = exp_net(1.0);
        let mut all = Vec::new();
        for workers in [1usize, 4] {
            let cfg = loose()
                .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
                .with_workers(workers)
                .with_seed(7);
            let obs = SimObserver::new(workers);
            analyze_observed(&net, &prop, &cfg, Some(&obs)).unwrap();
            all.push(obs.convergence());
        }
        assert_eq!(all[0], all[1], "convergence series depends on worker count");
    }

    // --- PathSource mocks: deterministic runner-protocol tests ---------

    fn sat(steps: u64) -> PathOutcome {
        PathOutcome { verdict: Verdict::Satisfied, steps, end_time: 0.5 }
    }

    /// Mock whose behavior is a pure function of the path index.
    struct FnSource<F: Fn(u64) -> Result<PathOutcome, SimError> + Sync>(F);

    impl<F: Fn(u64) -> Result<PathOutcome, SimError> + Sync> PathSource for FnSource<F> {
        type Scratch = ();

        fn make_scratch(&self) {}

        fn sample(
            &self,
            index: u64,
            _scratch: &mut (),
            _strategy: &mut dyn Strategy,
            _obs: Option<&SimObserver>,
        ) -> Result<PathOutcome, SimError> {
            (self.0)(index)
        }

        fn state_bytes(&self) -> usize {
            64
        }
    }

    #[test]
    fn worker_panic_maps_to_worker_failed() {
        // Worker 1 (odd indices) panics on its first path. The runner must
        // surface a structured error with the panic message — not hang
        // waiting for rounds that worker will never fill.
        let source = FnSource(|index| {
            if index % 2 == 1 {
                panic!("injected failure on path {index}");
            }
            Ok(sat(1))
        });
        let cfg =
            SimConfig::default().with_accuracy(Accuracy::new(0.2, 0.2).unwrap()).with_workers(2);
        let err = analyze_parallel_impl(&source, &cfg, None).unwrap_err();
        match err {
            SimError::WorkerFailed { detail } => {
                assert!(detail.contains("injected failure"), "detail: {detail}");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_with_sequential_generator_does_not_hang() {
        // The livelock case the structured self-report prevents: a
        // sequential generator can only complete through full rounds, and
        // a silently dead worker would stall rounds forever.
        let source = FnSource(|index| {
            if index % 2 == 1 {
                panic!("boom");
            }
            Ok(sat(1))
        });
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
            .with_generator(GeneratorKind::Gauss)
            .with_workers(2);
        assert!(matches!(
            analyze_parallel_impl(&source, &cfg, None),
            Err(SimError::WorkerFailed { .. })
        ));
    }

    #[test]
    fn parallel_deadlock_policy_error_aborts() {
        let source =
            FnSource(|_| Ok(PathOutcome { verdict: Verdict::Deadlock, steps: 2, end_time: 0.25 }));
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.2, 0.2).unwrap())
            .with_workers(2)
            .with_deadlock_policy(DeadlockPolicy::Error);
        assert!(matches!(
            analyze_parallel_impl(&source, &cfg, None),
            Err(SimError::DeadlockDetected { .. })
        ));
    }

    /// Gauss at (ε, δ) = (0.1, 0.1) completes after exactly 50 uniform
    /// samples (the MIN_SAMPLES floor dominates), i.e. 25 per worker with
    /// 2 workers. Calls past each worker's 25th sleep long enough that
    /// their outcome arrives well after the estimate has completed.
    fn late_outcome_config() -> SimConfig {
        SimConfig::default()
            .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
            .with_generator(GeneratorKind::Gauss)
            .with_workers(2)
    }

    fn late_source(
        late: impl Fn(u64) -> Result<PathOutcome, SimError> + Sync,
    ) -> FnSource<impl Fn(u64) -> Result<PathOutcome, SimError> + Sync> {
        FnSource(move |index| {
            if index / 2 < 25 {
                Ok(sat(1))
            } else {
                // In flight when the generator completes; deliver late.
                std::thread::sleep(Duration::from_millis(400));
                late(index)
            }
        })
    }

    #[test]
    fn late_worker_error_after_completion_is_ignored() {
        let source = late_source(|index| {
            Err(SimError::WorkerFailed { detail: format!("late failure on path {index}") })
        });
        let r = analyze_parallel_impl(&source, &late_outcome_config(), None)
            .expect("completed estimate must survive late worker errors");
        assert_eq!(r.estimate.samples, 50);
        assert_eq!(r.estimate.mean, 1.0);
    }

    #[test]
    fn late_lock_verdict_after_completion_does_not_abort() {
        let source = late_source(|_| {
            Ok(PathOutcome { verdict: Verdict::Deadlock, steps: 3, end_time: 0.75 })
        });
        let cfg = late_outcome_config().with_deadlock_policy(DeadlockPolicy::Error);
        let r = analyze_parallel_impl(&source, &cfg, None)
            .expect("completed estimate must survive late lock verdicts");
        assert_eq!(r.estimate.samples, 50);
        assert_eq!(r.estimate.mean, 1.0);
        // The late deadlocks are still *counted* (they happened), they
        // just cannot fail the already-final estimate.
        assert!(r.stats.deadlocks <= 2);
    }
}
