//! Path trace recording (for the interactive mode and debugging).

use slim_automata::network::GlobalTransition;
use slim_automata::prelude::{NetState, Network};
use std::fmt;

/// One event along a generated path.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Time passed.
    Delay {
        /// Model time at the start of the delay.
        at: f64,
        /// Delay length.
        duration: f64,
    },
    /// A discrete transition fired.
    Fire {
        /// Model time of the firing.
        at: f64,
        /// Action name (`"tau"` for internal/Markovian moves).
        action: String,
        /// Names of the participating automata.
        participants: Vec<String>,
        /// Whether the transition was Markovian.
        markovian: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Delay { at, duration } => write!(f, "t={at:.6}: delay {duration:.6}"),
            TraceEvent::Fire { at, action, participants, markovian } => {
                let kind = if *markovian { "markovian" } else { "guarded" };
                write!(f, "t={at:.6}: fire {action} ({kind}; {})", participants.join("∥"))
            }
        }
    }
}

impl TraceEvent {
    /// Builds a fire event from a global transition.
    pub fn fire(net: &Network, state: &NetState, gt: &GlobalTransition, markovian: bool) -> Self {
        TraceEvent::Fire {
            at: state.time,
            action: net.actions()[gt.action.0].name.clone(),
            participants: gt.parts.iter().map(|(p, _)| net.automata()[p.0].name.clone()).collect(),
            markovian,
        }
    }
}

impl VecTrace {
    /// Renders the recorded events as CSV
    /// (`time,kind,action,markovian,participants`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,kind,action,markovian,participants\n");
        for e in &self.events {
            match e {
                TraceEvent::Delay { at, duration } => {
                    out.push_str(&format!("{at},delay,{duration},,\n"));
                }
                TraceEvent::Fire { at, action, participants, markovian } => {
                    out.push_str(&format!(
                        "{at},fire,{action},{markovian},{}\n",
                        participants.join("|")
                    ));
                }
            }
        }
        out
    }
}

/// A sink receiving trace events; [`NullTrace`] discards, [`VecTrace`]
/// records.
pub trait TraceSink {
    /// Receives one event.
    fn event(&mut self, event: TraceEvent);
}

/// Discards all events (the fast path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn event(&mut self, _event: TraceEvent) {}
}

/// Records all events in memory.
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    /// Recorded events in order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecTrace {
    fn event(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_records_in_order() {
        let mut t = VecTrace::default();
        t.event(TraceEvent::Delay { at: 0.0, duration: 1.5 });
        t.event(TraceEvent::Fire {
            at: 1.5,
            action: "go".into(),
            participants: vec!["a".into(), "b".into()],
            markovian: false,
        });
        assert_eq!(t.events.len(), 2);
        assert!(t.events[0].to_string().contains("delay"));
        assert!(t.events[1].to_string().contains("go"));
        assert!(t.events[1].to_string().contains("a∥b"));
    }

    #[test]
    fn csv_export_shape() {
        let mut t = VecTrace::default();
        t.event(TraceEvent::Delay { at: 0.0, duration: 1.5 });
        t.event(TraceEvent::Fire {
            at: 1.5,
            action: "tau".into(),
            participants: vec!["a".into(), "b".into()],
            markovian: true,
        });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time,kind"));
        assert!(lines[1].contains("delay"));
        assert!(lines[2].contains("tau") && lines[2].contains("true") && lines[2].contains("a|b"));
    }

    #[test]
    fn null_trace_discards() {
        let mut t = NullTrace;
        t.event(TraceEvent::Delay { at: 0.0, duration: 1.0 });
        // nothing observable — just exercising the impl
    }
}
