//! Engine-side structured path tracing.
//!
//! The typed event vocabulary and the sinks live in `slim_obs::trace`
//! (re-exported here); this module adds the [`PathTracer`], which the
//! engine drives to turn id-based network steps into the name-based
//! [`TraceEvent`]s that trace files carry. The tracer is only consulted
//! through `Option<&mut PathTracer>` — when absent the engine pays a
//! single branch per emission point and never constructs an event.

use crate::strategy::{Decision, ScheduledCandidate};
use crate::verdict::PathOutcome;
use slim_automata::network::GlobalTransition;
use slim_automata::prelude::{NetState, Network, Value};
use slim_obs::Json;

pub use slim_obs::trace::{
    events_to_csv, events_to_json_lines, parse_trace, JsonLinesSink, MemorySink, RingBufferSink,
    TraceEvent, TraceSink, TRACE_FORMAT_VERSION,
};

/// What a [`PathTracer`] records beyond the always-on movement events
/// (delays, firings, verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Record [`TraceEvent::Decision`] events with the candidate set the
    /// strategy considered.
    pub decisions: bool,
    /// Record a [`TraceEvent::Snapshot`] after every n-th step
    /// (`0` disables snapshots, `1` snapshots every step).
    pub snapshot_every: u64,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions { decisions: true, snapshot_every: 1 }
    }
}

/// Converts a network [`Value`] into its trace JSON form (booleans as
/// JSON bools, integers and reals as JSON numbers).
///
/// The replay verifier compares valuations through this same conversion,
/// so recorded and re-simulated values agree bit-for-bit whenever the
/// underlying `f64`s do.
pub fn value_to_json(v: Value) -> Json {
    match v {
        Value::Bool(b) => Json::Bool(b),
        Value::Int(i) => Json::Num(i as f64),
        Value::Real(r) => Json::Num(r),
    }
}

/// Renders one scheduled candidate as `action @ window` (the form the
/// interactive prompt and [`TraceEvent::Decision`] candidates share).
pub fn render_candidate(net: &Network, c: &ScheduledCandidate) -> String {
    format!("{} @ {}", net.actions()[c.transition.action.0].name, c.window)
}

/// Turns engine steps into structured [`TraceEvent`]s on a sink.
///
/// Created per path; the engine calls the `pub(crate)` emission hooks,
/// front-ends add [`TraceEvent::Start`] headers via [`PathTracer::emit`].
pub struct PathTracer<'a> {
    net: &'a Network,
    sink: &'a mut dyn TraceSink,
    opts: TraceOptions,
}

impl std::fmt::Debug for PathTracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathTracer").field("opts", &self.opts).finish_non_exhaustive()
    }
}

impl<'a> PathTracer<'a> {
    /// Creates a tracer with default options (decisions on, snapshot
    /// every step).
    pub fn new(net: &'a Network, sink: &'a mut dyn TraceSink) -> PathTracer<'a> {
        PathTracer::with_options(net, sink, TraceOptions::default())
    }

    /// Creates a tracer with explicit recording options.
    pub fn with_options(
        net: &'a Network,
        sink: &'a mut dyn TraceSink,
        opts: TraceOptions,
    ) -> PathTracer<'a> {
        PathTracer { net, sink, opts }
    }

    /// Forwards an already-built event (used for [`TraceEvent::Start`]
    /// headers, which carry run context the engine does not know).
    pub fn emit(&mut self, event: TraceEvent) {
        self.sink.record(event);
    }

    pub(crate) fn delay(&mut self, step: u64, state: &NetState, duration: f64) {
        self.sink.record(TraceEvent::Delay { step, at: state.time, duration });
    }

    pub(crate) fn decision(
        &mut self,
        step: u64,
        state: &NetState,
        decision: &Decision,
        candidates: &[ScheduledCandidate],
    ) {
        if !self.opts.decisions {
            return;
        }
        let rendered = candidates.iter().map(|c| render_candidate(self.net, c)).collect();
        let (kind, chosen, delay) = match decision {
            Decision::Fire { delay, candidate } => ("fire", Some(*candidate as u64), Some(*delay)),
            Decision::Wait { delay } => ("wait", None, Some(*delay)),
            Decision::Stuck => ("stuck", None, None),
            Decision::Abort => ("abort", None, None),
        };
        self.sink.record(TraceEvent::Decision {
            step,
            at: state.time,
            kind: kind.to_string(),
            candidates: rendered,
            chosen,
            delay,
        });
    }

    pub(crate) fn fire(
        &mut self,
        step: u64,
        state: &NetState,
        gt: &GlobalTransition,
        markovian: bool,
        rate: Option<f64>,
        rate_total: Option<f64>,
    ) {
        self.sink.record(TraceEvent::Fire {
            step,
            at: state.time,
            action: self.net.actions()[gt.action.0].name.clone(),
            markovian,
            rate,
            rate_total,
            parts: gt
                .parts
                .iter()
                .map(|&(p, t)| (self.net.automata()[p.0].name.clone(), t.0 as u64))
                .collect(),
        });
    }

    pub(crate) fn snapshot(&mut self, step: u64, state: &NetState) {
        let every = self.opts.snapshot_every;
        if every == 0 || !step.is_multiple_of(every) {
            return;
        }
        self.sink.record(snapshot_event(self.net, step, state));
    }

    pub(crate) fn verdict(&mut self, outcome: &PathOutcome) {
        self.sink.record(TraceEvent::Verdict {
            verdict: outcome.verdict.code().to_string(),
            at: outcome.end_time,
            steps: outcome.steps,
        });
    }
}

/// Builds a [`TraceEvent::Snapshot`] of `state` (locations in automaton
/// order, variables in declaration order). Shared with the replay
/// verifier, which re-derives snapshots through the same code path.
pub fn snapshot_event(net: &Network, step: u64, state: &NetState) -> TraceEvent {
    TraceEvent::Snapshot {
        step,
        at: state.time,
        locations: state
            .locs
            .iter()
            .enumerate()
            .map(|(p, &l)| net.automata()[p].locations[l.0].name.clone())
            .collect(),
        values: state
            .nu
            .iter()
            .map(|(v, val)| (net.name_of(v).to_string(), value_to_json(val)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversion_covers_all_variants() {
        assert_eq!(value_to_json(Value::Bool(true)), Json::Bool(true));
        assert_eq!(value_to_json(Value::Int(-3)), Json::Num(-3.0));
        assert_eq!(value_to_json(Value::Real(2.5)), Json::Num(2.5));
    }

    #[test]
    fn default_options_record_everything() {
        let o = TraceOptions::default();
        assert!(o.decisions);
        assert_eq!(o.snapshot_every, 1);
    }
}
