//! Simulation configuration.

use crate::strategy::StrategyKind;
use slim_stats::chernoff::Accuracy;
use slim_stats::sequential::GeneratorKind;

/// What to do when a path dead- or timelocks (§III-D of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Treat the path as falsifying the property (a goal state can no
    /// longer be reached) — the default.
    #[default]
    Falsify,
    /// Abort the analysis with an error (useful when deadlocks indicate a
    /// modeling mistake).
    Error,
}

/// Configuration of a statistical analysis run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Statistical accuracy (ε, δ).
    pub accuracy: Accuracy,
    /// Stopping rule / estimator.
    pub generator: GeneratorKind,
    /// Non-determinism resolution strategy.
    pub strategy: StrategyKind,
    /// Deadlock handling.
    pub deadlock_policy: DeadlockPolicy,
    /// Per-path step limit (guards against Zeno behavior).
    pub max_steps: u64,
    /// Master RNG seed; path `i` uses a stream derived from `(seed, i)`,
    /// making results independent of thread count and scheduling.
    pub seed: u64,
    /// Number of worker threads (1 = sequential).
    pub workers: usize,
    /// Lane width of the batched path kernel: each worker steps up to
    /// this many paths at once through the shared step tables
    /// (structure-of-arrays, one RNG stream per lane). `1` disables
    /// batching. Lane-by-lane determinism makes the estimate independent
    /// of this knob — it only trades dispatch overhead against per-lane
    /// state footprint.
    pub batch_lanes: usize,
    /// Consult the static fixpoint analysis before sampling and
    /// short-circuit with an exact `P = 0` / `P = 1` when it decides the
    /// property (see [`crate::preverdict`]). On by default; disable to
    /// force sampling (e.g. to reproduce dynamic errors a short-circuited
    /// run would skip).
    pub static_pre_verdicts: bool,
    /// Let the pre-verdict fixpoint run the clock-zone domain, enabling
    /// timed `P = 0` verdicts (`deadline-unreachable`) for goals that
    /// are location-reachable but provably miss the property deadline.
    /// On by default; ignored when [`Self::static_pre_verdicts`] is off.
    /// This is the `--no-zones` opt-out.
    pub zone_pre_verdicts: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            accuracy: Accuracy::default(),
            generator: GeneratorKind::ChernoffHoeffding,
            strategy: StrategyKind::Progressive,
            deadlock_policy: DeadlockPolicy::Falsify,
            max_steps: 1_000_000,
            seed: 0xC0_FF_EE,
            workers: 1,
            batch_lanes: 16,
            static_pre_verdicts: true,
            zone_pre_verdicts: true,
        }
    }
}

impl SimConfig {
    /// Builder-style accuracy setter.
    pub fn with_accuracy(mut self, accuracy: Accuracy) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Builder-style strategy setter.
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style generator setter.
    pub fn with_generator(mut self, generator: GeneratorKind) -> Self {
        self.generator = generator;
        self
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style worker-count setter.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Builder-style batch-lane-width setter (`1` disables batching).
    ///
    /// # Panics
    /// Panics if `batch_lanes == 0`.
    pub fn with_batch_lanes(mut self, batch_lanes: usize) -> Self {
        assert!(batch_lanes > 0, "need at least one lane");
        self.batch_lanes = batch_lanes;
        self
    }

    /// Builder-style deadlock-policy setter.
    pub fn with_deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.deadlock_policy = policy;
        self
    }

    /// Builder-style toggle for static property pre-verdicts.
    pub fn with_static_pre_verdicts(mut self, enabled: bool) -> Self {
        self.static_pre_verdicts = enabled;
        self
    }

    /// Builder-style toggle for the clock-zone domain inside pre-verdicts.
    pub fn with_zone_pre_verdicts(mut self, enabled: bool) -> Self {
        self.zone_pre_verdicts = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_apply() {
        let acc = Accuracy::new(0.1, 0.1).unwrap();
        let c = SimConfig::default()
            .with_accuracy(acc)
            .with_strategy(StrategyKind::Asap)
            .with_generator(GeneratorKind::Gauss)
            .with_seed(99)
            .with_workers(4)
            .with_batch_lanes(8)
            .with_deadlock_policy(DeadlockPolicy::Error);
        assert_eq!(c.accuracy, acc);
        assert_eq!(c.strategy, StrategyKind::Asap);
        assert_eq!(c.generator, GeneratorKind::Gauss);
        assert_eq!(c.seed, 99);
        assert_eq!(c.workers, 4);
        assert_eq!(c.batch_lanes, 8);
        assert_eq!(c.deadlock_policy, DeadlockPolicy::Error);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = SimConfig::default().with_batch_lanes(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = SimConfig::default().with_workers(0);
    }

    #[test]
    fn default_is_sensible() {
        let c = SimConfig::default();
        assert_eq!(c.workers, 1);
        assert_eq!(c.deadlock_policy, DeadlockPolicy::Falsify);
        assert!(c.max_steps >= 100_000);
    }
}
