//! # slimsim-core
//!
//! A Monte Carlo simulator for timed reachability on SLIM/AADL models —
//! the core contribution of *"A Statistical Approach for Timed
//! Reachability in AADL Models"* (Bruintjes, Katoen, Lesens; DSN 2015),
//! reproduced in Rust.
//!
//! The simulator estimates `P(◇[0,u] goal)` on networks of event-data
//! automata with linear-hybrid dynamics, exponential fault rates and
//! event synchronization. Non-determinism (which transition, which delay)
//! is resolved by pluggable [`strategy::Strategy`] implementations — ASAP,
//! Progressive, Local, MaxTime and an interactive Input strategy — because
//! different resolutions yield different probability measures (§III-B).
//!
//! ## Quick start
//!
//! ```
//! use slim_automata::prelude::*;
//! use slimsim_core::prelude::*;
//!
//! // A component that fails with rate λ = 1 per time unit.
//! let mut b = NetworkBuilder::new();
//! let mut a = AutomatonBuilder::new("unit");
//! let ok = a.location("ok");
//! let failed = a.location("failed");
//! a.markovian(ok, 1.0, [], failed);
//! b.add_automaton(a);
//! let net = b.build()?;
//!
//! // P(◇[0,1] failed) = 1 − e⁻¹ ≈ 0.632.
//! let goal = Goal::in_location(&net, "unit", "failed").unwrap();
//! let property = TimedReach::new(goal, 1.0);
//! let config = SimConfig::default()
//!     .with_accuracy(slim_stats::Accuracy::new(0.05, 0.05)?);
//! let result = analyze(&net, &property, &config)?;
//! assert!((result.probability() - 0.632).abs() < 0.06);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod error;
pub mod obs;
pub mod preverdict;
pub mod property;
pub mod rare_event;
pub mod replay;
pub mod runner;
pub mod strategy;
pub mod trace;
pub mod verdict;
pub mod witness;

/// Convenient glob-import of the simulator API.
pub mod prelude {
    pub use crate::config::{DeadlockPolicy, SimConfig};
    pub use crate::engine::{BatchScratch, PathGenerator, SimScratch};
    pub use crate::error::SimError;
    pub use crate::obs::{SimObserver, WorkerStat};
    pub use crate::preverdict::{goal_distance_targets, pre_verdict, pre_verdict_with, PreVerdict};
    pub use crate::property::{CompiledGoal, Goal, GoalPool, TimedReach};
    pub use crate::rare_event::{analyze_rare, RareEventConfig, RareEventResult};
    pub use crate::replay::{replay_events, ReplayOutcome};
    pub use crate::runner::{analyze, analyze_observed, analyze_profiled, AnalysisResult};
    pub use crate::strategy::{
        Asap, Decision, Input, InputChoice, InputOracle, Local, MaxTime, Progressive,
        ScheduledCandidate, ScriptedOracle, StepView, Strategy, StrategyKind,
    };
    pub use crate::trace::{
        events_to_csv, events_to_json_lines, parse_trace, JsonLinesSink, MemorySink, PathTracer,
        RingBufferSink, TraceEvent, TraceOptions, TraceSink, TRACE_FORMAT_VERSION,
    };
    pub use crate::verdict::{PathOutcome, PathStats, Verdict};
    pub use crate::witness::{capture_witnesses, Witness, WitnessCategory, WitnessSelector};
}
