//! Strategies resolving the model's non-determinism (§III-B of the paper).
//!
//! Where the specification does not dictate the next step — several
//! transitions enabled, or a whole interval of legal delays — a
//! [`Strategy`] decides. Different strategies yield different probability
//! measures over paths, so the choice is left to the user:
//!
//! | Strategy | Delay resolution | Analogue |
//! |----------|------------------|----------|
//! | [`Asap`] | earliest instant any transition becomes enabled | MODES |
//! | [`Progressive`] | uniform over the exact enabling-interval union | UPPAAL-SMC |
//! | [`Local`] | uniform over the invariant-allowed window only | — |
//! | [`MaxTime`] | maximal invariant-allowed delay | actionlock finder |
//! | [`Input`] | asks an [`InputOracle`] (interactive / scripted) | GUI |
//!
//! Underspecification of *choice* (several transitions enabled at the
//! selected instant) is always resolved uniformly — the paper's
//! equiprobability rule.

use crate::error::SimError;
use slim_automata::interval::IntervalSet;
use slim_automata::network::GlobalTransition;
use slim_automata::prelude::{NetState, Network};
use slim_stats::rng::StdRng;

/// A guarded candidate as seen by strategies: enabling window already
/// intersected with the invariant-allowed delay window and (for infinite
/// tails) truncated at the engine's horizon cap.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCandidate {
    /// The global transition to fire.
    pub transition: GlobalTransition,
    /// Non-empty set of legal firing delays.
    pub window: IntervalSet,
}

/// Everything a strategy may inspect when deciding a step.
#[derive(Debug)]
pub struct StepView<'a> {
    /// The network (for names, structure).
    pub net: &'a Network,
    /// Current state.
    pub state: &'a NetState,
    /// Invariant-allowed delay window `[0, D]` (possibly horizon-capped).
    pub window: &'a IntervalSet,
    /// Guarded candidates with non-empty feasible windows.
    pub guarded: &'a [ScheduledCandidate],
    /// Horizon cap used for truncating unbounded windows.
    pub cap: f64,
    /// Union of all guarded candidate windows, when the engine has
    /// precomputed it; `None` makes strategies compute it on the fly
    /// (allocating — hand-built views in tests).
    pub schedulable: Option<&'a IntervalSet>,
    /// `window` with an infinite tail already capped at `cap`, when the
    /// engine has precomputed it; `None` falls back to capping locally.
    pub capped: Option<&'a IntervalSet>,
}

/// A strategy's decision for the current step.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Wait `delay`, then fire `guarded[candidate]`.
    Fire {
        /// Delay before firing.
        delay: f64,
        /// Index into [`StepView::guarded`].
        candidate: usize,
    },
    /// Advance time by `delay` without firing, then reconsider
    /// (`delay > 0`).
    Wait {
        /// Delay to let pass.
        delay: f64,
    },
    /// No guarded transition can be scheduled (now or ever, from this
    /// state). The engine falls back to Markovian transitions or declares
    /// a dead-/timelock.
    Stuck,
    /// The (interactive) oracle aborted the simulation.
    Abort,
}

/// A policy resolving delay and transition non-determinism.
///
/// Implementations must be deterministic given the `rng` stream so that
/// seeded runs reproduce.
pub trait Strategy: Send {
    /// Human-readable strategy name.
    fn name(&self) -> &'static str;

    /// Decides the next move.
    ///
    /// # Errors
    /// Interactive strategies may fail on invalid input.
    fn decide(&mut self, view: &StepView<'_>, rng: &mut StdRng) -> Result<Decision, SimError>;
}

/// Uniformly picks one index among the candidates enabled at delay `d`
/// (the equiprobability rule). Returns `None` if none is enabled at `d`.
fn uniform_enabled_at(guarded: &[ScheduledCandidate], d: f64, rng: &mut StdRng) -> Option<usize> {
    // Count-then-select keeps this allocation-free; the RNG is consulted
    // exactly as often as with a materialized index list (only for n > 1),
    // so seeded streams are unchanged.
    let n = guarded.iter().filter(|c| c.window.contains(d)).count();
    match n {
        0 => None,
        1 => guarded.iter().position(|c| c.window.contains(d)),
        n => {
            let k = rng.gen_range(0..n);
            guarded.iter().enumerate().filter(|(_, c)| c.window.contains(d)).nth(k).map(|(i, _)| i)
        }
    }
}

/// The ASAP strategy: urgent semantics — the model moves as soon as any
/// discrete transition becomes enabled (the MODES approach).
#[derive(Debug, Clone, Copy, Default)]
pub struct Asap;

impl Strategy for Asap {
    fn name(&self) -> &'static str {
        "asap"
    }

    fn decide(&mut self, view: &StepView<'_>, rng: &mut StdRng) -> Result<Decision, SimError> {
        let mut best: Option<f64> = None;
        for c in view.guarded {
            if let Some(t) = c.window.earliest_point() {
                best = Some(match best {
                    Some(b) => b.min(t),
                    None => t,
                });
            }
        }
        let Some(t_star) = best else {
            return Ok(Decision::Stuck);
        };
        match uniform_enabled_at(view.guarded, t_star, rng) {
            Some(i) => Ok(Decision::Fire { delay: t_star, candidate: i }),
            // Possible with open lower endpoints whose nudged earliest
            // point undercuts another candidate's closed bound; nudge in.
            None => {
                let later = t_star + slim_automata::interval::OPEN_NUDGE;
                match uniform_enabled_at(view.guarded, later, rng) {
                    Some(i) => Ok(Decision::Fire { delay: later, candidate: i }),
                    None => Ok(Decision::Stuck),
                }
            }
        }
    }
}

/// The Progressive strategy: selects a delay uniformly (by measure) from
/// the union of the exact enabling intervals, then uniformly among the
/// transitions enabled at that instant (the UPPAAL-SMC approach).
#[derive(Debug, Clone, Copy, Default)]
pub struct Progressive;

impl Strategy for Progressive {
    fn name(&self) -> &'static str {
        "progressive"
    }

    fn decide(&mut self, view: &StepView<'_>, rng: &mut StdRng) -> Result<Decision, SimError> {
        let union_local;
        let union = match view.schedulable {
            Some(u) => u,
            None => {
                let mut u = IntervalSet::empty();
                for c in view.guarded {
                    u = u.union(&c.window);
                }
                union_local = u;
                &union_local
            }
        };
        let Some(d) = union.pick(rng.gen::<f64>()) else {
            return Ok(Decision::Stuck);
        };
        match uniform_enabled_at(view.guarded, d, rng) {
            Some(i) => Ok(Decision::Fire { delay: d, candidate: i }),
            None => Ok(Decision::Stuck),
        }
    }
}

/// The Local strategy: ignores guards and samples the delay uniformly from
/// the invariant-allowed window of the current location(s); if some
/// transition happens to be enabled at the sampled instant it fires,
/// otherwise time simply passes and the simulator reconsiders.
#[derive(Debug, Clone, Copy, Default)]
pub struct Local;

impl Strategy for Local {
    fn name(&self) -> &'static str {
        "local"
    }

    fn decide(&mut self, view: &StepView<'_>, rng: &mut StdRng) -> Result<Decision, SimError> {
        if view.guarded.is_empty() {
            return Ok(Decision::Stuck);
        }
        let capped_local;
        let capped = match view.capped {
            Some(c) => c,
            None => {
                capped_local = cap_infinite(view.window, view.cap);
                &capped_local
            }
        };
        let Some(d) = capped.pick(rng.gen::<f64>()) else {
            return Ok(Decision::Stuck);
        };
        match uniform_enabled_at(view.guarded, d, rng) {
            Some(i) => Ok(Decision::Fire { delay: d, candidate: i }),
            None if d > 0.0 => Ok(Decision::Wait { delay: d }),
            None => {
                // Sampled exactly 0 with nothing enabled: retry by firing
                // at the earliest enabled instant to avoid a busy loop.
                let earliest = view
                    .guarded
                    .iter()
                    .filter_map(|c| c.window.earliest_point())
                    .fold(f64::INFINITY, f64::min);
                if earliest.is_finite() {
                    match uniform_enabled_at(view.guarded, earliest, rng) {
                        Some(i) => Ok(Decision::Fire { delay: earliest, candidate: i }),
                        None => Ok(Decision::Stuck),
                    }
                } else {
                    Ok(Decision::Stuck)
                }
            }
        }
    }
}

/// The MaxTime strategy: delays as long as the invariants allow — useful
/// for finding actionlocks (§III-B); with unbounded invariants the delay
/// is capped at the engine's horizon.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxTime;

impl Strategy for MaxTime {
    fn name(&self) -> &'static str {
        "max-time"
    }

    fn decide(&mut self, view: &StepView<'_>, rng: &mut StdRng) -> Result<Decision, SimError> {
        let capped_local;
        let capped = match view.capped {
            Some(c) => c,
            None => {
                capped_local = cap_infinite(view.window, view.cap);
                &capped_local
            }
        };
        let Some(d) = capped.latest_point() else {
            return Ok(Decision::Stuck);
        };
        match uniform_enabled_at(view.guarded, d, rng) {
            Some(i) => Ok(Decision::Fire { delay: d, candidate: i }),
            None if d > 0.0 => Ok(Decision::Wait { delay: d }),
            None => Ok(Decision::Stuck),
        }
    }
}

/// The TransitionFirst strategy: the *other* equiprobability order the
/// paper's §III-B contrasts — first pick the transition uniformly among
/// all schedulable candidates, then pick its firing delay uniformly from
/// that candidate's own window (ASAP picks transition-first with a fixed
/// delay; Progressive picks the delay first). Exposing both orders is the
/// paper's stated future work on "controlling the scheduling order of
/// transitions".
#[derive(Debug, Clone, Copy, Default)]
pub struct TransitionFirst;

impl Strategy for TransitionFirst {
    fn name(&self) -> &'static str {
        "transition-first"
    }

    fn decide(&mut self, view: &StepView<'_>, rng: &mut StdRng) -> Result<Decision, SimError> {
        if view.guarded.is_empty() {
            return Ok(Decision::Stuck);
        }
        let candidate = rng.gen_range(0..view.guarded.len());
        let window = &view.guarded[candidate].window;
        // Engine-supplied windows already have finite tails, so the
        // cap-clone is only needed for hand-built unbounded windows.
        let picked = match window.sup() {
            Some(s) if s.is_finite() => window.pick(rng.gen::<f64>()),
            _ => cap_infinite(window, view.cap).pick(rng.gen::<f64>()),
        };
        match picked {
            Some(delay) => Ok(Decision::Fire { delay, candidate }),
            None => Ok(Decision::Stuck),
        }
    }
}

/// Replaces an infinite tail of `set` by a bounded one ending at `cap`
/// (bounded parts are left untouched).
fn cap_infinite(set: &IntervalSet, cap: f64) -> IntervalSet {
    match set.sup() {
        Some(s) if s.is_finite() => set.clone(),
        Some(_) => set.truncate(cap.max(set.inf().unwrap_or(0.0))),
        None => IntervalSet::empty(),
    }
}

/// What an [`InputOracle`] may answer.
#[derive(Debug, Clone, PartialEq)]
pub enum InputChoice {
    /// Fire guarded candidate `candidate` after `delay`.
    Fire {
        /// Index into the presented candidates.
        candidate: usize,
        /// Delay before firing.
        delay: f64,
    },
    /// Let `delay` time pass without firing.
    Wait {
        /// Delay to let pass.
        delay: f64,
    },
    /// Stop the simulation.
    Abort,
}

/// Supplies decisions for the [`Input`] strategy — interactively (CLI) or
/// from a script (tests, replay).
pub trait InputOracle: Send {
    /// Chooses the next step given the presented alternatives.
    ///
    /// # Errors
    /// May fail on I/O problems (interactive oracles).
    fn choose(&mut self, view: &StepView<'_>) -> Result<InputChoice, SimError>;
}

/// The Input strategy: defers every decision to an oracle, validating the
/// answers against the presented alternatives (the paper's manual mode /
/// GUI substitute).
pub struct Input<O> {
    oracle: O,
}

impl<O: std::fmt::Debug> std::fmt::Debug for Input<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Input").field("oracle", &self.oracle).finish()
    }
}

impl<O: InputOracle> Input<O> {
    /// Wraps an oracle.
    pub fn new(oracle: O) -> Input<O> {
        Input { oracle }
    }
}

impl<O: InputOracle> Strategy for Input<O> {
    fn name(&self) -> &'static str {
        "input"
    }

    fn decide(&mut self, view: &StepView<'_>, _rng: &mut StdRng) -> Result<Decision, SimError> {
        match self.oracle.choose(view)? {
            InputChoice::Abort => Ok(Decision::Abort),
            InputChoice::Wait { delay } => {
                if delay <= 0.0 || !view.window.contains(delay) {
                    return Err(SimError::InvalidInput {
                        detail: format!("delay {delay} outside allowed window {}", view.window),
                    });
                }
                Ok(Decision::Wait { delay })
            }
            InputChoice::Fire { candidate, delay } => {
                let Some(c) = view.guarded.get(candidate) else {
                    return Err(SimError::InvalidInput {
                        detail: format!(
                            "candidate {candidate} out of range ({} available)",
                            view.guarded.len()
                        ),
                    });
                };
                if !c.window.contains(delay) {
                    return Err(SimError::InvalidInput {
                        detail: format!("delay {delay} outside enabling window {}", c.window),
                    });
                }
                Ok(Decision::Fire { delay, candidate })
            }
        }
    }
}

/// A scripted oracle replaying a fixed list of choices (aborts when the
/// script runs dry).
#[derive(Debug, Clone)]
pub struct ScriptedOracle {
    script: std::collections::VecDeque<InputChoice>,
}

impl ScriptedOracle {
    /// Creates an oracle from a choice sequence.
    pub fn new(choices: impl IntoIterator<Item = InputChoice>) -> ScriptedOracle {
        ScriptedOracle { script: choices.into_iter().collect() }
    }
}

impl InputOracle for ScriptedOracle {
    fn choose(&mut self, _view: &StepView<'_>) -> Result<InputChoice, SimError> {
        Ok(self.script.pop_front().unwrap_or(InputChoice::Abort))
    }
}

/// The automated strategies, as a user-facing enum (the `--strategy` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// [`Asap`].
    Asap,
    /// [`Progressive`].
    Progressive,
    /// [`Local`].
    Local,
    /// [`MaxTime`].
    MaxTime,
    /// [`TransitionFirst`].
    TransitionFirst,
}

impl StrategyKind {
    /// The paper's four automated strategies, for sweeps (Fig. 5).
    pub const ALL: [StrategyKind; 4] =
        [StrategyKind::Asap, StrategyKind::Progressive, StrategyKind::Local, StrategyKind::MaxTime];

    /// All automated strategies including the transition-first extension.
    pub const ALL_EXTENDED: [StrategyKind; 5] = [
        StrategyKind::Asap,
        StrategyKind::Progressive,
        StrategyKind::Local,
        StrategyKind::MaxTime,
        StrategyKind::TransitionFirst,
    ];

    /// Instantiates the strategy.
    pub fn instantiate(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Asap => Box::new(Asap),
            StrategyKind::Progressive => Box::new(Progressive),
            StrategyKind::Local => Box::new(Local),
            StrategyKind::MaxTime => Box::new(MaxTime),
            StrategyKind::TransitionFirst => Box::new(TransitionFirst),
        }
    }

    /// Parses a strategy name (as accepted by the CLI).
    pub fn parse(s: &str) -> Option<StrategyKind> {
        match s.to_ascii_lowercase().as_str() {
            "asap" => Some(StrategyKind::Asap),
            "progressive" => Some(StrategyKind::Progressive),
            "local" => Some(StrategyKind::Local),
            "maxtime" | "max-time" => Some(StrategyKind::MaxTime),
            "transition-first" | "transitionfirst" => Some(StrategyKind::TransitionFirst),
            _ => None,
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::Asap => write!(f, "asap"),
            StrategyKind::Progressive => write!(f, "progressive"),
            StrategyKind::Local => write!(f, "local"),
            StrategyKind::MaxTime => write!(f, "max-time"),
            StrategyKind::TransitionFirst => write!(f, "transition-first"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::interval::Interval;
    use slim_automata::prelude::*;

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], l0);
        b.add_automaton(a);
        b.build().unwrap()
    }

    fn cand(lo: f64, hi: f64, closed: bool) -> ScheduledCandidate {
        let iv = if closed {
            Interval::closed(lo, hi).unwrap()
        } else {
            Interval::open_closed(lo, hi).unwrap()
        };
        ScheduledCandidate {
            transition: GlobalTransition {
                action: ActionId::TAU,
                parts: vec![(ProcId(0), TransId(0))],
            },
            window: IntervalSet::from(iv),
        }
    }

    fn view<'a>(
        net: &'a Network,
        state: &'a NetState,
        window: &'a IntervalSet,
        guarded: &'a [ScheduledCandidate],
    ) -> StepView<'a> {
        StepView { net, state, window, guarded, cap: 1000.0, schedulable: None, capped: None }
    }

    #[test]
    fn asap_picks_earliest() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        let cands = [cand(200.0, 300.0, true), cand(250.0, 400.0, true)];
        let mut rng = StdRng::seed_from_u64(1);
        match Asap.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
            Decision::Fire { delay, candidate } => {
                assert_eq!(delay, 200.0);
                assert_eq!(candidate, 0);
            }
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn asap_open_window_nudges() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        let cands = [cand(200.0, 300.0, false)];
        let mut rng = StdRng::seed_from_u64(1);
        match Asap.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
            Decision::Fire { delay, .. } => {
                assert!(delay > 200.0 && delay < 200.1, "delay {delay}");
            }
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn asap_stuck_without_candidates() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Asap.decide(&view(&net, &s, &w, &[]), &mut rng).unwrap(), Decision::Stuck);
    }

    #[test]
    fn progressive_samples_inside_union() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        let cands = [cand(200.0, 300.0, true), cand(400.0, 500.0, true)];
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_first = false;
        let mut seen_second = false;
        for _ in 0..64 {
            match Progressive.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
                Decision::Fire { delay, candidate } => {
                    assert!(cands[candidate].window.contains(delay));
                    if delay <= 300.0 {
                        seen_first = true;
                    } else {
                        seen_second = true;
                    }
                }
                d => panic!("unexpected {d:?}"),
            }
        }
        assert!(seen_first && seen_second, "both windows should be sampled");
    }

    #[test]
    fn local_samples_invariant_window() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        // Invariant allows [0, 300]; guard only [200, 300].
        let w = IntervalSet::from(Interval::closed(0.0, 300.0).unwrap());
        let cands = [cand(200.0, 300.0, true)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut fired = 0;
        let mut waited = 0;
        for _ in 0..256 {
            match Local.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
                Decision::Fire { delay, .. } => {
                    assert!((200.0..=300.0).contains(&delay));
                    fired += 1;
                }
                Decision::Wait { delay } => {
                    assert!(delay > 0.0 && delay < 200.0);
                    waited += 1;
                }
                d => panic!("unexpected {d:?}"),
            }
        }
        // Roughly 1/3 of the window is enabled.
        assert!(fired > 30 && waited > 100, "fired={fired} waited={waited}");
    }

    #[test]
    fn local_stuck_without_candidates() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::from(Interval::closed(0.0, 300.0).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Local.decide(&view(&net, &s, &w, &[]), &mut rng).unwrap(), Decision::Stuck);
    }

    #[test]
    fn maxtime_takes_boundary() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::from(Interval::closed(0.0, 300.0).unwrap());
        let cands = [cand(200.0, 300.0, true)];
        let mut rng = StdRng::seed_from_u64(3);
        match MaxTime.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
            Decision::Fire { delay, .. } => assert_eq!(delay, 300.0),
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn maxtime_waits_to_boundary_when_nothing_enabled_there() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::from(Interval::closed(0.0, 300.0).unwrap());
        // Guard window ends strictly before the invariant boundary.
        let cands = [cand(100.0, 200.0, true)];
        let mut rng = StdRng::seed_from_u64(3);
        match MaxTime.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
            Decision::Wait { delay } => assert_eq!(delay, 300.0),
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn maxtime_unbounded_capped() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        let cands = [cand(0.0, 2000.0, true)];
        let mut rng = StdRng::seed_from_u64(3);
        match MaxTime.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
            Decision::Fire { delay, .. } => assert_eq!(delay, 1000.0),
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn equiprobable_tie_break() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        let cands = [cand(5.0, 10.0, true), cand(5.0, 10.0, true)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            if let Decision::Fire { candidate, .. } =
                Asap.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap()
            {
                counts[candidate] += 1;
            }
        }
        assert!(counts[0] > 120 && counts[1] > 120, "skewed {counts:?}");
    }

    #[test]
    fn input_strategy_validates() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::from(Interval::closed(0.0, 300.0).unwrap());
        let cands = [cand(200.0, 300.0, true)];
        let mut rng = StdRng::seed_from_u64(0);

        let mut ok =
            Input::new(ScriptedOracle::new([InputChoice::Fire { candidate: 0, delay: 250.0 }]));
        assert_eq!(
            ok.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap(),
            Decision::Fire { delay: 250.0, candidate: 0 }
        );

        let mut bad_delay =
            Input::new(ScriptedOracle::new([InputChoice::Fire { candidate: 0, delay: 100.0 }]));
        assert!(bad_delay.decide(&view(&net, &s, &w, &cands), &mut rng).is_err());

        let mut bad_idx =
            Input::new(ScriptedOracle::new([InputChoice::Fire { candidate: 5, delay: 250.0 }]));
        assert!(bad_idx.decide(&view(&net, &s, &w, &cands), &mut rng).is_err());

        let mut wait_bad = Input::new(ScriptedOracle::new([InputChoice::Wait { delay: 500.0 }]));
        assert!(wait_bad.decide(&view(&net, &s, &w, &cands), &mut rng).is_err());

        let mut dry = Input::new(ScriptedOracle::new([]));
        assert_eq!(dry.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap(), Decision::Abort);
    }

    #[test]
    fn transition_first_picks_candidate_then_delay() {
        let net = tiny_net();
        let s = net.initial_state().unwrap();
        let w = IntervalSet::all();
        // Two disjoint windows; delay-first (Progressive) would weight by
        // measure (9:1), transition-first weights candidates 1:1.
        let cands = [cand(0.0, 9.0, true), cand(100.0, 101.0, true)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut late = 0;
        let n = 400;
        for _ in 0..n {
            match TransitionFirst.decide(&view(&net, &s, &w, &cands), &mut rng).unwrap() {
                Decision::Fire { delay, candidate } => {
                    assert!(cands[candidate].window.contains(delay));
                    if candidate == 1 {
                        late += 1;
                    }
                }
                d => panic!("unexpected {d:?}"),
            }
        }
        let frac = late as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.1, "transition-first should be 1:1, got {frac}");
    }

    #[test]
    fn kind_parse_and_display() {
        for k in StrategyKind::ALL_EXTENDED {
            assert_eq!(StrategyKind::parse(&k.to_string()), Some(k));
            assert!(!k.instantiate().name().is_empty());
        }
        assert_eq!(StrategyKind::parse("MaxTime"), Some(StrategyKind::MaxTime));
        assert_eq!(StrategyKind::parse("bogus"), None);
    }
}
