//! The discrete-event path generation engine (§III-A of the paper).
//!
//! A path alternates timed and discrete transitions. Guarded transitions
//! are scheduled by the configured [`Strategy`]; Markovian transitions race
//! against that schedule with exponentially sampled firing times; the
//! invariants bound how far time may pass. Paths end when
//!
//! * the goal holds (also *during* a delay — timed goals are checked
//!   against the exact goal window, not just at discrete instants),
//! * the property's time bound elapses,
//! * a deadlock or timelock is reached (§III-D), or
//! * the per-path step limit trips (Zeno guard).

use crate::error::SimError;
use crate::obs::{PathDetail, SimObserver};
use crate::property::{CompiledGoal, GoalPool, TimedReach};
use crate::strategy::{Decision, ScheduledCandidate, StepView, Strategy};
use crate::trace::PathTracer;
use crate::verdict::{PathOutcome, Verdict};
use slim_automata::automaton::{ActionId, ProcId, TransId};
use slim_automata::error::EvalError;
use slim_automata::interval::IntervalSet;
use slim_automata::network::GlobalTransition;
use slim_automata::prelude::{
    CompileOptions, NetState, Network, StepScratch, StepTables, Valuation,
};
use slim_obs::profile::{NoopProfile, ProfileHooks};
use slim_stats::rng::{exponential_from_uniform, path_rng, StdRng};

/// Generates sample paths for one (network, property) pair.
///
/// Construction compiles the network into [`StepTables`] and the property
/// into [`CompiledGoal`]s once; every generated path then runs on the
/// allocation-free stepping kernel. Pass a reusable [`SimScratch`] to the
/// `*_with` variants to make steady-state path generation heap-allocation
/// free; the plain variants allocate a fresh scratch per call.
#[derive(Debug, Clone)]
pub struct PathGenerator<'a> {
    net: &'a Network,
    property: &'a TimedReach,
    max_steps: u64,
    tables: StepTables,
    goal: CompiledGoal,
    hold: Option<CompiledGoal>,
    initial: Result<NetState, EvalError>,
}

/// Reusable per-worker workspace for the engine loop: the network-level
/// [`StepScratch`] plus every engine-owned buffer (goal/invariant windows,
/// scheduled candidates, temporaries). Allocated once, recycled across
/// paths — after warm-up, generating a path performs no heap allocation.
#[derive(Debug)]
pub struct SimScratch {
    step: StepScratch,
    pool: GoalPool,
    state: NetState,
    goal_win: IntervalSet,
    viol_win: IntervalSet,
    hold_win: IntervalSet,
    inv_window: IntervalSet,
    window: IntervalSet,
    schedulable: IntervalSet,
    capped: IntervalSet,
    tmp: IntervalSet,
    tmp2: IntervalSet,
    sched: Vec<ScheduledCandidate>,
    n_sched: usize,
}

impl SimScratch {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> SimScratch {
        SimScratch {
            step: StepScratch::new(),
            pool: GoalPool::new(),
            state: NetState::new(Vec::new(), Valuation::new(Vec::new())),
            goal_win: IntervalSet::empty(),
            viol_win: IntervalSet::empty(),
            hold_win: IntervalSet::empty(),
            inv_window: IntervalSet::empty(),
            window: IntervalSet::empty(),
            schedulable: IntervalSet::empty(),
            capped: IntervalSet::empty(),
            tmp: IntervalSet::empty(),
            tmp2: IntervalSet::empty(),
            sched: Vec::new(),
            n_sched: 0,
        }
    }
}

impl Default for SimScratch {
    fn default() -> SimScratch {
        SimScratch::new()
    }
}

/// Acquires the next scheduled-candidate slot, reusing retired buffers
/// (their `parts` and `window` capacity survives across steps).
fn next_sched<'a>(
    pool: &'a mut Vec<ScheduledCandidate>,
    used: &mut usize,
) -> &'a mut ScheduledCandidate {
    if *used == pool.len() {
        pool.push(ScheduledCandidate {
            transition: GlobalTransition { action: ActionId::TAU, parts: Vec::new() },
            window: IntervalSet::empty(),
        });
    }
    let slot = &mut pool[*used];
    *used += 1;
    slot
}

/// Which transition a resolved step fires.
enum FireSrc {
    /// Index into the scheduled-candidate pool.
    Guarded(usize),
    /// The winning Markovian transition.
    Markov((ProcId, TransId)),
}

/// How a step resolved after racing the strategy's schedule against the
/// Markovian transitions.
enum Resolved {
    Fire {
        delay: f64,
        src: FireSrc,
        /// Winner's own rate and the total race exit rate (Markovian only).
        rates: Option<(f64, f64)>,
    },
    Wait {
        delay: f64,
    },
    Lock {
        verdict: Verdict,
        horizon: f64,
    },
}

impl<'a> PathGenerator<'a> {
    /// Creates a generator, compiling the network and property onto the
    /// allocation-free stepping kernel.
    pub fn new(net: &'a Network, property: &'a TimedReach, max_steps: u64) -> Self {
        Self::with_compile_options(net, property, max_steps, &CompileOptions::default())
    }

    /// [`PathGenerator::new`] under explicit [`CompileOptions`]: the
    /// fusion-equivalence harnesses pin [`CompileOptions::reference`] to
    /// get the unfused, unspecialized kernel for differential comparison.
    pub fn with_compile_options(
        net: &'a Network,
        property: &'a TimedReach,
        max_steps: u64,
        opts: &CompileOptions,
    ) -> Self {
        let tables = net.compile_with(opts);
        let goal = property.goal.compile_with(net, opts);
        let hold = property.hold.as_ref().map(|h| h.compile_with(net, opts));
        let initial = net.initial_state();
        PathGenerator { net, property, max_steps, tables, goal, hold, initial }
    }

    /// The compiled step tables driving this generator.
    pub fn tables(&self) -> &StepTables {
        &self.tables
    }

    /// The network under simulation.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The property being checked.
    pub fn property(&self) -> &TimedReach {
        self.property
    }

    /// Generates one path.
    ///
    /// # Errors
    /// Evaluation errors (invariant already violated, non-linear guards)
    /// and input-strategy errors.
    pub fn generate(
        &self,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
    ) -> Result<PathOutcome, SimError> {
        self.generate_with(&mut SimScratch::new(), strategy, rng)
    }

    /// [`Self::generate`] on a caller-supplied scratch: reusing the same
    /// scratch across paths keeps the hot loop allocation-free.
    ///
    /// # Errors
    /// See [`Self::generate`].
    pub fn generate_with(
        &self,
        scratch: &mut SimScratch,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
    ) -> Result<PathOutcome, SimError> {
        self.run(scratch, strategy, rng, None, 1.0, None, &mut NoopProfile)
            .map(|(outcome, _)| outcome)
    }

    /// Generates one path, flushing per-path metrics (steps, firings,
    /// strategy decisions, wall time) to `obs` when present. With
    /// `obs == None` this is exactly [`Self::generate`]: the observer is
    /// consulted only after the path ends and never touches the RNG, so
    /// instrumentation cannot perturb seeded reproducibility.
    ///
    /// # Errors
    /// See [`Self::generate`].
    pub fn generate_observed(
        &self,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        obs: Option<&SimObserver>,
    ) -> Result<PathOutcome, SimError> {
        self.generate_observed_with(&mut SimScratch::new(), strategy, rng, obs)
    }

    /// [`Self::generate_observed`] on a caller-supplied scratch.
    ///
    /// # Errors
    /// See [`Self::generate`].
    pub fn generate_observed_with(
        &self,
        scratch: &mut SimScratch,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        obs: Option<&SimObserver>,
    ) -> Result<PathOutcome, SimError> {
        let Some(obs) = obs else {
            return self.generate_with(scratch, strategy, rng);
        };
        let start = std::time::Instant::now();
        let mut detail = PathDetail::default();
        let result =
            self.run(scratch, strategy, rng, None, 1.0, Some(&mut detail), &mut NoopProfile);
        if let Ok((outcome, _)) = &result {
            detail.nanos = start.elapsed().as_nanos() as u64;
            obs.record_path(outcome, &detail);
        }
        result.map(|(outcome, _)| outcome)
    }

    /// Generates one path, recording structured events on the tracer:
    /// strategy decisions, delays, firings (with Markovian race rates),
    /// valuation snapshots per [`crate::trace::TraceOptions`], and the
    /// final verdict.
    ///
    /// # Errors
    /// See [`Self::generate`].
    pub fn generate_traced(
        &self,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        tracer: &mut PathTracer<'_>,
    ) -> Result<PathOutcome, SimError> {
        self.generate_traced_with(&mut SimScratch::new(), strategy, rng, tracer)
    }

    /// [`Self::generate_traced`] on a caller-supplied scratch.
    ///
    /// # Errors
    /// See [`Self::generate`].
    pub fn generate_traced_with(
        &self,
        scratch: &mut SimScratch,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        tracer: &mut PathTracer<'_>,
    ) -> Result<PathOutcome, SimError> {
        let outcome =
            self.run(scratch, strategy, rng, Some(&mut *tracer), 1.0, None, &mut NoopProfile)?.0;
        tracer.verdict(&outcome);
        Ok(outcome)
    }

    /// Generates one path under an **importance-sampling bias**: every
    /// Markovian rate is multiplied by `bias` during simulation, and the
    /// returned weight is the likelihood ratio of the generated
    /// trajectory (true measure over biased measure). With `bias > 1`
    /// rare fault-driven events become frequent; the weighted indicator
    /// `w·1[success]` remains an unbiased estimate of the true
    /// probability (see `rare_event`).
    ///
    /// # Errors
    /// See [`Self::generate`].
    ///
    /// # Panics
    /// Panics unless `bias > 0`.
    pub fn generate_biased(
        &self,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        bias: f64,
    ) -> Result<(PathOutcome, f64), SimError> {
        self.generate_biased_with(&mut SimScratch::new(), strategy, rng, bias)
    }

    /// [`Self::generate_biased`] on a caller-supplied scratch.
    ///
    /// # Errors
    /// See [`Self::generate`].
    ///
    /// # Panics
    /// Panics unless `bias > 0`.
    pub fn generate_biased_with(
        &self,
        scratch: &mut SimScratch,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        bias: f64,
    ) -> Result<(PathOutcome, f64), SimError> {
        assert!(bias > 0.0 && bias.is_finite(), "bias must be positive, got {bias}");
        self.run(scratch, strategy, rng, None, bias, None, &mut NoopProfile)
    }

    /// [`Self::generate_with`] under a profiling sink: the generated path
    /// is bit-identical to the unprofiled one (hooks never touch the RNG
    /// or the step logic), with every kernel counter — opcodes, digrams,
    /// guard outcomes, firings, location occupancy, delay solves —
    /// recorded into `prof`.
    ///
    /// # Errors
    /// See [`Self::generate`].
    pub fn generate_profiled_with<P: ProfileHooks>(
        &self,
        scratch: &mut SimScratch,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        prof: &mut P,
    ) -> Result<PathOutcome, SimError> {
        self.run(scratch, strategy, rng, None, 1.0, None, prof).map(|(outcome, _)| outcome)
    }

    /// The common engine loop; returns the outcome and the likelihood
    /// ratio `exp(log_weight)` of the path under rate bias `bias`.
    ///
    /// Runs entirely on the compiled kernel: per-step windows, candidate
    /// sets and state updates live in `s` and are recycled across steps
    /// and paths, so steady-state execution performs no heap allocation.
    #[allow(clippy::too_many_arguments)]
    fn run<P: ProfileHooks>(
        &self,
        s: &mut SimScratch,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        mut tracer: Option<&mut PathTracer<'_>>,
        bias: f64,
        mut detail: Option<&mut PathDetail>,
        prof: &mut P,
    ) -> Result<(PathOutcome, f64), SimError> {
        // Lend the scratch-owned state buffer to the shared step function,
        // which borrows the state and the scratch separately so the
        // batched kernel can drive it lane by lane. `NetState::new` on
        // empty vectors does not allocate, and the buffer (with its grown
        // capacity) is handed back before returning.
        let mut state =
            std::mem::replace(&mut s.state, NetState::new(Vec::new(), Valuation::new(Vec::new())));
        let mut log_weight = 0.0f64;
        let mut steps: u64 = 0;
        let result = match &self.initial {
            Ok(init) => {
                state.copy_from(init);
                let margin = step_margin(self.property);
                loop {
                    match self.step_path(
                        s,
                        &mut state,
                        strategy,
                        rng,
                        &mut tracer,
                        bias,
                        &mut detail,
                        &mut steps,
                        &mut log_weight,
                        margin,
                        prof,
                    ) {
                        Ok(None) => {}
                        Ok(Some(outcome)) => break Ok((outcome, log_weight.exp())),
                        Err(e) => break Err(e),
                    }
                }
            }
            Err(e) => Err(SimError::Eval(e.clone())),
        };
        s.state = state;
        result
    }

    /// Advances one path by **one engine step** on the compiled kernel:
    /// refreshes the flow rates once, computes the goal/hold windows and
    /// the candidate sets against that shared rate buffer, races the
    /// strategy's schedule against the Markovian transitions, and applies
    /// the resolved delay/firing to `state`.
    ///
    /// Returns `Ok(None)` while the path continues and `Ok(Some(..))`
    /// when it ends. Both the scalar `generate*` family and the batched
    /// [`Self::generate_batch_with`] kernel drive this exact function,
    /// which is what makes batched generation bit-identical to scalar
    /// generation lane by lane.
    #[allow(clippy::too_many_arguments)]
    fn step_path<P: ProfileHooks>(
        &self,
        s: &mut SimScratch,
        state: &mut NetState,
        strategy: &mut dyn Strategy,
        rng: &mut StdRng,
        tracer: &mut Option<&mut PathTracer<'_>>,
        bias: f64,
        detail: &mut Option<&mut PathDetail>,
        steps: &mut u64,
        log_weight: &mut f64,
        margin: f64,
        prof: &mut P,
    ) -> Result<Option<PathOutcome>, SimError> {
        if *steps >= self.max_steps {
            return Ok(Some(PathOutcome {
                verdict: Verdict::StepLimit,
                steps: *steps,
                end_time: state.time,
            }));
        }
        *steps += 1;
        let steps_now = *steps;

        // Location occupancy: one tick per (process, current location)
        // per engine step. The `ENABLED` guard keeps the unprofiled
        // instantiation free of the per-process loop entirely.
        if P::ENABLED {
            for (p, loc) in state.locs.iter().enumerate() {
                prof.loc_step(p, loc.0);
            }
        }

        // One rate refresh serves the whole step: rates depend only on
        // the locations, which no delay changes (see
        // `Network::rates_refresh`), so every `*_rated` call below
        // reuses this buffer bit-identically to a per-call refresh.
        self.net.rates_refresh(&self.tables, &mut s.step, state);

        let remaining = self.property.remaining(state);
        self.goal
            .window_rated_prof(self.net, &mut s.step, &mut s.pool, state, &mut s.goal_win, prof)
            .map_err(SimError::Eval)?;
        // For bounded until: the set of delays at which `hold` is
        // violated (empty for plain reachability).
        match &self.hold {
            None => s.viol_win.clear(),
            Some(h) => {
                h.window_rated_prof(
                    self.net,
                    &mut s.step,
                    &mut s.pool,
                    state,
                    &mut s.hold_win,
                    prof,
                )
                .map_err(SimError::Eval)?;
                s.hold_win.complement_into(&mut s.viol_win);
            }
        }
        if s.goal_win.contains(0.0) {
            return Ok(Some(PathOutcome {
                verdict: Verdict::Satisfied,
                steps: steps_now - 1,
                end_time: state.time,
            }));
        }
        if s.viol_win.contains(0.0) {
            return Ok(Some(PathOutcome {
                verdict: Verdict::HoldViolated,
                steps: steps_now - 1,
                end_time: state.time,
            }));
        }
        if remaining <= 0.0 {
            return Ok(Some(PathOutcome {
                verdict: Verdict::TimeBoundExceeded,
                steps: steps_now - 1,
                end_time: state.time,
            }));
        }

        self.net
            .delay_window_rated_prof(&self.tables, &mut s.step, state, &mut s.inv_window, prof)
            .map_err(SimError::Eval)?;
        let cap = remaining + margin;

        self.net
            .guarded_candidates_rated_prof(&self.tables, &mut s.step, state, prof)
            .map_err(SimError::Eval)?;

        // Urgency (AADL-eager transitions): time may not pass beyond
        // the first instant an urgent candidate becomes enabled.
        let mut urgency_cutoff = f64::INFINITY;
        for c in s.step.candidates() {
            if c.urgent {
                c.window.intersect_into(&s.inv_window, &mut s.tmp);
                if let Some(inf) = s.tmp.inf() {
                    urgency_cutoff = urgency_cutoff.min(inf);
                }
            }
        }
        if urgency_cutoff.is_finite() {
            s.inv_window.truncate_into(urgency_cutoff, &mut s.window);
        } else {
            s.window.copy_from(&s.inv_window);
        }

        // Guarded candidates: windows ∩ effective delay window,
        // infinite tails capped at the horizon. Slots are recycled
        // from the pool; only `..n_sched` is live this step.
        s.n_sched = 0;
        for c in s.step.candidates() {
            c.window.intersect_into(&s.window, &mut s.tmp);
            cap_infinite_into(&s.tmp, cap, &mut s.tmp2);
            if !s.tmp2.is_empty() {
                let slot = next_sched(&mut s.sched, &mut s.n_sched);
                slot.transition.action = c.action;
                slot.transition.parts.clear();
                slot.transition.parts.extend_from_slice(&c.parts);
                slot.window.copy_from(&s.tmp2);
            }
        }
        self.net.markovian_candidates_into(&self.tables, &mut s.step, state);

        // Precomputed strategy views: the schedulable union (left fold
        // in candidate order, as Progressive computed it) and the
        // horizon-capped delay window (Local/MaxTime).
        s.schedulable.clear();
        for i in 0..s.n_sched {
            s.schedulable.union_into(&s.sched[i].window, &mut s.tmp);
            std::mem::swap(&mut s.schedulable, &mut s.tmp);
        }
        cap_infinite_into(&s.window, cap, &mut s.capped);

        let decision = strategy.decide(
            &StepView {
                net: self.net,
                state,
                window: &s.window,
                guarded: &s.sched[..s.n_sched],
                cap,
                schedulable: Some(&s.schedulable),
                capped: Some(&s.capped),
            },
            rng,
        )?;
        if let Some(t) = tracer.as_deref_mut() {
            t.decision(steps_now, state, &decision, &s.sched[..s.n_sched]);
        }
        if let Some(d) = detail.as_deref_mut() {
            match &decision {
                Decision::Fire { .. } => d.decisions_fire += 1,
                Decision::Wait { .. } => d.decisions_wait += 1,
                Decision::Stuck => d.decisions_stuck += 1,
                Decision::Abort => {}
            }
        }

        // Markovian race: total-rate exponential + categorical winner.
        // Under importance sampling all rates are scaled by `bias`
        // (the winner distribution is unchanged — scaling is uniform).
        let m_sample: Option<(f64, (ProcId, TransId), f64, f64)> = {
            let markovian = s.step.markovian();
            if markovian.is_empty() {
                None
            } else {
                let total: f64 = markovian.iter().map(|&(_, _, r)| r).sum();
                let t = exponential_from_uniform(rng.gen::<f64>(), total * bias);
                let mut pick = rng.gen::<f64>() * total;
                let (lp, lt, lr) = markovian[markovian.len() - 1];
                let mut winner = ((lp, lt), lr);
                for &(p, t_id, r) in markovian {
                    if pick < r {
                        winner = ((p, t_id), r);
                        break;
                    }
                    pick -= r;
                }
                Some((t, winner.0, total, winner.1))
            }
        };

        // Likelihood-ratio bookkeeping for importance sampling:
        // a Markovian firing at t contributes (1/bias)·e^{(bias−1)Λt};
        // observing *no* Markovian event up to a delay d (censoring)
        // contributes e^{(bias−1)Λd}.
        let lr_fire = |t: f64, total: f64| -bias.ln() + (bias - 1.0) * total * t;
        let lr_censor = |d: f64, total: f64| (bias - 1.0) * total * d;

        let resolved = match decision {
            Decision::Abort => return Err(SimError::InputAborted),
            Decision::Fire { delay, candidate } => match m_sample {
                Some((t, mt, total, rate)) if t < delay => {
                    *log_weight += lr_fire(t, total);
                    Resolved::Fire {
                        delay: t,
                        src: FireSrc::Markov(mt),
                        rates: Some((rate, total)),
                    }
                }
                m => {
                    if let Some((_, _, total, _)) = m {
                        *log_weight += lr_censor(delay, total);
                    }
                    Resolved::Fire { delay, src: FireSrc::Guarded(candidate), rates: None }
                }
            },
            Decision::Wait { delay } => match m_sample {
                Some((t, mt, total, rate)) if t < delay => {
                    *log_weight += lr_fire(t, total);
                    Resolved::Fire {
                        delay: t,
                        src: FireSrc::Markov(mt),
                        rates: Some((rate, total)),
                    }
                }
                m => {
                    if let Some((_, _, total, _)) = m {
                        *log_weight += lr_censor(delay, total);
                    }
                    Resolved::Wait { delay }
                }
            },
            Decision::Stuck => match m_sample {
                Some((t, mt, total, rate)) if s.window.contains(t) => {
                    *log_weight += lr_fire(t, total);
                    Resolved::Fire {
                        delay: t,
                        src: FireSrc::Markov(mt),
                        rates: Some((rate, total)),
                    }
                }
                Some((_, _, total, _)) => {
                    let horizon = s.window.sup().unwrap_or(0.0);
                    *log_weight += lr_censor(horizon, total);
                    Resolved::Lock { verdict: Verdict::Timelock, horizon }
                }
                None => {
                    let bounded = s.window.sup().is_none_or(f64::is_finite);
                    if bounded {
                        Resolved::Lock {
                            verdict: Verdict::Timelock,
                            horizon: s.window.sup().unwrap_or(0.0),
                        }
                    } else {
                        Resolved::Lock { verdict: Verdict::Deadlock, horizon: remaining }
                    }
                }
            },
        };

        match resolved {
            Resolved::Fire { delay, src, rates } => {
                match scan_delay(&s.goal_win, &s.viol_win, delay.min(remaining), &mut s.tmp) {
                    Scan::Goal(hit) => {
                        return Ok(Some(PathOutcome {
                            verdict: Verdict::Satisfied,
                            steps: steps_now,
                            end_time: state.time + hit,
                        }))
                    }
                    Scan::Violated(at) => {
                        return Ok(Some(PathOutcome {
                            verdict: Verdict::HoldViolated,
                            steps: steps_now,
                            end_time: state.time + at,
                        }))
                    }
                    Scan::Clear => {}
                }
                if delay > remaining {
                    return Ok(Some(PathOutcome {
                        verdict: Verdict::TimeBoundExceeded,
                        steps: steps_now,
                        end_time: self.property.bound,
                    }));
                }
                if delay > 0.0 {
                    if let Some(t) = tracer.as_deref_mut() {
                        t.delay(steps_now, state, delay);
                    }
                    self.net
                        .advance_rated_prof(
                            &self.tables,
                            &mut s.step,
                            state,
                            delay,
                            &s.inv_window,
                            prof,
                        )
                        .map_err(SimError::Eval)?;
                }
                let is_markov = matches!(src, FireSrc::Markov(_));
                if let Some(t) = tracer.as_deref_mut() {
                    // Cold path: materialize the transition only when
                    // a tracer asks for it.
                    let gt = match &src {
                        FireSrc::Guarded(i) => s.sched[*i].transition.clone(),
                        FireSrc::Markov((p, t_id)) => {
                            GlobalTransition { action: ActionId::TAU, parts: vec![(*p, *t_id)] }
                        }
                    };
                    let (rate, rate_total) = match rates {
                        Some((r, total)) => (Some(r), Some(total)),
                        None => (None, None),
                    };
                    t.fire(steps_now, state, &gt, is_markov, rate, rate_total);
                }
                match src {
                    FireSrc::Guarded(i) => self
                        .net
                        .apply_mut_prof(
                            &self.tables,
                            &mut s.step,
                            state,
                            &s.sched[i].transition.parts,
                            prof,
                        )
                        .map_err(SimError::Eval)?,
                    FireSrc::Markov((p, t_id)) => {
                        let parts = [(p, t_id)];
                        self.net
                            .apply_mut_prof(&self.tables, &mut s.step, state, &parts, prof)
                            .map_err(SimError::Eval)?;
                    }
                }
                if let Some(t) = tracer.as_deref_mut() {
                    t.snapshot(steps_now, state);
                }
                if let Some(d) = detail.as_deref_mut() {
                    if is_markov {
                        d.fires_markovian += 1;
                    } else {
                        d.fires_guarded += 1;
                    }
                }
            }
            Resolved::Wait { delay } => {
                match scan_delay(&s.goal_win, &s.viol_win, delay.min(remaining), &mut s.tmp) {
                    Scan::Goal(hit) => {
                        return Ok(Some(PathOutcome {
                            verdict: Verdict::Satisfied,
                            steps: steps_now,
                            end_time: state.time + hit,
                        }))
                    }
                    Scan::Violated(at) => {
                        return Ok(Some(PathOutcome {
                            verdict: Verdict::HoldViolated,
                            steps: steps_now,
                            end_time: state.time + at,
                        }))
                    }
                    Scan::Clear => {}
                }
                if delay > remaining {
                    return Ok(Some(PathOutcome {
                        verdict: Verdict::TimeBoundExceeded,
                        steps: steps_now,
                        end_time: self.property.bound,
                    }));
                }
                if let Some(t) = tracer.as_deref_mut() {
                    t.delay(steps_now, state, delay);
                }
                self.net
                    .advance_rated_prof(
                        &self.tables,
                        &mut s.step,
                        state,
                        delay,
                        &s.inv_window,
                        prof,
                    )
                    .map_err(SimError::Eval)?;
                if let Some(t) = tracer.as_deref_mut() {
                    t.snapshot(steps_now, state);
                }
                if let Some(d) = detail.as_deref_mut() {
                    d.waits += 1;
                }
            }
            Resolved::Lock { verdict, horizon } => {
                match scan_delay(&s.goal_win, &s.viol_win, horizon.min(remaining), &mut s.tmp) {
                    Scan::Goal(hit) => {
                        return Ok(Some(PathOutcome {
                            verdict: Verdict::Satisfied,
                            steps: steps_now,
                            end_time: state.time + hit,
                        }))
                    }
                    Scan::Violated(at) => {
                        return Ok(Some(PathOutcome {
                            verdict: Verdict::HoldViolated,
                            steps: steps_now,
                            end_time: state.time + at,
                        }))
                    }
                    Scan::Clear => {}
                }
                return Ok(Some(PathOutcome { verdict, steps: steps_now, end_time: state.time }));
            }
        }
        Ok(None)
    }

    /// Generates `count` paths with indices `start`, `start + stride`,
    /// `start + 2·stride`, … on the **batched structure-of-arrays
    /// kernel**, clearing `out` and pushing one result per path in index
    /// order.
    ///
    /// Lane `j` consumes exactly the RNG stream `path_rng(seed, start +
    /// stride·j)` and is advanced by the same step function the scalar
    /// `generate*` family uses, so every lane's outcome is bit-identical
    /// to `generate_with` on that stream — independent of the lane count
    /// and of how the other lanes terminate. Lanes that end early simply
    /// drop out of the sweep while the rest keep stepping (the scalar
    /// drain). The lane-exactness contract assumes a memoryless
    /// `strategy` (all built-in [`crate::strategy::StrategyKind`]s are);
    /// traced paths must use the scalar [`Self::generate_traced_with`],
    /// since a trace follows a single path.
    ///
    /// A lane hitting a simulation error records `Err` in its slot
    /// without disturbing the other lanes. With `obs` present, per-path
    /// metrics are flushed for every successful lane; wall time is
    /// attributed as the batch's elapsed time divided evenly across its
    /// lanes.
    ///
    /// # Panics
    /// Panics when `stride == 0` while `count > 1` (the lanes would alias
    /// one RNG stream).
    #[allow(clippy::too_many_arguments)]
    pub fn generate_batch_with(
        &self,
        scratch: &mut BatchScratch,
        strategy: &mut dyn Strategy,
        seed: u64,
        start: u64,
        stride: u64,
        count: usize,
        obs: Option<&SimObserver>,
        out: &mut Vec<Result<PathOutcome, SimError>>,
    ) {
        let t0 = obs.map(|_| std::time::Instant::now());
        self.run_batch(
            scratch,
            strategy,
            seed,
            start,
            stride,
            count,
            1.0,
            obs.is_some(),
            &mut NoopProfile,
        );
        scratch.record_batch(count, obs, t0);
        out.clear();
        out.extend(
            scratch.results[..count]
                .iter_mut()
                .map(|slot| slot.take().expect("lane finished").map(|(o, _)| o)),
        );
    }

    /// [`Self::generate_batch_with`] with a kernel profiler attached: every
    /// lane records opcode, guard, firing and occupancy counts into `prof`,
    /// and the batch as a whole contributes one lane-utilization sample
    /// (see [`slim_obs::profile::ProfileHooks::batch`]). Lane outcomes stay
    /// bit-identical to the unprofiled batch on the same streams.
    ///
    /// # Panics
    /// Panics when `stride == 0` while `count > 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_batch_profiled_with<P: ProfileHooks>(
        &self,
        scratch: &mut BatchScratch,
        strategy: &mut dyn Strategy,
        seed: u64,
        start: u64,
        stride: u64,
        count: usize,
        prof: &mut P,
        out: &mut Vec<Result<PathOutcome, SimError>>,
    ) {
        self.run_batch(scratch, strategy, seed, start, stride, count, 1.0, false, prof);
        out.clear();
        out.extend(
            scratch.results[..count]
                .iter_mut()
                .map(|slot| slot.take().expect("lane finished").map(|(o, _)| o)),
        );
    }

    /// [`Self::generate_batch_with`] under an importance-sampling `bias`
    /// (see [`Self::generate_biased`]): each result additionally carries
    /// the likelihood ratio of its trajectory.
    ///
    /// # Panics
    /// Panics unless `bias > 0`, and when `stride == 0` while
    /// `count > 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_batch_biased_with(
        &self,
        scratch: &mut BatchScratch,
        strategy: &mut dyn Strategy,
        seed: u64,
        start: u64,
        stride: u64,
        count: usize,
        bias: f64,
        out: &mut Vec<Result<(PathOutcome, f64), SimError>>,
    ) {
        assert!(bias > 0.0 && bias.is_finite(), "bias must be positive, got {bias}");
        self.run_batch(
            scratch,
            strategy,
            seed,
            start,
            stride,
            count,
            bias,
            false,
            &mut NoopProfile,
        );
        out.clear();
        out.extend(
            scratch.results[..count].iter_mut().map(|slot| slot.take().expect("lane finished")),
        );
    }

    /// The batched engine core: initializes `count` lanes and sweeps them
    /// round-robin, advancing every live lane by one engine step per pass
    /// until the batch drains. Results land in `scratch.results`.
    #[allow(clippy::too_many_arguments)]
    fn run_batch<P: ProfileHooks>(
        &self,
        b: &mut BatchScratch,
        strategy: &mut dyn Strategy,
        seed: u64,
        start: u64,
        stride: u64,
        count: usize,
        bias: f64,
        observed: bool,
        prof: &mut P,
    ) {
        assert!(stride > 0 || count <= 1, "stride must be positive for multi-lane batches");
        b.ensure_lanes(count);
        let init = match &self.initial {
            Ok(init) => init,
            Err(e) => {
                for slot in &mut b.results[..count] {
                    *slot = Some(Err(SimError::Eval(e.clone())));
                }
                return;
            }
        };
        for j in 0..count {
            b.states[j].copy_from(init);
            b.rngs[j] = path_rng(seed, start + stride * j as u64);
            b.steps[j] = 0;
            b.log_weights[j] = 0.0;
            b.results[j] = None;
            if observed {
                b.details[j] = PathDetail::default();
            }
        }
        let margin = step_margin(self.property);
        // Each lane is swept to completion in index order. Lanes consume
        // disjoint RNG streams and never read each other's state, so the
        // sweep order is unobservable — and completion order keeps the
        // lane's state hot in cache and the interpreter's branch history
        // coherent, which measures noticeably faster than a round-robin
        // sweep on the zoo models.
        for j in 0..count {
            let mut no_tracer: Option<&mut PathTracer<'_>> = None;
            let result = loop {
                let mut detail = if observed { b.details.get_mut(j) } else { None };
                match self.step_path(
                    &mut b.sim,
                    &mut b.states[j],
                    strategy,
                    &mut b.rngs[j],
                    &mut no_tracer,
                    bias,
                    &mut detail,
                    &mut b.steps[j],
                    &mut b.log_weights[j],
                    margin,
                    prof,
                ) {
                    Ok(None) => {}
                    Ok(Some(outcome)) => break Ok((outcome, b.log_weights[j].exp())),
                    Err(e) => break Err(e),
                }
            };
            b.results[j] = Some(result);
        }
        if P::ENABLED && count > 0 {
            prof.batch(&b.steps[..count]);
        }
    }
}

/// Reusable workspace for [`PathGenerator::generate_batch_with`]: one
/// shared [`SimScratch`] (per-step windows, candidate pools and solver
/// buffers are recomputed from scratch each step, so every lane can reuse
/// them) plus structure-of-arrays per-lane columns — states, RNG streams,
/// step counters, likelihood weights, outcome slots and observer
/// counters. Allocated once and recycled across batches; after warm-up a
/// batch performs no heap allocation.
#[derive(Debug)]
pub struct BatchScratch {
    sim: SimScratch,
    states: Vec<NetState>,
    rngs: Vec<StdRng>,
    steps: Vec<u64>,
    log_weights: Vec<f64>,
    results: Vec<Option<Result<(PathOutcome, f64), SimError>>>,
    details: Vec<PathDetail>,
    lane_sort: Vec<u64>,
}

impl BatchScratch {
    /// Creates an empty workspace (lane columns grow on first use).
    pub fn new() -> BatchScratch {
        BatchScratch {
            sim: SimScratch::new(),
            states: Vec::new(),
            rngs: Vec::new(),
            steps: Vec::new(),
            log_weights: Vec::new(),
            results: Vec::new(),
            details: Vec::new(),
            lane_sort: Vec::new(),
        }
    }

    /// The underlying scalar scratch — the escape hatch for paths that
    /// must run on the scalar kernel (traced generation, witness replay).
    pub fn sim_mut(&mut self) -> &mut SimScratch {
        &mut self.sim
    }

    /// Grows every lane column to at least `count` entries. Columns only
    /// grow (a short tail batch never sheds the capacity the full-width
    /// batches warmed up) and stay in lockstep.
    fn ensure_lanes(&mut self, count: usize) {
        if self.states.len() < count {
            self.states
                .resize_with(count, || NetState::new(Vec::new(), Valuation::new(Vec::new())));
            self.rngs.resize_with(count, || StdRng::seed_from_u64(0));
            self.steps.resize(count, 0);
            self.log_weights.resize(count, 0.0);
            self.results.resize_with(count, || None);
            self.details.resize_with(count, PathDetail::default);
        }
    }

    /// Flushes per-path metrics of the batch's successful lanes to `obs`,
    /// attributing the batch's wall time evenly across its lanes.
    fn record_batch(
        &mut self,
        count: usize,
        obs: Option<&SimObserver>,
        t0: Option<std::time::Instant>,
    ) {
        let (Some(obs), Some(t0)) = (obs, t0) else { return };
        self.lane_sort.clear();
        self.lane_sort.extend_from_slice(&self.steps[..count]);
        self.lane_sort.sort_unstable_by(|a, b| b.cmp(a));
        obs.record_batch_lanes(&self.lane_sort);
        let per_lane = (t0.elapsed().as_nanos() as u64) / count.max(1) as u64;
        for d in self.details.iter_mut().take(count) {
            d.nanos = per_lane;
        }
        let paths =
            self.results.iter().take(count).zip(&self.details).filter_map(|(r, d)| match r {
                Some(Ok((outcome, _))) => Some((outcome, d)),
                _ => None,
            });
        obs.record_path_batch(paths, per_lane / 1_000);
    }
}

impl Default for BatchScratch {
    fn default() -> BatchScratch {
        BatchScratch::new()
    }
}

/// Margin past the horizon for truncating unbounded enabling windows: any
/// delay beyond the remaining bound is verdict-equivalent, so the exact
/// cap does not affect outcomes (see docs/semantics.md).
fn step_margin(property: &TimedReach) -> f64 {
    (0.1 * property.bound).max(1.0)
}

/// What happens first along a delay of length `up_to`.
enum Scan {
    /// The goal is hit (first) at this delay.
    Goal(f64),
    /// The hold predicate is violated (strictly first) at this delay.
    Violated(f64),
    /// Neither occurs within the scanned prefix.
    Clear,
}

/// Scans `[0, up_to]` for the first goal hit and the first hold
/// violation; a tie counts as satisfaction (at the goal instant `hold`
/// need not hold any more — standard until semantics).
fn scan_delay(
    goal_win: &IntervalSet,
    viol_win: &IntervalSet,
    up_to: f64,
    tmp: &mut IntervalSet,
) -> Scan {
    goal_win.truncate_into(up_to, tmp);
    let goal_at = tmp.inf();
    viol_win.truncate_into(up_to, tmp);
    let viol_at = tmp.inf();
    match (goal_at, viol_at) {
        (Some(g), Some(v)) if g <= v => Scan::Goal(g),
        (Some(g), None) => Scan::Goal(g),
        (_, Some(v)) => Scan::Violated(v),
        (None, None) => Scan::Clear,
    }
}

/// Replaces an infinite tail by a bounded one ending at `cap`,
/// writing the result into `out` without allocating.
fn cap_infinite_into(set: &IntervalSet, cap: f64, out: &mut IntervalSet) {
    match set.sup() {
        Some(s) if s.is_finite() => out.copy_from(set),
        Some(_) => set.truncate_into(cap.max(set.inf().unwrap_or(0.0)), out),
        None => out.clear(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Goal;
    use crate::strategy::{Asap, MaxTime, Progressive, StrategyKind};
    use crate::trace::{MemorySink, TraceEvent};
    use slim_automata::prelude::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Clock-driven one-shot: fires between 2 and 4, sets `done`.
    fn window_net() -> (Network, Expr) {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let done = b.var("done", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("wait", Expr::var(x).le(Expr::real(4.0)), []);
        let l1 = a.location("done");
        let g = Expr::var(x).ge(Expr::real(2.0)).and(Expr::var(x).le(Expr::real(4.0)));
        a.guarded(l0, ActionId::TAU, g, [Effect::assign(done, Expr::bool(true))], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Expr::var(net.var_id("done").unwrap());
        (net, goal)
    }

    #[test]
    fn asap_hits_earliest_instant() {
        let (net, goal) = window_net();
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((out.end_time - 2.0).abs() < 1e-9, "end {}", out.end_time);
    }

    #[test]
    fn maxtime_hits_boundary_instant() {
        let (net, goal) = window_net();
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut MaxTime, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((out.end_time - 4.0).abs() < 1e-9, "end {}", out.end_time);
    }

    #[test]
    fn progressive_hits_inside_window() {
        let (net, goal) = window_net();
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        for seed in 0..20 {
            let out = gen.generate(&mut Progressive, &mut rng(seed)).unwrap();
            assert_eq!(out.verdict, Verdict::Satisfied);
            assert!((2.0 - 1e-9..=4.0 + 1e-9).contains(&out.end_time), "end {}", out.end_time);
        }
    }

    #[test]
    fn bound_too_small_fails() {
        let (net, goal) = window_net();
        let prop = TimedReach::new(Goal::expr(goal), 1.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::TimeBoundExceeded);
    }

    #[test]
    fn goal_at_exact_bound_satisfied() {
        let (net, goal) = window_net();
        // Goal becomes reachable exactly at t = 2 with bound 2 (inclusive).
        let prop = TimedReach::new(Goal::expr(goal), 2.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
    }

    #[test]
    fn timed_goal_detected_mid_delay() {
        // Goal is a pure clock condition hit during a long delay, with no
        // discrete transition at that instant.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("only", Expr::var(x).le(Expr::real(100.0)), []);
        let _ = l0;
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(net.var_id("x").unwrap()).ge(Expr::real(7.0)));
        let prop = TimedReach::new(goal, 50.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        // MaxTime would delay to 100 — the goal is hit at 7 on the way.
        let out = gen.generate(&mut MaxTime, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((out.end_time - 7.0).abs() < 1e-9, "end {}", out.end_time);
    }

    #[test]
    fn deadlock_classified() {
        // Single location, no transitions, no invariant: time diverges.
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        a.location("sink");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Deadlock);
        assert!(!out.verdict.is_success());
    }

    #[test]
    fn timelock_classified() {
        // Invariant x <= 3 but the only transition needs x >= 5.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("trap", Expr::var(x).le(Expr::real(3.0)), []);
        let l1 = a.location("free");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(5.0)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Timelock);
    }

    #[test]
    fn goal_during_lock_window_still_satisfied() {
        // Timelock at x = 3, but the goal (x >= 2) is hit on the way.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location_with("trap", Expr::var(x).le(Expr::real(3.0)), []);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(net.var_id("x").unwrap()).ge(Expr::real(2.0)));
        let prop = TimedReach::new(goal, 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((out.end_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn markovian_transition_fires() {
        // ok --(λ=2)--> failed; goal = failed location.
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("err");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, 2.0, [], failed);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "err", "failed").unwrap();
        let prop = TimedReach::new(goal, 100.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let mut times = Vec::new();
        for seed in 0..200 {
            let out = gen.generate(&mut Asap, &mut rng(seed)).unwrap();
            assert_eq!(out.verdict, Verdict::Satisfied);
            times.push(out.end_time);
        }
        let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
        assert!((mean - 0.5).abs() < 0.12, "mean exp delay {mean} (expect 1/λ = 0.5)");
    }

    #[test]
    fn markovian_race_preempts_guarded_schedule() {
        // Guarded transition at exactly x = 10 vs a fast fault (λ = 10):
        // the fault almost always wins.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut p = AutomatonBuilder::new("worker");
        let w0 = p.location("w0");
        let w1 = p.location("w1");
        p.guarded(w0, ActionId::TAU, Expr::var(x).ge(Expr::real(10.0)), [], w1);
        b.add_automaton(p);
        let mut e = AutomatonBuilder::new("fault");
        let ok = e.location("ok");
        let dead = e.location("dead");
        e.markovian(ok, 10.0, [], dead);
        b.add_automaton(e);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "fault", "dead").unwrap();
        let prop = TimedReach::new(goal, 100.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let mut fault_first = 0;
        for seed in 0..100 {
            let out = gen.generate(&mut Asap, &mut rng(seed)).unwrap();
            if out.verdict == Verdict::Satisfied && out.end_time < 10.0 {
                fault_first += 1;
            }
        }
        assert!(fault_first >= 95, "fault won only {fault_first}/100 races");
    }

    #[test]
    fn step_limit_trips_on_zeno() {
        // Self-loop always enabled at delay 0 (ASAP fires it forever).
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("zeno");
        let l0 = a.location("l");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::FALSE), 10.0);
        let gen = PathGenerator::new(&net, &prop, 50);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::StepLimit);
        assert_eq!(out.steps, 50);
    }

    #[test]
    fn trace_records_structured_events() {
        let (net, goal) = window_net();
        // Use a goal that requires the discrete transition to fire.
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let mut sink = MemorySink::default();
        let out = {
            let mut tracer = PathTracer::new(&net, &mut sink);
            gen.generate_traced(&mut Asap, &mut rng(1), &mut tracer).unwrap()
        };
        assert_eq!(out.verdict, Verdict::Satisfied);
        // Goal is hit exactly when firing; the trace contains the delay.
        assert!(sink.events.iter().any(
            |e| matches!(e, TraceEvent::Delay { duration, .. } if (*duration - 2.0).abs() < 1e-9)
        ));
        // The strategy's decision is recorded with its candidate set.
        assert!(sink.events.iter().any(|e| matches!(
            e,
            TraceEvent::Decision { kind, candidates, chosen: Some(0), .. }
                if kind == "fire" && candidates.len() == 1
        )));
        // Snapshots carry the post-step valuation.
        assert!(sink
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Snapshot { locations, .. } if !locations.is_empty())));
        // The final event is the verdict.
        match sink.events.last().unwrap() {
            TraceEvent::Verdict { verdict, steps, .. } => {
                assert_eq!(verdict, "satisfied");
                assert_eq!(*steps, out.steps);
            }
            other => panic!("expected verdict last, got {other}"),
        }
    }

    #[test]
    fn until_hold_violation_fails_path() {
        // Clock model: goal at x >= 5, hold requires x <= 3 — the hold is
        // violated (strictly) before the goal can be reached.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location("only");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(x).ge(Expr::real(5.0)));
        let hold = Goal::expr(Expr::var(x).le(Expr::real(3.0)));
        let prop = TimedReach::until(hold, goal, 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::HoldViolated);
        assert!((out.end_time - 3.0).abs() < 1e-9, "violated at {}", out.end_time);
    }

    #[test]
    fn until_goal_before_violation_succeeds() {
        // Goal at x >= 2, hold until x <= 4: goal wins.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location("only");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(x).ge(Expr::real(2.0)));
        let hold = Goal::expr(Expr::var(x).le(Expr::real(4.0)));
        let prop = TimedReach::until(hold, goal, 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((out.end_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn until_tie_counts_as_satisfaction() {
        // Goal and violation at the same instant x = 2: satisfied.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location("only");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(x).ge(Expr::real(2.0)));
        let hold = Goal::expr(Expr::var(x).lt(Expr::real(2.0)));
        let prop = TimedReach::until(hold, goal, 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(1)).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
    }

    #[test]
    fn until_hold_violated_by_discrete_effect() {
        // A Markovian fault flips `ok` to false before the (late) goal.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let ok = b.var("ok", VarType::Bool, Value::Bool(true));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("up");
        let l1 = a.location("down");
        a.markovian(l0, 100.0, [Effect::assign(ok, Expr::bool(false))], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let goal = Goal::expr(Expr::var(x).ge(Expr::real(50.0)));
        let hold = Goal::expr(Expr::var(ok));
        let prop = TimedReach::until(hold, goal, 100.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let out = gen.generate(&mut Asap, &mut rng(7)).unwrap();
        assert_eq!(out.verdict, Verdict::HoldViolated);
        assert!(out.end_time < 1.0, "fault should hit quickly, got {}", out.end_time);
    }

    #[test]
    fn urgent_transition_forces_immediate_firing() {
        // An urgent always-enabled transition: even MaxTime must fire it
        // at delay 0 rather than drifting to the horizon.
        let mut b = NetworkBuilder::new();
        let hit = b.var("hit", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded_urgent(
            l0,
            ActionId::TAU,
            Expr::TRUE,
            [Effect::assign(hit, Expr::bool(true))],
            l1,
        );
        b.add_automaton(a);
        let net = b.build().unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(hit)), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        for kind in StrategyKind::ALL {
            let out = gen.generate(kind.instantiate().as_mut(), &mut rng(3)).unwrap();
            assert_eq!(out.verdict, Verdict::Satisfied, "{kind}");
            assert_eq!(out.end_time, 0.0, "{kind} delayed an urgent transition");
        }
    }

    #[test]
    fn urgent_cutoff_bounds_other_candidates() {
        // A non-urgent transition enabled from 1.0 and an urgent one
        // enabled from 2.0: no strategy may fire the non-urgent one later
        // than 2.0.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let late = b.var("late", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(x).ge(Expr::real(1.0)),
            [Effect::assign(late, Expr::var(x).gt(Expr::real(2.0)))],
            l1,
        );
        let mut w = AutomatonBuilder::new("watchdog");
        let w0 = w.location("armed");
        let w1 = w.location("tripped");
        w.guarded_urgent(w0, ActionId::TAU, Expr::var(x).ge(Expr::real(2.0)), [], w1);
        b.add_automaton(a);
        b.add_automaton(w);
        let net = b.build().unwrap();
        let goal = Goal::in_location(&net, "p", "l1").unwrap();
        let prop = TimedReach::new(goal, 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        for kind in StrategyKind::ALL {
            for seed in 0..10 {
                let mut r = rng(seed);
                let mut strategy = kind.instantiate();
                let mut sink = MemorySink::default();
                {
                    let mut tracer = PathTracer::new(&net, &mut sink);
                    let _ = gen.generate_traced(strategy.as_mut(), &mut r, &mut tracer).unwrap();
                }
                // Until the urgent watchdog has fired, time must not pass
                // its 2.0 enabling instant — so the FIRST discrete event
                // of every path happens no later than 2.0.
                let first_fire_at = sink
                    .events
                    .iter()
                    .find_map(|e| match e {
                        TraceEvent::Fire { at, .. } => Some(*at),
                        _ => None,
                    })
                    .expect("some transition fires");
                assert!(
                    first_fire_at <= 2.0 + 1e-9,
                    "{kind}/{seed}: first event at {first_fire_at} past the urgency cutoff"
                );
            }
        }
    }

    #[test]
    fn seeded_runs_reproduce() {
        let (net, goal) = window_net();
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        for kind in StrategyKind::ALL {
            let a = gen.generate(kind.instantiate().as_mut(), &mut rng(42)).unwrap();
            let b = gen.generate(kind.instantiate().as_mut(), &mut rng(42)).unwrap();
            assert_eq!(a, b, "strategy {kind} not reproducible");
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        // One SimScratch carried across many paths and strategies must
        // yield exactly the outcomes of per-path fresh scratches: leftover
        // pool contents and stale buffer lengths may never leak between
        // paths.
        let (net, goal) = window_net();
        let prop = TimedReach::new(Goal::expr(goal), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let mut shared = SimScratch::new();
        for kind in StrategyKind::ALL {
            for seed in 0..25 {
                let a = gen
                    .generate_with(&mut shared, kind.instantiate().as_mut(), &mut rng(seed))
                    .unwrap();
                let b = gen.generate(kind.instantiate().as_mut(), &mut rng(seed)).unwrap();
                assert_eq!(a, b, "strategy {kind}, seed {seed}");
            }
        }
    }
}
