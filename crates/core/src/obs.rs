//! Run-time observability for the simulator.
//!
//! A [`SimObserver`] bundles a [`MetricsRegistry`] with pre-registered
//! handles for everything the runner and engine measure: per-verdict path
//! counters, step/latency histograms, strategy decision counters,
//! round-robin collector depth, per-worker throughput, and phase wall
//! times. Instrumented code receives `Option<&SimObserver>`; with `None`
//! the cost is a single never-taken branch, and with `Some` every record
//! is a relaxed atomic add — the observer never takes a lock on the
//! sampling hot path and never touches the RNG, so it cannot perturb
//! `(seed, workers)`-determinism.

use crate::verdict::{PathOutcome, Verdict};
use crate::witness::WitnessSelector;
use slim_obs::metrics::{CounterId, HistogramId, MetricsRegistry, MetricsSnapshot};
use slim_obs::report::ConvergencePoint;
use std::sync::Mutex;
use std::time::Duration;

/// Progress callback: `(samples_consumed, known_target, estimate)` with
/// `estimate = Some((p̂, half_width))` once at least one sample is in.
pub type ProgressFn = Box<dyn Fn(u64, Option<u64>, Option<(f64, f64)>) + Send + Sync>;

/// Per-worker counter handles.
#[derive(Debug, Clone, Copy)]
struct WorkerIds {
    paths: CounterId,
    satisfied: CounterId,
    busy_nanos: CounterId,
}

/// Per-path detail accumulated locally by the engine and flushed once per
/// path (cheaper and simpler than per-event atomics).
#[derive(Debug, Clone, Copy, Default)]
pub struct PathDetail {
    /// Markovian transition firings.
    pub fires_markovian: u64,
    /// Strategy-scheduled (guarded) transition firings.
    pub fires_guarded: u64,
    /// Pure delay steps (no firing).
    pub waits: u64,
    /// Strategy decisions that scheduled a firing.
    pub decisions_fire: u64,
    /// Strategy decisions that scheduled a pure wait.
    pub decisions_wait: u64,
    /// Strategy decisions reporting no schedulable candidate.
    pub decisions_stuck: u64,
    /// Wall time spent generating the path, in nanoseconds.
    pub nanos: u64,
}

/// One worker's aggregate contribution, extracted for run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStat {
    /// Paths the worker produced.
    pub paths: u64,
    /// Satisfied paths among them.
    pub satisfied: u64,
    /// Wall time the worker spent simulating, in nanoseconds.
    pub busy_nanos: u64,
}

/// Shared, lock-cheap instrumentation for one analysis run.
pub struct SimObserver {
    registry: MetricsRegistry,
    // Engine-level (flushed once per path).
    c_verdicts: [CounterId; 6],
    c_steps_total: CounterId,
    c_fires_markovian: CounterId,
    c_fires_guarded: CounterId,
    c_waits: CounterId,
    c_decisions_fire: CounterId,
    c_decisions_wait: CounterId,
    c_decisions_stuck: CounterId,
    h_steps_per_path: HistogramId,
    h_path_micros: HistogramId,
    // Collector-level (recorded by the consuming thread only).
    c_samples_consumed: CounterId,
    c_rounds_drained: CounterId,
    c_deadlocks: CounterId,
    c_timelocks: CounterId,
    h_buffer_depth: HistogramId,
    h_drain_batch: HistogramId,
    h_drain_gap_micros: HistogramId,
    // Batched-kernel lane utilization (flushed once per batch).
    c_batches: CounterId,
    c_scalar_drains: CounterId,
    h_active_lanes: HistogramId,
    // Per-worker.
    workers: Vec<WorkerIds>,
    // Cold path only: phase ends and report building.
    phases: Mutex<Vec<(String, Duration)>>,
    progress: Option<ProgressFn>,
    // Estimator convergence checkpoints (consumer thread only; the Mutex
    // is never contended on the sampling hot path).
    convergence: Mutex<Vec<ConvergencePoint>>,
    // Witness selection (consumer thread only, see `witness`).
    witnesses: Option<Mutex<WitnessSelector>>,
}

impl std::fmt::Debug for SimObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimObserver")
            .field("workers", &self.workers.len())
            .field("progress", &self.progress.is_some())
            .finish_non_exhaustive()
    }
}

fn verdict_slot(v: Verdict) -> usize {
    match v {
        Verdict::Satisfied => 0,
        Verdict::TimeBoundExceeded => 1,
        Verdict::HoldViolated => 2,
        Verdict::Deadlock => 3,
        Verdict::Timelock => 4,
        Verdict::StepLimit => 5,
    }
}

impl SimObserver {
    /// Creates an observer for a run with `workers` worker threads
    /// (pass `1` for sequential runs).
    pub fn new(workers: usize) -> SimObserver {
        let mut r = MetricsRegistry::new();
        let c_verdicts = [
            r.counter("paths.satisfied"),
            r.counter("paths.time_bound_exceeded"),
            r.counter("paths.hold_violated"),
            r.counter("paths.deadlock"),
            r.counter("paths.timelock"),
            r.counter("paths.step_limit"),
        ];
        SimObserver {
            c_steps_total: r.counter("sim.steps_total"),
            c_fires_markovian: r.counter("sim.fires_markovian"),
            c_fires_guarded: r.counter("sim.fires_guarded"),
            c_waits: r.counter("sim.waits"),
            c_decisions_fire: r.counter("strategy.decisions_fire"),
            c_decisions_wait: r.counter("strategy.decisions_wait"),
            c_decisions_stuck: r.counter("strategy.decisions_stuck"),
            h_steps_per_path: r.histogram("sim.steps_per_path"),
            h_path_micros: r.histogram("sim.path_micros"),
            c_samples_consumed: r.counter("collector.samples_consumed"),
            c_rounds_drained: r.counter("collector.rounds_drained"),
            c_deadlocks: r.counter("sim.deadlocks"),
            c_timelocks: r.counter("sim.timelocks"),
            h_buffer_depth: r.histogram("collector.buffer_depth"),
            h_drain_batch: r.histogram("collector.drain_batch"),
            h_drain_gap_micros: r.histogram("collector.drain_gap_micros"),
            c_batches: r.counter("batch.batches"),
            c_scalar_drains: r.counter("batch.scalar_drains"),
            h_active_lanes: r.histogram("batch.active_lanes"),
            workers: (0..workers)
                .map(|w| WorkerIds {
                    paths: r.counter(&format!("worker.{w}.paths")),
                    satisfied: r.counter(&format!("worker.{w}.satisfied")),
                    busy_nanos: r.counter(&format!("worker.{w}.busy_nanos")),
                })
                .collect(),
            c_verdicts,
            phases: Mutex::new(Vec::new()),
            registry: r,
            progress: None,
            convergence: Mutex::new(Vec::new()),
            witnesses: None,
        }
    }

    /// Installs a progress callback, invoked by the runner's consuming
    /// thread after each accepted sample with `(consumed, known_target)`.
    /// Throttling is the callback's job (see `slim_obs::ProgressMeter`).
    #[must_use]
    pub fn with_progress(mut self, f: ProgressFn) -> SimObserver {
        self.progress = Some(f);
        self
    }

    /// Enables witness capture: the runner offers every accepted sample
    /// (in its deterministic consumption order) and the first `k` goal
    /// and lock path *indices* are kept with O(k) memory. Retrieve the
    /// selection with [`Self::witness_selection`] and re-generate the
    /// traces with [`crate::witness::capture_witnesses`].
    #[must_use]
    pub fn with_witness_capture(mut self, k: usize) -> SimObserver {
        self.witnesses = Some(Mutex::new(WitnessSelector::new(k)));
        self
    }

    /// The underlying registry (for ad-hoc reads and snapshots).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Flushes one generated path's detail (called by the engine).
    pub(crate) fn record_path(&self, outcome: &PathOutcome, detail: &PathDetail) {
        let r = &self.registry;
        r.inc(self.c_verdicts[verdict_slot(outcome.verdict)]);
        r.add(self.c_steps_total, outcome.steps);
        r.add(self.c_fires_markovian, detail.fires_markovian);
        r.add(self.c_fires_guarded, detail.fires_guarded);
        r.add(self.c_waits, detail.waits);
        r.add(self.c_decisions_fire, detail.decisions_fire);
        r.add(self.c_decisions_wait, detail.decisions_wait);
        r.add(self.c_decisions_stuck, detail.decisions_stuck);
        r.record(self.h_steps_per_path, outcome.steps);
        r.record(self.h_path_micros, detail.nanos / 1_000);
        match outcome.verdict {
            Verdict::Deadlock => r.inc(self.c_deadlocks),
            Verdict::Timelock => r.inc(self.c_timelocks),
            _ => {}
        }
    }

    /// Flushes a whole batch of path details with one pass over the
    /// shared counters: per-path work is reduced to the value-dependent
    /// histogram records, everything summable lands in locals first. The
    /// final counter values are identical to calling
    /// [`Self::record_path`] per path; `micros` is the per-lane wall time
    /// the caller attributes to every path of the batch.
    pub(crate) fn record_path_batch<'a, I>(&self, paths: I, micros: u64)
    where
        I: Iterator<Item = (&'a PathOutcome, &'a PathDetail)>,
    {
        let r = &self.registry;
        let mut verdicts = [0u64; 6];
        let mut agg = PathDetail::default();
        let mut steps_total = 0u64;
        let mut n = 0u64;
        for (outcome, detail) in paths {
            verdicts[verdict_slot(outcome.verdict)] += 1;
            steps_total += outcome.steps;
            agg.fires_markovian += detail.fires_markovian;
            agg.fires_guarded += detail.fires_guarded;
            agg.waits += detail.waits;
            agg.decisions_fire += detail.decisions_fire;
            agg.decisions_wait += detail.decisions_wait;
            agg.decisions_stuck += detail.decisions_stuck;
            r.record(self.h_steps_per_path, outcome.steps);
            n += 1;
        }
        if n == 0 {
            return;
        }
        for (slot, &count) in verdicts.iter().enumerate() {
            if count > 0 {
                r.add(self.c_verdicts[slot], count);
            }
        }
        r.add(self.c_steps_total, steps_total);
        r.add(self.c_fires_markovian, agg.fires_markovian);
        r.add(self.c_fires_guarded, agg.fires_guarded);
        r.add(self.c_waits, agg.waits);
        r.add(self.c_decisions_fire, agg.decisions_fire);
        r.add(self.c_decisions_wait, agg.decisions_wait);
        r.add(self.c_decisions_stuck, agg.decisions_stuck);
        r.record_n(self.h_path_micros, micros, n);
        if verdicts[verdict_slot(Verdict::Deadlock)] > 0 {
            r.add(self.c_deadlocks, verdicts[verdict_slot(Verdict::Deadlock)]);
        }
        if verdicts[verdict_slot(Verdict::Timelock)] > 0 {
            r.add(self.c_timelocks, verdicts[verdict_slot(Verdict::Timelock)]);
        }
    }

    /// Records one batched-kernel sweep's lane utilization from the
    /// per-lane step counts sorted descending: for each rank `j`, the
    /// engine spent `sorted[j] - sorted[j+1]` steps with exactly `j + 1`
    /// lanes active, so the `batch.active_lanes` histogram weights each
    /// active-lane count by the steps spent there. A single-lane batch is
    /// a scalar drain — the batched kernel degenerating to the scalar
    /// one — counted separately so `bench_report` can explain
    /// batched-vs-scalar throughput deltas.
    pub(crate) fn record_batch_lanes(&self, sorted_desc: &[u64]) {
        if sorted_desc.is_empty() {
            return;
        }
        let r = &self.registry;
        r.inc(self.c_batches);
        if sorted_desc.len() == 1 {
            r.inc(self.c_scalar_drains);
        }
        for (j, &hi) in sorted_desc.iter().enumerate() {
            let lo = sorted_desc.get(j + 1).copied().unwrap_or(0);
            if hi > lo {
                r.record_n(self.h_active_lanes, (j + 1) as u64, hi - lo);
            }
        }
    }

    /// Attributes one path to worker `w` (called by the runner). Indices
    /// beyond the observer's worker count are counted globally but not
    /// attributed.
    pub(crate) fn record_worker_path(&self, w: usize, outcome: &PathOutcome, busy: Duration) {
        if let Some(ids) = self.workers.get(w) {
            self.registry.inc(ids.paths);
            if outcome.verdict.is_success() {
                self.registry.inc(ids.satisfied);
            }
            self.registry.add(ids.busy_nanos, busy.as_nanos() as u64);
        }
    }

    /// Attributes `paths` paths (of which `satisfied` succeeded, each
    /// busy for `busy_each`) to worker `w` in one counter pass — the
    /// aggregate of `paths` [`Self::record_worker_path`] calls.
    pub(crate) fn record_worker_batch(
        &self,
        w: usize,
        paths: u64,
        satisfied: u64,
        busy_each: Duration,
    ) {
        if paths == 0 {
            return;
        }
        if let Some(ids) = self.workers.get(w) {
            self.registry.add(ids.paths, paths);
            if satisfied > 0 {
                self.registry.add(ids.satisfied, satisfied);
            }
            self.registry.add(ids.busy_nanos, (busy_each.as_nanos() as u64).wrapping_mul(paths));
        }
    }

    /// Records one drain of the round-robin collector: how many samples
    /// the batch contained, how many remained buffered afterwards, and
    /// the wall-clock gap since the previous drain.
    pub(crate) fn record_drain(&self, batch: usize, buffered_after: usize, gap: Duration) {
        self.registry.inc(self.c_rounds_drained);
        self.registry.add(self.c_samples_consumed, batch as u64);
        self.registry.record(self.h_drain_batch, batch as u64);
        self.registry.record(self.h_buffer_depth, buffered_after as u64);
        self.registry.record(self.h_drain_gap_micros, gap.as_micros() as u64);
    }

    /// Reports progress through the optional callback.
    pub(crate) fn on_progress(
        &self,
        consumed: u64,
        target: Option<u64>,
        estimate: Option<(f64, f64)>,
    ) {
        if let Some(f) = &self.progress {
            f(consumed, target, estimate);
        }
    }

    /// Offers one accepted sample to the witness selector (no-op without
    /// [`Self::with_witness_capture`]).
    pub(crate) fn offer_witness(&self, index: u64, verdict: Verdict) {
        if let Some(w) = &self.witnesses {
            w.lock().unwrap().offer(index, verdict);
        }
    }

    /// The witness selection after a run (`None` without capture).
    pub fn witness_selection(&self) -> Option<WitnessSelector> {
        self.witnesses.as_ref().map(|w| w.lock().unwrap().clone())
    }

    /// Appends an estimator convergence checkpoint; a point repeating the
    /// previous sample count is dropped, keeping the series strictly
    /// increasing in `samples`.
    pub(crate) fn record_convergence(&self, point: ConvergencePoint) {
        let mut series = self.convergence.lock().unwrap();
        if series.last().is_some_and(|last| last.samples >= point.samples) {
            return;
        }
        series.push(point);
    }

    /// The recorded convergence series (per-checkpoint `p̂` and CI
    /// half-width), in sample order.
    pub fn convergence(&self) -> Vec<ConvergencePoint> {
        self.convergence.lock().unwrap().clone()
    }

    /// Records a phase's wall time (accumulating on repeated names).
    pub fn record_phase(&self, name: &str, d: Duration) {
        let mut phases = self.phases.lock().unwrap();
        if let Some((_, total)) = phases.iter_mut().find(|(n, _)| n == name) {
            *total += d;
        } else {
            phases.push((name.to_string(), d));
        }
    }

    /// The recorded phases in first-occurrence order.
    pub fn phases(&self) -> Vec<(String, Duration)> {
        self.phases.lock().unwrap().clone()
    }

    /// Per-worker aggregates in worker order.
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        self.workers
            .iter()
            .map(|ids| WorkerStat {
                paths: self.registry.counter_value(ids.paths),
                satisfied: self.registry.counter_value(ids.satisfied),
                busy_nanos: self.registry.counter_value(ids.busy_nanos),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(verdict: Verdict, steps: u64) -> PathOutcome {
        PathOutcome { verdict, steps, end_time: 1.0 }
    }

    #[test]
    fn record_path_updates_counters_and_histograms() {
        let obs = SimObserver::new(1);
        let detail = PathDetail {
            fires_markovian: 3,
            fires_guarded: 2,
            waits: 1,
            decisions_fire: 2,
            decisions_wait: 1,
            decisions_stuck: 0,
            nanos: 5_000,
        };
        obs.record_path(&outcome(Verdict::Satisfied, 6), &detail);
        obs.record_path(&outcome(Verdict::Deadlock, 4), &detail);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["paths.satisfied"], 1);
        assert_eq!(snap.counters["paths.deadlock"], 1);
        assert_eq!(snap.counters["sim.deadlocks"], 1);
        assert_eq!(snap.counters["sim.steps_total"], 10);
        assert_eq!(snap.counters["sim.fires_markovian"], 6);
        assert_eq!(snap.counters["strategy.decisions_fire"], 4);
        assert_eq!(snap.histograms["sim.steps_per_path"].count, 2);
        assert_eq!(snap.histograms["sim.path_micros"].max, 5);
    }

    #[test]
    fn worker_attribution_and_out_of_range_guard() {
        let obs = SimObserver::new(2);
        obs.record_worker_path(0, &outcome(Verdict::Satisfied, 1), Duration::from_micros(10));
        obs.record_worker_path(1, &outcome(Verdict::TimeBoundExceeded, 1), Duration::ZERO);
        obs.record_worker_path(7, &outcome(Verdict::Satisfied, 1), Duration::ZERO); // ignored
        let ws = obs.worker_stats();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0], WorkerStat { paths: 1, satisfied: 1, busy_nanos: 10_000 });
        assert_eq!(ws[1], WorkerStat { paths: 1, satisfied: 0, busy_nanos: 0 });
    }

    #[test]
    fn drain_and_phase_recording() {
        let obs = SimObserver::new(1);
        obs.record_drain(4, 2, Duration::from_micros(50));
        obs.record_drain(2, 0, Duration::from_micros(10));
        obs.record_phase("simulate", Duration::from_millis(3));
        obs.record_phase("simulate", Duration::from_millis(2));
        obs.record_phase("estimate", Duration::from_millis(1));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["collector.samples_consumed"], 6);
        assert_eq!(snap.counters["collector.rounds_drained"], 2);
        assert_eq!(snap.histograms["collector.buffer_depth"].max, 2);
        let phases = obs.phases();
        assert_eq!(phases[0], ("simulate".to_string(), Duration::from_millis(5)));
        assert_eq!(phases[1].0, "estimate");
    }

    #[test]
    fn batch_lane_utilization_weights_ranks_by_steps() {
        let obs = SimObserver::new(1);
        // 3 lanes: steps 10, 7, 7 (sorted desc). Rank 1 active for
        // 10-7 = 3 steps, rank 2 for 0 (tie skipped), rank 3 for 7.
        obs.record_batch_lanes(&[10, 7, 7]);
        // A single-lane batch is a scalar drain.
        obs.record_batch_lanes(&[5]);
        obs.record_batch_lanes(&[]); // no-op
        let snap = obs.snapshot();
        assert_eq!(snap.counters["batch.batches"], 2);
        assert_eq!(snap.counters["batch.scalar_drains"], 1);
        let h = &snap.histograms["batch.active_lanes"];
        // Records: (1, n=3), (3, n=7) from the first batch; (1, n=5)
        // from the drain. Total count 15, sum 3·1 + 7·3 + 5·1 = 29.
        assert_eq!(h.count, 15);
        assert_eq!(h.sum, 29);
        assert_eq!(h.max, 3);
    }

    #[test]
    fn progress_callback_fires() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let obs = SimObserver::new(1).with_progress(Box::new(move |done, target, estimate| {
            assert_eq!(target, Some(100));
            assert_eq!(estimate, Some((0.5, 0.05)));
            seen2.store(done, Ordering::Relaxed);
        }));
        obs.on_progress(42, Some(100), Some((0.5, 0.05)));
        assert_eq!(seen.load(Ordering::Relaxed), 42);
        // Without a callback this is a no-op.
        SimObserver::new(1).on_progress(1, None, None);
    }

    #[test]
    fn witness_offers_flow_into_selector() {
        let obs = SimObserver::new(1).with_witness_capture(1);
        obs.offer_witness(0, Verdict::TimeBoundExceeded);
        obs.offer_witness(1, Verdict::Satisfied);
        obs.offer_witness(2, Verdict::Satisfied); // capacity reached
        obs.offer_witness(3, Verdict::Timelock);
        let sel = obs.witness_selection().unwrap();
        assert_eq!(sel.goal(), &[1]);
        assert_eq!(sel.lock(), &[3]);
        // Without capture: no selector, offers are no-ops.
        let plain = SimObserver::new(1);
        plain.offer_witness(0, Verdict::Satisfied);
        assert!(plain.witness_selection().is_none());
    }

    #[test]
    fn convergence_series_stays_strictly_increasing() {
        let obs = SimObserver::new(1);
        obs.record_convergence(ConvergencePoint { samples: 1, mean: 1.0, half_width: 1.0 });
        obs.record_convergence(ConvergencePoint { samples: 2, mean: 0.5, half_width: 0.9 });
        // Duplicate and regressing sample counts are dropped.
        obs.record_convergence(ConvergencePoint { samples: 2, mean: 0.5, half_width: 0.9 });
        obs.record_convergence(ConvergencePoint { samples: 1, mean: 0.0, half_width: 0.1 });
        let series = obs.convergence();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].samples, 2);
    }
}
