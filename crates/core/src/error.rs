//! Simulator error types.

use slim_automata::error::EvalError;
use std::fmt;

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SimError {
    /// A runtime evaluation error in a guard, invariant, effect or goal.
    Eval(EvalError),
    /// A deadlock was reached and the configuration demands an error
    /// (§III-D of the paper: `slimsim` can be configured to generate an
    /// error upon detection of a deadlock).
    DeadlockDetected { time: f64, description: String },
    /// A path exceeded the configured maximum number of steps — usually a
    /// Zeno model or a `Local` strategy stuck re-sampling delays.
    StepLimitExceeded { limit: u64 },
    /// The input oracle (interactive strategy) aborted the simulation.
    InputAborted,
    /// The input oracle returned an invalid choice.
    InvalidInput { detail: String },
    /// A worker thread panicked or disconnected.
    WorkerFailed { detail: String },
    /// Replaying a recorded trace diverged from the model at the given
    /// event index (0-based into the trace's event list).
    ReplayMismatch { event: usize, detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Eval(e) => write!(f, "evaluation error: {e}"),
            SimError::DeadlockDetected { time, description } => {
                write!(f, "deadlock detected at t={time}: {description}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(f, "path exceeded the step limit of {limit}")
            }
            SimError::InputAborted => write!(f, "interactive input aborted"),
            SimError::InvalidInput { detail } => write!(f, "invalid input choice: {detail}"),
            SimError::WorkerFailed { detail } => write!(f, "worker failed: {detail}"),
            SimError::ReplayMismatch { event, detail } => {
                write!(f, "replay diverged at event {event}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source() {
        use std::error::Error;
        let e = SimError::from(EvalError::DivisionByZero);
        assert!(e.to_string().contains("division"));
        assert!(e.source().is_some());
        let d = SimError::DeadlockDetected { time: 1.5, description: "no moves".into() };
        assert!(d.to_string().contains("t=1.5"));
        assert!(d.source().is_none());
    }
}
