//! Uniformization-based transient analysis — the MRMC substitute.
//!
//! Time-bounded reachability `P(◇[0,t] G)` is computed by making the goal
//! states absorbing and summing the transient probability mass in `G` at
//! time `t`:
//!
//! ```text
//! π(t) = Σ_k Poisson(q·t; k) · π(0) · Pᵏ,    P = I + Q/q
//! ```
//!
//! with uniformization rate `q ≥ max exit rate` and Poisson weights from
//! [`crate::foxglynn`].

use crate::ctmc::Ctmc;
use crate::foxglynn::PoissonWeights;

/// Numerical tolerance configuration.
#[derive(Debug, Clone, Copy)]
pub struct TransientConfig {
    /// Total truncation error allowed in the Poisson sum.
    pub tolerance: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig { tolerance: 1e-10 }
    }
}

/// Computes the transient distribution `π(t)` of `ctmc` at time `t`.
///
/// # Panics
/// Panics on negative `t`.
pub fn transient_distribution(ctmc: &Ctmc, t: f64, config: &TransientConfig) -> Vec<f64> {
    assert!(t >= 0.0, "time must be non-negative");
    let n = ctmc.len();
    let mut pi0 = vec![0.0; n];
    for &(s, p) in &ctmc.initial {
        pi0[s] += p;
    }
    if t == 0.0 || n == 0 {
        return pi0;
    }
    let q = ctmc.max_exit_rate().max(1e-12) * 1.02;
    let weights = PoissonWeights::new(q * t, config.tolerance);

    // DTMC P = I + Q/q in sparse row form (with self-loop completion).
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for s in 0..n {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(ctmc.rates[s].len() + 1);
        let mut out = 0.0;
        for &(tgt, r) in &ctmc.rates[s] {
            row.push((tgt, r / q));
            out += r / q;
        }
        row.push((s, 1.0 - out));
        rows.push(row);
    }

    let mut vec_k = pi0; // π(0) · P^k, iterated
    let mut acc = vec![0.0; n];
    let k_max = weights.left + weights.weights.len();
    for k in 0..k_max {
        if k >= weights.left {
            let w = weights.weights[k - weights.left];
            for (a, v) in acc.iter_mut().zip(&vec_k) {
                *a += w * v;
            }
        }
        if k + 1 < k_max {
            // vec_{k+1} = vec_k · P
            let mut next = vec![0.0; n];
            for (s, &mass) in vec_k.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for &(tgt, p) in &rows[s] {
                    next[tgt] += mass * p;
                }
            }
            vec_k = next;
        }
    }
    acc
}

/// Computes `P(◇[0,t] G)` by absorbing-goal transient analysis.
///
/// # Panics
/// Panics on negative `t`.
pub fn timed_reachability(ctmc: &Ctmc, t: f64, config: &TransientConfig) -> f64 {
    let absorbing = ctmc.goal_absorbing();
    let pi = transient_distribution(&absorbing, t, config);
    pi.iter().zip(&absorbing.goal).filter(|(_, &g)| g).map(|(p, _)| p).sum::<f64>().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransientConfig {
        TransientConfig::default()
    }

    /// Single exponential transition: P(◇[0,t] G) = 1 − e^{−λt}.
    fn single_exp(lambda: f64) -> Ctmc {
        Ctmc {
            rates: vec![vec![(1, lambda)], vec![]],
            goal: vec![false, true],
            initial: vec![(0, 1.0)],
        }
    }

    #[test]
    fn matches_exponential_cdf() {
        for (lambda, t) in [(1.0, 1.0), (0.1, 5.0), (10.0, 0.3), (2.0, 0.0)] {
            let c = single_exp(lambda);
            let p = timed_reachability(&c, t, &cfg());
            let exact = 1.0 - (-lambda * t).exp();
            assert!((p - exact).abs() < 1e-8, "λ={lambda} t={t}: {p} vs {exact}");
        }
    }

    #[test]
    fn erlang_two_stages() {
        // 0 --λ--> 1 --λ--> 2 (goal): Erlang(2, λ) CDF = 1 − e^{−λt}(1 + λt).
        let lambda = 2.0;
        let c = Ctmc {
            rates: vec![vec![(1, lambda)], vec![(2, lambda)], vec![]],
            goal: vec![false, false, true],
            initial: vec![(0, 1.0)],
        };
        for t in [0.1, 0.5, 1.0, 3.0] {
            let p = timed_reachability(&c, t, &cfg());
            let exact = 1.0 - (-lambda * t).exp() * (1.0 + lambda * t);
            assert!((p - exact).abs() < 1e-8, "t={t}: {p} vs {exact}");
        }
    }

    #[test]
    fn competing_risks_split() {
        // 0 → goal with rate a, 0 → trap with rate b:
        // P(◇[0,∞] goal) = a/(a+b); at finite t: a/(a+b)(1 − e^{−(a+b)t}).
        let (a, b) = (1.0, 3.0);
        let c = Ctmc {
            rates: vec![vec![(1, a), (2, b)], vec![], vec![]],
            goal: vec![false, true, false],
            initial: vec![(0, 1.0)],
        };
        let t = 2.0;
        let p = timed_reachability(&c, t, &cfg());
        let exact = a / (a + b) * (1.0 - (-(a + b) * t).exp());
        assert!((p - exact).abs() < 1e-8, "{p} vs {exact}");
    }

    #[test]
    fn goal_absorption_prevents_leaving() {
        // goal state has an outgoing rate back to a non-goal state; once
        // reached within [0,t] the property holds regardless.
        let c = Ctmc {
            rates: vec![vec![(1, 1.0)], vec![(0, 100.0)]],
            goal: vec![false, true],
            initial: vec![(0, 1.0)],
        };
        let p = timed_reachability(&c, 3.0, &cfg());
        let exact = 1.0 - (-3.0f64).exp();
        assert!((p - exact).abs() < 1e-8, "{p} vs {exact}");
    }

    #[test]
    fn transient_distribution_is_stochastic() {
        let c = Ctmc {
            rates: vec![vec![(1, 0.5), (2, 0.5)], vec![(2, 1.0)], vec![(0, 0.2)]],
            goal: vec![false, false, false],
            initial: vec![(0, 0.7), (1, 0.3)],
        };
        for t in [0.0, 0.5, 2.0, 10.0] {
            let pi = transient_distribution(&c, t, &cfg());
            let mass: f64 = pi.iter().sum();
            assert!((mass - 1.0).abs() < 1e-8, "t={t}: mass {mass}");
            assert!(pi.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn initial_goal_state_counts_immediately() {
        let c = Ctmc { rates: vec![vec![]], goal: vec![true], initial: vec![(0, 1.0)] };
        assert!((timed_reachability(&c, 0.0, &cfg()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_time_converges_to_absorption_probability() {
        let (a, b) = (0.3, 0.7);
        let c = Ctmc {
            rates: vec![vec![(1, a), (2, b)], vec![], vec![]],
            goal: vec![false, true, false],
            initial: vec![(0, 1.0)],
        };
        let p = timed_reachability(&c, 1000.0, &cfg());
        assert!((p - 0.3).abs() < 1e-6, "{p}");
    }
}
