//! Poisson probability weights for uniformization.
//!
//! A light-weight stand-in for the Fox–Glynn algorithm: computes the
//! Poisson(λ) probabilities `w_k = e^{−λ} λ^k / k!` iteratively in a
//! numerically stable way (log-scale seed at the mode) and returns the
//! truncation range covering at least `1 − tol` probability mass.

/// Poisson weights `w[k]` for `k ∈ [left, left + w.len())` covering at
/// least `1 − tol` of the distribution's mass.
#[derive(Debug, Clone)]
pub struct PoissonWeights {
    /// First index with non-negligible weight.
    pub left: usize,
    /// Weights for `k = left, left+1, …`.
    pub weights: Vec<f64>,
}

impl PoissonWeights {
    /// Computes the weights for mean `lambda` and mass tolerance `tol`.
    ///
    /// # Panics
    /// Panics if `lambda` is negative/NaN or `tol` not in (0, 1).
    pub fn new(lambda: f64, tol: f64) -> PoissonWeights {
        assert!(lambda >= 0.0 && lambda.is_finite(), "bad lambda {lambda}");
        assert!(tol > 0.0 && tol < 1.0, "bad tolerance {tol}");
        if lambda == 0.0 {
            return PoissonWeights { left: 0, weights: vec![1.0] };
        }

        // Start at the mode, where the term is largest, and expand.
        let mode = lambda.floor() as usize;
        let ln_mode_weight = mode_log_weight(lambda, mode);

        // Walk left and right multiplying by the term ratio
        // w_{k+1}/w_k = λ/(k+1).
        let mut right_terms = Vec::new();
        let mut w = 1.0f64; // relative to the mode weight
        let mut k = mode;
        loop {
            right_terms.push(w);
            let next = w * lambda / (k as f64 + 1.0);
            if next < 1e-18 && k > mode + 3 {
                break;
            }
            w = next;
            k += 1;
            if k > mode + 10_000_000 {
                break; // paranoia guard
            }
        }
        let mut left_terms = Vec::new();
        let mut w = 1.0f64;
        let mut k = mode;
        while k > 0 {
            let prev = w * (k as f64) / lambda;
            if prev < 1e-18 && k < mode.saturating_sub(3) {
                break;
            }
            w = prev;
            k -= 1;
            left_terms.push(w);
        }
        let left = k;

        // Assemble and normalize: Σ w_k = 1 exactly (removes the scaling
        // constant e^{−λ} λ^m / m! along the way).
        let mut weights: Vec<f64> = left_terms.iter().rev().copied().chain(right_terms).collect();
        let sum: f64 = weights.iter().sum();
        for v in &mut weights {
            *v /= sum;
        }

        // Trim negligible tails until only `tol` mass is dropped.
        let mut dropped = 0.0;
        let mut start = 0;
        while start < weights.len() && dropped + weights[start] < tol / 2.0 {
            dropped += weights[start];
            start += 1;
        }
        let mut end = weights.len();
        let mut dropped_r = 0.0;
        while end > start + 1 && dropped_r + weights[end - 1] < tol / 2.0 {
            dropped_r += weights[end - 1];
            end -= 1;
        }
        let trimmed: Vec<f64> = weights[start..end].to_vec();
        let _ = ln_mode_weight; // kept for documentation/debugging parity
        PoissonWeights { left: left + start, weights: trimmed }
    }

    /// Total retained probability mass (≥ 1 − tol).
    pub fn mass(&self) -> f64 {
        self.weights.iter().sum()
    }
}

fn mode_log_weight(lambda: f64, mode: usize) -> f64 {
    // ln(e^{−λ} λ^m / m!) via Stirling-free accumulation (m is moderate).
    let mut ln = -lambda + (mode as f64) * lambda.ln();
    for i in 1..=mode {
        ln -= (i as f64).ln();
    }
    ln
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_pmf(lambda: f64, k: usize) -> f64 {
        let mut ln = -lambda + (k as f64) * lambda.ln();
        for i in 1..=k {
            ln -= (i as f64).ln();
        }
        ln.exp()
    }

    #[test]
    fn matches_direct_pmf_small_lambda() {
        let w = PoissonWeights::new(3.0, 1e-10);
        for (i, &v) in w.weights.iter().enumerate() {
            let k = w.left + i;
            let exact = poisson_pmf(3.0, k);
            assert!((v - exact).abs() < 1e-9, "k={k}: {v} vs {exact}");
        }
        assert!(w.mass() > 1.0 - 1e-9);
    }

    #[test]
    fn large_lambda_stable() {
        let w = PoissonWeights::new(5000.0, 1e-9);
        assert!(w.mass() > 1.0 - 1e-8);
        // Range centered near the mode with width ~ O(√λ).
        assert!(w.left < 5000 && 5000 < w.left + w.weights.len());
        assert!((w.weights.len() as f64) < 40.0 * 5000.0f64.sqrt());
        // Mode weight ≈ 1/√(2πλ).
        let peak = w.weights.iter().cloned().fold(0.0, f64::max);
        let expect = 1.0 / (2.0 * std::f64::consts::PI * 5000.0).sqrt();
        assert!((peak - expect).abs() / expect < 0.01, "{peak} vs {expect}");
    }

    #[test]
    fn zero_lambda_is_point_mass() {
        let w = PoissonWeights::new(0.0, 1e-9);
        assert_eq!(w.left, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "bad lambda")]
    fn negative_lambda_panics() {
        PoissonWeights::new(-1.0, 1e-9);
    }
}
