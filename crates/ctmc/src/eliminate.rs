//! Vanishing-state elimination: IMC → CTMC.
//!
//! Under *maximal progress*, immediate (interactive) transitions preempt
//! Markovian ones, so states with interactive successors ("vanishing"
//! states) are left instantaneously. Non-determinism among the immediate
//! successors is resolved **uniformly** — the equiprobability rule the
//! simulator also applies; this closes the IMC into a CTMC (the role of
//! the weak-bisimulation step in the COMPASS chain, which likewise must
//! rid the model of interactive transitions before MRMC can run).

use crate::ctmc::Ctmc;
use crate::error::CtmcError;
use crate::imc::Imc;
use std::collections::HashMap;

/// Eliminates vanishing states, producing a CTMC over the tangible states.
///
/// Goal-labeled vanishing states are preserved by *absorption semantics*:
/// if a vanishing state on the way is a goal state, probability flowing
/// through it is redirected to a fresh absorbing goal state — passing
/// through a goal instantaneously still means the goal was reached.
///
/// # Errors
/// [`CtmcError::VanishingCycle`] on immediate-transition cycles and
/// [`CtmcError::Empty`] on empty input.
pub fn eliminate(imc: &Imc) -> Result<Ctmc, CtmcError> {
    if imc.is_empty() {
        return Err(CtmcError::Empty);
    }
    let n = imc.len();

    // Map tangible states to compact CTMC indices.
    let mut tangible_index: HashMap<usize, usize> = HashMap::new();
    for (i, s) in imc.states.iter().enumerate() {
        if !s.is_vanishing() {
            let idx = tangible_index.len();
            tangible_index.insert(i, idx);
        }
    }
    // A synthetic absorbing goal state collects probability that reaches
    // the goal *inside* a vanishing chain.
    let goal_sink = tangible_index.len();
    let mut uses_goal_sink = false;

    // Memoized resolution: distribution over CTMC indices reached from an
    // IMC state by following immediate transitions to quiescence.
    let mut memo: Vec<Option<Vec<(usize, f64)>>> = vec![None; n];
    let mut on_stack = vec![false; n];

    fn resolve(
        i: usize,
        imc: &Imc,
        tangible_index: &HashMap<usize, usize>,
        goal_sink: usize,
        uses_goal_sink: &mut bool,
        memo: &mut Vec<Option<Vec<(usize, f64)>>>,
        on_stack: &mut Vec<bool>,
    ) -> Result<Vec<(usize, f64)>, CtmcError> {
        if let Some(d) = &memo[i] {
            return Ok(d.clone());
        }
        if on_stack[i] {
            return Err(CtmcError::VanishingCycle { state_index: i });
        }
        let s = &imc.states[i];
        let dist = if !s.is_vanishing() {
            vec![(tangible_index[&i], 1.0)]
        } else if s.goal {
            // Goal reached instantaneously on the way through.
            *uses_goal_sink = true;
            vec![(goal_sink, 1.0)]
        } else {
            on_stack[i] = true;
            let k = s.interactive.len() as f64;
            let mut acc: HashMap<usize, f64> = HashMap::new();
            for &succ in &s.interactive {
                let sub =
                    resolve(succ, imc, tangible_index, goal_sink, uses_goal_sink, memo, on_stack)?;
                for (t, p) in sub {
                    *acc.entry(t).or_insert(0.0) += p / k;
                }
            }
            on_stack[i] = false;
            let mut v: Vec<(usize, f64)> = acc.into_iter().collect();
            v.sort_by_key(|&(t, _)| t);
            v
        };
        memo[i] = Some(dist.clone());
        Ok(dist)
    }

    // Build rows for tangible states.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); tangible_index.len()];
    let mut goal: Vec<bool> = vec![false; tangible_index.len()];
    for (&imc_i, &ctmc_i) in &tangible_index {
        goal[ctmc_i] = imc.states[imc_i].goal;
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for &(target, rate) in &imc.states[imc_i].markovian {
            let dist = resolve(
                target,
                imc,
                &tangible_index,
                goal_sink,
                &mut uses_goal_sink,
                &mut memo,
                &mut on_stack,
            )?;
            for (t, p) in dist {
                *acc.entry(t).or_insert(0.0) += rate * p;
            }
        }
        let mut row: Vec<(usize, f64)> = acc.into_iter().filter(|&(_, r)| r > 0.0).collect();
        row.sort_by_key(|&(t, _)| t);
        rows[ctmc_i] = row;
    }

    // Initial distribution: resolve state 0.
    let initial =
        resolve(0, imc, &tangible_index, goal_sink, &mut uses_goal_sink, &mut memo, &mut on_stack)?;

    if uses_goal_sink {
        rows.push(Vec::new());
        goal.push(true);
    } else {
        // No row references the sink; nothing to add.
    }

    let ctmc = Ctmc { rates: rows, goal, initial };
    debug_assert!(ctmc.check_valid().is_ok(), "{:?}", ctmc.check_valid());
    Ok(ctmc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imc::ImcState;

    fn tangible(markovian: Vec<(usize, f64)>, goal: bool) -> ImcState {
        ImcState { interactive: vec![], markovian, goal }
    }

    fn vanishing(interactive: Vec<usize>, goal: bool) -> ImcState {
        ImcState { interactive, markovian: vec![], goal }
    }

    #[test]
    fn pure_markovian_chain_passes_through() {
        let imc = Imc { states: vec![tangible(vec![(1, 2.0)], false), tangible(vec![], true)] };
        let c = eliminate(&imc).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.rates[0], vec![(1, 2.0)]);
        assert_eq!(c.initial, vec![(0, 1.0)]);
        assert_eq!(c.goal, vec![false, true]);
    }

    #[test]
    fn vanishing_state_splits_uniformly() {
        // 0 --2.0--> 1 (vanishing) --> {2, 3} uniformly.
        let imc = Imc {
            states: vec![
                tangible(vec![(1, 2.0)], false),
                vanishing(vec![2, 3], false),
                tangible(vec![], false),
                tangible(vec![], true),
            ],
        };
        let c = eliminate(&imc).unwrap();
        // Tangible states: 0, 2, 3 → indices 0.. in insertion order by map;
        // find rates from the initial state.
        let row0: f64 = c.rates[find_initial(&c)].iter().map(|(_, r)| r).sum();
        assert!((row0 - 2.0).abs() < 1e-12);
        let rates: Vec<f64> = c.rates[find_initial(&c)].iter().map(|&(_, r)| r).collect();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 1.0).abs() < 1e-12 && (rates[1] - 1.0).abs() < 1e-12);
    }

    fn find_initial(c: &Ctmc) -> usize {
        assert_eq!(c.initial.len(), 1);
        c.initial[0].0
    }

    #[test]
    fn chained_vanishing_states_compose() {
        // 0 --1.0--> 1 (vanishing) --> 2 (vanishing) --> 3 tangible.
        let imc = Imc {
            states: vec![
                tangible(vec![(1, 1.0)], false),
                vanishing(vec![2], false),
                vanishing(vec![3], false),
                tangible(vec![], true),
            ],
        };
        let c = eliminate(&imc).unwrap();
        let init = find_initial(&c);
        assert_eq!(c.rates[init].len(), 1);
        let (t, r) = c.rates[init][0];
        assert!((r - 1.0).abs() < 1e-12);
        assert!(c.goal[t]);
    }

    #[test]
    fn vanishing_initial_state_gives_distribution() {
        let imc = Imc {
            states: vec![
                vanishing(vec![1, 2], false),
                tangible(vec![], false),
                tangible(vec![], true),
            ],
        };
        let c = eliminate(&imc).unwrap();
        assert_eq!(c.initial.len(), 2);
        let mass: f64 = c.initial.iter().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        assert!((c.initial[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn goal_inside_vanishing_chain_is_preserved() {
        // 0 --1.0--> 1 (vanishing, GOAL) --> 2 tangible (not goal).
        let imc = Imc {
            states: vec![
                tangible(vec![(1, 1.0)], false),
                ImcState { interactive: vec![2], markovian: vec![], goal: true },
                tangible(vec![], false),
            ],
        };
        let c = eliminate(&imc).unwrap();
        // Probability must flow to an absorbing goal sink, not to state 2.
        let init = find_initial(&c);
        let (t, _) = c.rates[init][0];
        assert!(c.goal[t], "goal hit mid-chain must be preserved");
        assert!(c.rates[t].is_empty(), "sink is absorbing");
    }

    #[test]
    fn vanishing_cycle_detected() {
        let imc = Imc {
            states: vec![
                tangible(vec![(1, 1.0)], false),
                vanishing(vec![2], false),
                vanishing(vec![1], false),
            ],
        };
        assert!(matches!(eliminate(&imc), Err(CtmcError::VanishingCycle { .. })));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(eliminate(&Imc { states: vec![] }), Err(CtmcError::Empty)));
    }
}
