//! Continuous-time Markov chains.

/// A CTMC in sparse form with a goal labeling and an initial distribution
/// (the initial state of the model may be vanishing, dissolving into a
/// distribution over tangible states).
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    /// Per-state sparse rate rows: `rates[s] = [(target, λ), …]`.
    pub rates: Vec<Vec<(usize, f64)>>,
    /// Goal labeling.
    pub goal: Vec<bool>,
    /// Initial probability distribution `[(state, p), …]`, summing to 1.
    pub initial: Vec<(usize, f64)>,
}

impl Ctmc {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Number of (non-zero) transitions.
    pub fn transition_count(&self) -> usize {
        self.rates.iter().map(Vec::len).sum()
    }

    /// Total exit rate of state `s`.
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.rates[s].iter().map(|(_, r)| r).sum()
    }

    /// The maximal exit rate (uniformization constant basis).
    pub fn max_exit_rate(&self) -> f64 {
        (0..self.len()).map(|s| self.exit_rate(s)).fold(0.0, f64::max)
    }

    /// A copy with all goal states made absorbing — the standard reduction
    /// of time-bounded reachability to transient analysis.
    pub fn goal_absorbing(&self) -> Ctmc {
        let mut c = self.clone();
        for (s, is_goal) in c.goal.iter().enumerate() {
            if *is_goal {
                c.rates[s].clear();
            }
        }
        c
    }

    /// Validates structural sanity (used by tests and debug assertions):
    /// targets in range, rates positive, initial distribution normalized.
    pub fn check_valid(&self) -> Result<(), String> {
        let n = self.len();
        if self.goal.len() != n {
            return Err(format!("goal labeling has {} entries for {n} states", self.goal.len()));
        }
        for (s, row) in self.rates.iter().enumerate() {
            for &(t, r) in row {
                if t >= n {
                    return Err(format!("transition {s}→{t} out of range"));
                }
                if !r.is_finite() || r <= 0.0 {
                    return Err(format!("non-positive rate {r} on {s}→{t}"));
                }
            }
        }
        let mass: f64 = self.initial.iter().map(|(_, p)| p).sum();
        if (mass - 1.0).abs() > 1e-9 {
            return Err(format!("initial distribution sums to {mass}"));
        }
        for &(s, p) in &self.initial {
            if s >= n || p < 0.0 {
                return Err(format!("bad initial entry ({s}, {p})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        Ctmc {
            rates: vec![vec![(1, 2.0)], vec![(0, 1.0), (2, 3.0)], vec![]],
            goal: vec![false, false, true],
            initial: vec![(0, 1.0)],
        }
    }

    #[test]
    fn accessors() {
        let c = chain();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.transition_count(), 3);
        assert_eq!(c.exit_rate(1), 4.0);
        assert_eq!(c.max_exit_rate(), 4.0);
        assert!(c.check_valid().is_ok());
    }

    #[test]
    fn goal_absorbing_clears_goal_rows() {
        let mut c = chain();
        c.rates[2] = vec![(0, 5.0)];
        let g = c.goal_absorbing();
        assert!(g.rates[2].is_empty());
        assert_eq!(g.rates[0], c.rates[0]);
    }

    #[test]
    fn validity_catches_errors() {
        let mut c = chain();
        c.rates[0][0].0 = 9;
        assert!(c.check_valid().is_err());
        let mut c = chain();
        c.rates[0][0].1 = -1.0;
        assert!(c.check_valid().is_err());
        let mut c = chain();
        c.initial = vec![(0, 0.5)];
        assert!(c.check_valid().is_err());
        let mut c = chain();
        c.goal.pop();
        assert!(c.check_valid().is_err());
    }
}
