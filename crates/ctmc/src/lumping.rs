//! Ordinary-lumpability bisimulation minimization of CTMCs.
//!
//! This substitutes the sigref weak-bisimulation reduction of the COMPASS
//! pipeline (§IV): the quotient chain is (usually much) smaller and
//! preserves time-bounded reachability of the goal label exactly.
//!
//! Algorithm: classical partition refinement — start from the partition
//! induced by the goal label, repeatedly split blocks whose states have
//! different cumulative rates into some block, until stable.

use crate::ctmc::Ctmc;
use std::collections::HashMap;

/// Result of lumping: the quotient chain plus the state-to-block map.
#[derive(Debug, Clone)]
pub struct Lumped {
    /// The quotient CTMC.
    pub quotient: Ctmc,
    /// `block_of[s]` is the quotient state of original state `s`.
    pub block_of: Vec<usize>,
}

/// Computes the coarsest ordinary lumping of `ctmc` that respects the goal
/// labeling.
pub fn lump(ctmc: &Ctmc) -> Lumped {
    let n = ctmc.len();
    if n == 0 {
        return Lumped { quotient: ctmc.clone(), block_of: vec![] };
    }

    // Initial partition by goal label.
    let mut block_of: Vec<usize> = ctmc.goal.iter().map(|&g| usize::from(g)).collect();
    let mut block_count = if ctmc.goal.iter().any(|&g| g) && ctmc.goal.iter().any(|&g| !g) {
        2
    } else {
        // Single block: relabel everyone to block 0.
        block_of.fill(0);
        1
    };

    loop {
        // Signature of a state: sorted vector of (target block, total rate).
        let mut signatures: Vec<Vec<(usize, u64)>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut acc: HashMap<usize, f64> = HashMap::new();
            for &(t, r) in &ctmc.rates[s] {
                *acc.entry(block_of[t]).or_insert(0.0) += r;
            }
            let mut sig: Vec<(usize, u64)> =
                acc.into_iter().map(|(b, r)| (b, quantize(r))).collect();
            sig.sort_unstable();
            signatures.push(sig);
        }

        // Re-number blocks by (old block, signature).
        type BlockKey<'a> = (usize, &'a [(usize, u64)]);
        let mut renum: HashMap<BlockKey<'_>, usize> = HashMap::new();
        let mut next: Vec<usize> = Vec::with_capacity(n);
        for s in 0..n {
            let key = (block_of[s], signatures[s].as_slice());
            let id = match renum.get(&key) {
                Some(&id) => id,
                None => {
                    let id = renum.len();
                    renum.insert(key, id);
                    id
                }
            };
            next.push(id);
        }
        let new_count = renum.len();
        if new_count == block_count {
            break;
        }
        block_count = new_count;
        block_of = next;
    }

    // Build the quotient: pick one representative per block (ordinary
    // lumpability guarantees all members agree on block-cumulative rates).
    let mut representative: Vec<Option<usize>> = vec![None; block_count];
    for s in 0..n {
        if representative[block_of[s]].is_none() {
            representative[block_of[s]] = Some(s);
        }
    }
    let mut rates: Vec<Vec<(usize, f64)>> = Vec::with_capacity(block_count);
    let mut goal: Vec<bool> = Vec::with_capacity(block_count);
    for &rep in &representative {
        let rep = rep.expect("every block has a member");
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for &(t, r) in &ctmc.rates[rep] {
            *acc.entry(block_of[t]).or_insert(0.0) += r;
        }
        let mut row: Vec<(usize, f64)> = acc.into_iter().collect();
        row.sort_by_key(|&(t, _)| t);
        rates.push(row);
        goal.push(ctmc.goal[rep]);
    }
    let mut init_acc: HashMap<usize, f64> = HashMap::new();
    for &(s, p) in &ctmc.initial {
        *init_acc.entry(block_of[s]).or_insert(0.0) += p;
    }
    let mut initial: Vec<(usize, f64)> = init_acc.into_iter().collect();
    initial.sort_by_key(|&(s, _)| s);

    let quotient = Ctmc { rates, goal, initial };
    debug_assert!(quotient.check_valid().is_ok(), "{:?}", quotient.check_valid());
    Lumped { quotient, block_of }
}

/// Quantizes a rate for signature comparison (lumping is exact up to
/// floating-point noise; 1e-12 relative granularity).
fn quantize(r: f64) -> u64 {
    (r * 1e12).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two interchangeable redundant units: states (up,up), (up,down),
    /// (down,up), (down,down); the two mixed states are lumpable.
    fn redundant_pair(lambda: f64, mu: f64) -> Ctmc {
        // 0 = uu, 1 = ud, 2 = du, 3 = dd
        Ctmc {
            rates: vec![
                vec![(1, lambda), (2, lambda)],
                vec![(0, mu), (3, lambda)],
                vec![(0, mu), (3, lambda)],
                vec![],
            ],
            goal: vec![false, false, false, true],
            initial: vec![(0, 1.0)],
        }
    }

    #[test]
    fn symmetric_states_lump() {
        let l = lump(&redundant_pair(0.1, 1.0));
        assert_eq!(l.quotient.len(), 3, "uu | {{ud, du}} | dd");
        assert_eq!(l.block_of[1], l.block_of[2]);
        assert_ne!(l.block_of[0], l.block_of[1]);
        assert_ne!(l.block_of[0], l.block_of[3]);
        // Rates from uu to the merged block sum: 2λ.
        let uu = l.block_of[0];
        let merged = l.block_of[1];
        let rate: f64 =
            l.quotient.rates[uu].iter().filter(|&&(t, _)| t == merged).map(|&(_, r)| r).sum();
        assert!((rate - 0.2).abs() < 1e-9);
    }

    #[test]
    fn goal_labels_never_merge() {
        let c =
            Ctmc { rates: vec![vec![], vec![]], goal: vec![false, true], initial: vec![(0, 1.0)] };
        let l = lump(&c);
        assert_eq!(l.quotient.len(), 2);
    }

    #[test]
    fn identical_absorbing_states_merge() {
        let c = Ctmc {
            rates: vec![vec![(1, 1.0), (2, 1.0)], vec![], vec![]],
            goal: vec![false, false, false],
            initial: vec![(0, 1.0)],
        };
        let l = lump(&c);
        assert_eq!(l.quotient.len(), 2);
        assert_eq!(l.block_of[1], l.block_of[2]);
    }

    #[test]
    fn asymmetric_rates_do_not_merge() {
        let c = Ctmc {
            rates: vec![vec![(1, 1.0), (2, 1.0)], vec![(3, 1.0)], vec![(3, 2.0)], vec![]],
            goal: vec![false, false, false, true],
            initial: vec![(0, 1.0)],
        };
        let l = lump(&c);
        assert_ne!(l.block_of[1], l.block_of[2], "different rates to goal");
        assert_eq!(l.quotient.len(), 4);
    }

    #[test]
    fn initial_distribution_projected() {
        let c = Ctmc {
            rates: vec![vec![], vec![]],
            goal: vec![false, false],
            initial: vec![(0, 0.5), (1, 0.5)],
        };
        let l = lump(&c);
        assert_eq!(l.quotient.len(), 1);
        assert_eq!(l.quotient.initial, vec![(0, 1.0)]);
    }

    #[test]
    fn empty_chain() {
        let c = Ctmc { rates: vec![], goal: vec![], initial: vec![] };
        let l = lump(&c);
        assert_eq!(l.quotient.len(), 0);
    }
}
