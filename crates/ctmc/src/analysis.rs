//! End-to-end CTMC pipeline: explore → eliminate → lump → transient.
//!
//! This is the Rust stand-in for the COMPASS analysis chain of §IV
//! (NuSMV reachability → sigref bisimulation reduction → MRMC model
//! checking), producing the CTMC columns of Table I.

use crate::ctmc::Ctmc;
use crate::eliminate::eliminate;
use crate::error::CtmcError;
use crate::explore::{explore, ExploreConfig};
use crate::lumping::lump;
use crate::transient::{timed_reachability, TransientConfig};
use slim_automata::prelude::{NetState, Network};
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// Exploration limits.
    pub explore: ExploreConfig,
    /// Numerical tolerances.
    pub transient: TransientConfig,
    /// Skip the lumping step (ablation knob).
    pub skip_lumping: bool,
}

/// Everything the pipeline measured, for Table I reporting.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// `P(◇[0,t] goal)`.
    pub probability: f64,
    /// Reachable states explored.
    pub states: usize,
    /// Transitions in the explored IMC.
    pub transitions: usize,
    /// Tangible CTMC states after vanishing elimination.
    pub tangible_states: usize,
    /// Quotient states after lumping.
    pub lumped_states: usize,
    /// Approximate memory used by the stored state space, in bytes.
    pub approx_memory_bytes: usize,
    /// Wall-clock time of the whole pipeline.
    pub wall: Duration,
    /// Wall-clock time per phase `(explore, eliminate, lump, transient)`.
    pub phase_wall: (Duration, Duration, Duration, Duration),
}

/// Runs the full pipeline for `P(◇[0,t] goal)` on an untimed network.
///
/// # Errors
/// See [`explore`] and [`eliminate`].
pub fn check_timed_reachability(
    net: &Network,
    goal: &dyn Fn(&NetState) -> Result<bool, slim_automata::error::EvalError>,
    t: f64,
    config: &PipelineConfig,
) -> Result<PipelineResult, CtmcError> {
    let t0 = Instant::now();
    let explored = explore(net, goal, &config.explore)?;
    let t1 = Instant::now();
    let ctmc = eliminate(&explored.imc)?;
    let t2 = Instant::now();
    let tangible_states = ctmc.len();
    let (final_chain, lumped_states): (Ctmc, usize) = if config.skip_lumping {
        let n = ctmc.len();
        (ctmc, n)
    } else {
        let lumped = lump(&ctmc);
        let n = lumped.quotient.len();
        (lumped.quotient, n)
    };
    let t3 = Instant::now();
    let probability = timed_reachability(&final_chain, t, &config.transient);
    let t4 = Instant::now();

    Ok(PipelineResult {
        probability,
        states: explored.states,
        transitions: explored.imc.transition_count(),
        tangible_states,
        lumped_states,
        approx_memory_bytes: explored.approx_memory_bytes,
        wall: t4 - t0,
        phase_wall: (t1 - t0, t2 - t1, t3 - t2, t4 - t3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::prelude::*;

    /// ok --λ--> failed.
    fn exp_net(lambda: f64) -> Network {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("m");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, lambda, [], failed);
        b.add_automaton(a);
        b.build().unwrap()
    }

    #[test]
    fn pipeline_matches_exponential() {
        let net = exp_net(0.5);
        let goal = |s: &NetState| Ok(s.locs[0] == LocId(1));
        let r = check_timed_reachability(&net, &goal, 2.0, &PipelineConfig::default()).unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        assert!((r.probability - exact).abs() < 1e-8, "{} vs {exact}", r.probability);
        assert_eq!(r.states, 2);
        assert!(r.approx_memory_bytes > 0);
        assert!(r.wall >= r.phase_wall.0);
    }

    #[test]
    fn lumping_reduces_redundant_pairs() {
        // Two identical independent units; goal = both failed.
        let mut b = NetworkBuilder::new();
        for name in ["u1", "u2"] {
            let mut a = AutomatonBuilder::new(name);
            let ok = a.location("ok");
            let failed = a.location("failed");
            a.markovian(ok, 0.1, [], failed);
            b.add_automaton(a);
        }
        let net = b.build().unwrap();
        let goal = |s: &NetState| Ok(s.locs[0] == LocId(1) && s.locs[1] == LocId(1));
        let with = check_timed_reachability(&net, &goal, 5.0, &PipelineConfig::default()).unwrap();
        let without = check_timed_reachability(
            &net,
            &goal,
            5.0,
            &PipelineConfig { skip_lumping: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(with.states, 4);
        assert_eq!(without.lumped_states, 4);
        assert_eq!(with.lumped_states, 3, "symmetric mixed states lump");
        // Same numeric answer either way.
        assert!((with.probability - without.probability).abs() < 1e-9);
        let exact = (1.0 - (-0.5f64).exp()).powi(2);
        assert!((with.probability - exact).abs() < 1e-8);
    }

    #[test]
    fn vanishing_states_handled_in_pipeline() {
        // A Markovian fault immediately propagated through a τ step.
        let mut b = NetworkBuilder::new();
        let failed_flag = b.var("failed", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("m");
        let ok = a.location("ok");
        let tripped = a.location("tripped");
        let down = a.location("down");
        a.markovian(ok, 1.0, [], tripped);
        a.guarded(
            tripped,
            ActionId::TAU,
            Expr::TRUE,
            [Effect::assign(failed_flag, Expr::bool(true))],
            down,
        );
        b.add_automaton(a);
        let net = b.build().unwrap();
        let fv = net.var_id("failed").unwrap();
        let goal = move |s: &NetState| s.nu.get(fv).map(|v| v.as_bool().unwrap_or(false));
        let r = check_timed_reachability(&net, &goal, 1.0, &PipelineConfig::default()).unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        assert!((r.probability - exact).abs() < 1e-8, "{} vs {exact}", r.probability);
    }
}
