//! Explicit reachable-state-space exploration of untimed models.
//!
//! This substitutes the NuSMV BDD reachability step of the COMPASS
//! pipeline (§IV): the same artifact — the reachable state graph — is
//! produced, and its cost scales with the number of reachable states,
//! which is what makes the CTMC column of Table I blow up with model size.

use crate::error::CtmcError;
use crate::imc::{Imc, ImcState};
use slim_automata::prelude::{NetState, Network};
use slim_automata::state::DiscreteKey;
use std::collections::HashMap;

/// Exploration configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Hard cap on explored states (the "out of memory / time" guard that
    /// makes large Table I instances infeasible for the CTMC pipeline).
    pub state_limit: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { state_limit: 5_000_000 }
    }
}

/// The exploration product: the IMC plus bookkeeping for reporting.
#[derive(Debug, Clone)]
pub struct Explored {
    /// The interactive Markov chain over reachable discrete states.
    pub imc: Imc,
    /// Number of stored states (= `imc.len()`).
    pub states: usize,
    /// Rough memory footprint of the stored state space in bytes.
    pub approx_memory_bytes: usize,
}

/// Explores the reachable discrete state space of an *untimed* network.
///
/// `goal` labels each state; it is evaluated once per stored state.
///
/// # Errors
/// * [`CtmcError::TimedModel`] if the network declares clocks or
///   continuous variables;
/// * [`CtmcError::StateLimitExceeded`] past `config.state_limit`;
/// * evaluation errors from guards/effects.
pub fn explore(
    net: &Network,
    goal: &dyn Fn(&NetState) -> Result<bool, slim_automata::error::EvalError>,
    config: &ExploreConfig,
) -> Result<Explored, CtmcError> {
    for decl in net.vars() {
        if decl.ty.is_timed() {
            return Err(CtmcError::TimedModel { variable: decl.name.clone() });
        }
    }

    let initial = net.initial_state()?;
    let key0 = initial.discrete_key().expect("untimed model has discrete key");

    let mut index: HashMap<DiscreteKey, usize> = HashMap::new();
    let mut states: Vec<ImcState> = Vec::new();
    let mut frontier: Vec<NetState> = Vec::new();
    let mut key_bytes = 0usize;

    index.insert(key0.clone(), 0);
    key_bytes += key_size(&key0);
    states.push(ImcState { interactive: vec![], markovian: vec![], goal: goal(&initial)? });
    frontier.push(initial);

    let mut cursor = 0usize;
    while cursor < frontier.len() {
        let state = frontier[cursor].clone();
        let here = cursor;
        cursor += 1;

        // Immediate (interactive) transitions: guarded transitions enabled
        // *now*. In an untimed model guards are delay-free, so the window
        // is either everything or nothing.
        let mut interactive = Vec::new();
        for cand in net.guarded_candidates(&state)? {
            if !cand.window.contains(0.0) {
                continue;
            }
            let next = net.apply(&state, &cand.transition)?;
            let idx = intern(
                net,
                goal,
                config,
                &mut index,
                &mut states,
                &mut frontier,
                &mut key_bytes,
                next,
            )?;
            interactive.push(idx);
        }

        let mut markovian = Vec::new();
        for cand in net.markovian_candidates(&state) {
            let next = net.apply(&state, &cand.transition)?;
            let idx = intern(
                net,
                goal,
                config,
                &mut index,
                &mut states,
                &mut frontier,
                &mut key_bytes,
                next,
            )?;
            markovian.push((idx, cand.rate));
        }

        states[here].interactive = interactive;
        states[here].markovian = markovian;
    }

    let n = states.len();
    let transitions: usize = states.iter().map(|s| s.interactive.len() + s.markovian.len()).sum();
    let approx = key_bytes
        + n * std::mem::size_of::<ImcState>()
        + transitions * std::mem::size_of::<(usize, f64)>();
    Ok(Explored { imc: Imc { states }, states: n, approx_memory_bytes: approx })
}

#[allow(clippy::too_many_arguments)]
fn intern(
    _net: &Network,
    goal: &dyn Fn(&NetState) -> Result<bool, slim_automata::error::EvalError>,
    config: &ExploreConfig,
    index: &mut HashMap<DiscreteKey, usize>,
    states: &mut Vec<ImcState>,
    frontier: &mut Vec<NetState>,
    key_bytes: &mut usize,
    state: NetState,
) -> Result<usize, CtmcError> {
    let key = state.discrete_key().expect("untimed model has discrete key");
    if let Some(&i) = index.get(&key) {
        return Ok(i);
    }
    if states.len() >= config.state_limit {
        return Err(CtmcError::StateLimitExceeded { limit: config.state_limit });
    }
    let i = states.len();
    *key_bytes += key_size(&key);
    index.insert(key, i);
    states.push(ImcState { interactive: vec![], markovian: vec![], goal: goal(&state)? });
    frontier.push(state);
    Ok(i)
}

fn key_size(key: &DiscreteKey) -> usize {
    std::mem::size_of::<DiscreteKey>()
        + key.locs.len() * std::mem::size_of::<slim_automata::automaton::LocId>()
        + key.vals.len() * std::mem::size_of::<slim_automata::state::DiscreteVal>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::prelude::*;

    fn goal_false() -> impl Fn(&NetState) -> Result<bool, slim_automata::error::EvalError> {
        |_s: &NetState| Ok(false)
    }

    /// Two-state failure model with repair: ok ⇄ failed.
    fn two_state() -> Network {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("m");
        let ok = a.location("ok");
        let failed = a.location("failed");
        a.markovian(ok, 0.1, [], failed);
        a.markovian(failed, 1.0, [], ok);
        b.add_automaton(a);
        b.build().unwrap()
    }

    #[test]
    fn explores_two_states() {
        let net = two_state();
        let e = explore(&net, &goal_false(), &ExploreConfig::default()).unwrap();
        assert_eq!(e.states, 2);
        assert_eq!(e.imc.transition_count(), 2);
        assert!(e.approx_memory_bytes > 0);
    }

    #[test]
    fn rejects_timed_models() {
        let mut b = NetworkBuilder::new();
        b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location("l");
        b.add_automaton(a);
        let net = b.build().unwrap();
        assert!(matches!(
            explore(&net, &goal_false(), &ExploreConfig::default()),
            Err(CtmcError::TimedModel { .. })
        ));
    }

    #[test]
    fn state_limit_enforced() {
        // Counter 0..=100 via guarded increments: 101 states.
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 100 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l = a.location("l");
        a.guarded(
            l,
            ActionId::TAU,
            Expr::var(n).lt(Expr::int(100)),
            [Effect::assign(n, Expr::var(n).add(Expr::int(1)))],
            l,
        );
        b.add_automaton(a);
        let net = b.build().unwrap();
        let ok = explore(&net, &goal_false(), &ExploreConfig { state_limit: 200 }).unwrap();
        assert_eq!(ok.states, 101);
        assert!(matches!(
            explore(&net, &goal_false(), &ExploreConfig { state_limit: 50 }),
            Err(CtmcError::StateLimitExceeded { limit: 50 })
        ));
    }

    #[test]
    fn goal_labels_applied() {
        let net = two_state();
        let goal = |s: &NetState| Ok(s.locs[0] == LocId(1));
        let e = explore(&net, &goal, &ExploreConfig::default()).unwrap();
        assert!(!e.imc.states[0].goal);
        assert!(e.imc.states[1].goal);
    }

    #[test]
    fn synchronization_explored() {
        // Two automata synchronizing: product has 2 reachable states, not 4.
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        for name in ["a", "b"] {
            let mut ab = AutomatonBuilder::new(name);
            let l0 = ab.location("l0");
            let l1 = ab.location("l1");
            ab.guarded(l0, go, Expr::TRUE, [], l1);
            b.add_automaton(ab);
        }
        let net = b.build().unwrap();
        let e = explore(&net, &goal_false(), &ExploreConfig::default()).unwrap();
        assert_eq!(e.states, 2);
        assert!(e.imc.states[0].is_vanishing());
        assert!(e.imc.states[1].is_absorbing());
    }
}
