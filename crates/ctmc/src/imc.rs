//! Interactive Markov chains — the intermediate representation between
//! state-space exploration and the CTMC (the role NuSMV's reachable state
//! graph plays in the COMPASS pipeline, §IV).

/// One explored state of an [`Imc`].
#[derive(Debug, Clone, PartialEq)]
pub struct ImcState {
    /// Immediate (interactive) successors: indices of target states.
    /// Non-empty ⇒ the state is *vanishing* under maximal progress.
    pub interactive: Vec<usize>,
    /// Markovian successors `(target, rate)`.
    pub markovian: Vec<(usize, f64)>,
    /// Whether the goal predicate holds in this state.
    pub goal: bool,
}

impl ImcState {
    /// True if immediate transitions leave this state (maximal progress
    /// makes Markovian transitions from it unreachable).
    pub fn is_vanishing(&self) -> bool {
        !self.interactive.is_empty()
    }

    /// True if no transition leaves this state.
    pub fn is_absorbing(&self) -> bool {
        self.interactive.is_empty() && self.markovian.is_empty()
    }
}

/// An interactive Markov chain over explored discrete states.
#[derive(Debug, Clone, PartialEq)]
pub struct Imc {
    /// States; index 0 is the initial state.
    pub states: Vec<ImcState>,
}

impl Imc {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if there are no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of transitions (interactive + Markovian).
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.interactive.len() + s.markovian.len()).sum()
    }

    /// Number of vanishing states.
    pub fn vanishing_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_vanishing()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let v = ImcState { interactive: vec![1], markovian: vec![(2, 1.0)], goal: false };
        assert!(v.is_vanishing() && !v.is_absorbing());
        let t = ImcState { interactive: vec![], markovian: vec![(2, 1.0)], goal: false };
        assert!(!t.is_vanishing() && !t.is_absorbing());
        let a = ImcState { interactive: vec![], markovian: vec![], goal: true };
        assert!(a.is_absorbing());
    }

    #[test]
    fn counts() {
        let imc = Imc {
            states: vec![
                ImcState { interactive: vec![1, 2], markovian: vec![], goal: false },
                ImcState { interactive: vec![], markovian: vec![(2, 0.5)], goal: false },
                ImcState { interactive: vec![], markovian: vec![], goal: true },
            ],
        };
        assert_eq!(imc.len(), 3);
        assert_eq!(imc.transition_count(), 3);
        assert_eq!(imc.vanishing_count(), 1);
        assert!(!imc.is_empty());
    }
}
