//! Errors of the CTMC pipeline.

use slim_automata::error::EvalError;
use std::fmt;

/// Errors raised while exploring, reducing or analyzing a model as a CTMC.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CtmcError {
    /// The model contains clocks or continuous variables; the CTMC
    /// pipeline handles *untimed* models only (§IV of the paper: "this
    /// part of the tool-chain is limited to discrete models").
    TimedModel { variable: String },
    /// Evaluation failure during exploration.
    Eval(EvalError),
    /// The reachable state space exceeded the configured limit.
    StateLimitExceeded { limit: usize },
    /// A cycle of immediate (interactive) transitions was found; the
    /// vanishing-state elimination cannot terminate (a Zeno artifact).
    VanishingCycle { state_index: usize },
    /// The model has no states (empty network).
    Empty,
    /// A guard referenced time-dependent quantities in an untimed model
    /// (should be prevented by the timed-model check).
    NotDelayFree { context: String },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::TimedModel { variable } => {
                write!(
                    f,
                    "model is timed (variable `{variable}`); CTMC analysis requires untimed models"
                )
            }
            CtmcError::Eval(e) => write!(f, "evaluation error during exploration: {e}"),
            CtmcError::StateLimitExceeded { limit } => {
                write!(f, "reachable state space exceeds the limit of {limit} states")
            }
            CtmcError::VanishingCycle { state_index } => {
                write!(f, "cycle of immediate transitions through state {state_index}")
            }
            CtmcError::Empty => write!(f, "empty model"),
            CtmcError::NotDelayFree { context } => {
                write!(f, "guard is not delay-free in untimed model: {context}")
            }
        }
    }
}

impl std::error::Error for CtmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtmcError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for CtmcError {
    fn from(e: EvalError) -> Self {
        CtmcError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CtmcError::TimedModel { variable: "x".into() },
            CtmcError::StateLimitExceeded { limit: 10 },
            CtmcError::VanishingCycle { state_index: 3 },
            CtmcError::Empty,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
