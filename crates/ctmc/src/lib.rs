//! # slim-ctmc
//!
//! The CTMC baseline pipeline of the `slimsim` reproduction — the Rust
//! stand-in for the COMPASS analysis chain of §IV of *"A Statistical
//! Approach for Timed Reachability in AADL Models"* (DSN 2015):
//!
//! | COMPASS step | Here |
//! |--------------|------|
//! | NuSMV BDD reachability | [`explore()`](explore::explore) — explicit state-space exploration |
//! | (IMC closure) | [`eliminate()`](eliminate::eliminate) — vanishing-state elimination |
//! | sigref weak bisimulation | [`lumping`] — ordinary-lumpability refinement |
//! | MRMC CSL checking | [`transient`] — uniformization transient analysis |
//!
//! The pipeline handles **untimed** (discrete-data, Markovian) models only,
//! exactly like the original tool chain; timed models are the simulator's
//! domain.
//!
//! ```
//! use slim_automata::prelude::*;
//! use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
//!
//! let mut b = NetworkBuilder::new();
//! let mut a = AutomatonBuilder::new("m");
//! let ok = a.location("ok");
//! let failed = a.location("failed");
//! a.markovian(ok, 1.0, [], failed);
//! b.add_automaton(a);
//! let net = b.build()?;
//!
//! let goal = |s: &NetState| Ok(s.locs[0] == LocId(1));
//! let r = check_timed_reachability(&net, &goal, 1.0, &PipelineConfig::default())?;
//! assert!((r.probability - (1.0 - (-1.0f64).exp())).abs() < 1e-8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod ctmc;
pub mod eliminate;
pub mod error;
pub mod explore;
pub mod foxglynn;
pub mod imc;
pub mod lumping;
pub mod transient;

pub use analysis::{check_timed_reachability, PipelineConfig, PipelineResult};
pub use ctmc::Ctmc;
pub use eliminate::eliminate;
pub use error::CtmcError;
pub use explore::{explore, ExploreConfig, Explored};
pub use imc::{Imc, ImcState};
pub use lumping::{lump, Lumped};
pub use transient::{timed_reachability, transient_distribution, TransientConfig};
