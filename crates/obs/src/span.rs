//! Span timers for pipeline phases.
//!
//! A [`PhaseClock`] accumulates named wall-clock spans — parse, lower,
//! instantiate, simulate, estimate — in the order they first occur.
//! Phases recorded twice accumulate, so a clock can be threaded through
//! retried or chunked work.

use std::time::{Duration, Instant};

/// Ordered, accumulating collection of named wall-clock spans.
#[derive(Debug, Clone, Default)]
pub struct PhaseClock {
    phases: Vec<(String, Duration)>,
}

impl PhaseClock {
    /// Creates an empty clock.
    pub fn new() -> PhaseClock {
        PhaseClock::default()
    }

    /// Times `f` and accumulates the elapsed wall time under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Accumulates an externally measured span.
    pub fn record(&mut self, name: &str, d: Duration) {
        if let Some((_, total)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *total += d;
        } else {
            self.phases.push((name.to_string(), d));
        }
    }

    /// The recorded phases in first-occurrence order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Appends another clock's phases (accumulating shared names).
    pub fn extend(&mut self, other: &PhaseClock) {
        for (name, d) in &other.phases {
            self.record(name, *d);
        }
    }

    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_accumulates() {
        let mut c = PhaseClock::new();
        c.record("parse", Duration::from_millis(2));
        c.record("lower", Duration::from_millis(3));
        c.record("parse", Duration::from_millis(5));
        let names: Vec<&str> = c.phases().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["parse", "lower"]);
        assert_eq!(c.phases()[0].1, Duration::from_millis(7));
        assert_eq!(c.total(), Duration::from_millis(10));
    }

    #[test]
    fn time_measures_closure() {
        let mut c = PhaseClock::new();
        let v = c.time("work", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(c.phases()[0].1 >= Duration::from_millis(4));
    }

    #[test]
    fn extend_merges() {
        let mut a = PhaseClock::new();
        a.record("parse", Duration::from_millis(1));
        let mut b = PhaseClock::new();
        b.record("parse", Duration::from_millis(2));
        b.record("simulate", Duration::from_millis(3));
        a.extend(&b);
        assert_eq!(a.phases().len(), 2);
        assert_eq!(a.phases()[0].1, Duration::from_millis(3));
    }
}
