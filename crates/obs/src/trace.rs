//! Structured path traces: typed events, sinks, and the JSON-lines codec.
//!
//! A *trace* is the ordered list of [`TraceEvent`]s one simulated path
//! produced: delays, firings (with the participating automata and the
//! sampled Markovian race winner), strategy decisions (with the candidate
//! set that was considered), variable-valuation snapshots, and the final
//! verdict. Events are name-based and self-contained — no references into
//! model structures — so a trace written today replays against a model
//! rebuilt tomorrow.
//!
//! Sinks receive events one at a time: [`MemorySink`] keeps everything,
//! [`RingBufferSink`] keeps the last `capacity` events with bounded
//! memory, and [`JsonLinesSink`] streams one compact JSON object per line
//! to any writer. [`parse_trace`] reads the JSON-lines form back.
//!
//! All numbers serialize through [`Json`]'s shortest-roundtrip `f64`
//! formatting, so a recorded trace is byte-stable and times survive the
//! round trip exactly (which the replay verifier relies on).

use crate::json::Json;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};

/// Version of the trace event schema (the `format_version` field of
/// [`TraceEvent::Start`]).
pub const TRACE_FORMAT_VERSION: u64 = 1;

/// One typed event along a generated path.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Trace header: identifies the model, path index, seed and property
    /// configuration so the trace is self-describing (replay reconstructs
    /// the run from these fields alone).
    Start {
        /// Trace schema version ([`TRACE_FORMAT_VERSION`] at write time).
        format_version: u64,
        /// Model name (a builtin name or a `.slim` file path).
        model: String,
        /// The path index within its run (selects the RNG stream).
        path_index: u64,
        /// The run's base seed.
        seed: u64,
        /// Strategy name (as accepted by the CLI `--strategy`).
        strategy: String,
        /// Time bound of the property.
        bound: f64,
        /// Per-path step limit.
        max_steps: u64,
        /// Extra key/value arguments needed to rebuild the run (model
        /// options, goal/hold selectors), in a stable order.
        args: Vec<(String, String)>,
    },
    /// Time passed.
    Delay {
        /// Engine step number the delay belongs to.
        step: u64,
        /// Model time at the start of the delay.
        at: f64,
        /// Delay length.
        duration: f64,
    },
    /// The strategy resolved a step (recorded before any race).
    Decision {
        /// Engine step number.
        step: u64,
        /// Model time of the decision.
        at: f64,
        /// Decision kind: `fire`, `wait`, `stuck` or `abort`.
        kind: String,
        /// Rendered candidate set the strategy considered.
        candidates: Vec<String>,
        /// Index into `candidates` for a `fire` decision.
        chosen: Option<u64>,
        /// Scheduled delay for `fire`/`wait` decisions.
        delay: Option<f64>,
    },
    /// A discrete transition fired.
    Fire {
        /// Engine step number the firing belongs to.
        step: u64,
        /// Model time of the firing.
        at: f64,
        /// Action name (`"tau"` for internal/Markovian moves).
        action: String,
        /// Whether a Markovian race winner fired (vs the schedule).
        markovian: bool,
        /// The winner's own rate (Markovian firings only).
        rate: Option<f64>,
        /// Total exit rate the race was sampled against.
        rate_total: Option<f64>,
        /// Participating `(automaton name, local transition index)` pairs,
        /// in network automaton order — enough to re-apply the firing.
        parts: Vec<(String, u64)>,
    },
    /// A variable-valuation snapshot after a step.
    Snapshot {
        /// Engine step number the snapshot was taken after.
        step: u64,
        /// Model time of the snapshot.
        at: f64,
        /// Current location name per automaton, in automaton order.
        locations: Vec<String>,
        /// Variable values in declaration order (booleans as JSON bools,
        /// integers and reals as JSON numbers).
        values: Vec<(String, Json)>,
    },
    /// The path ended.
    Verdict {
        /// Verdict code (`satisfied`, `time_bound_exceeded`,
        /// `hold_violated`, `deadlock`, `timelock`, `step_limit`).
        verdict: String,
        /// Model time the verdict was reached at.
        at: f64,
        /// Total engine steps of the path.
        steps: u64,
    },
}

impl TraceEvent {
    /// The event's type tag as used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Start { .. } => "start",
            TraceEvent::Delay { .. } => "delay",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::Fire { .. } => "fire",
            TraceEvent::Snapshot { .. } => "snapshot",
            TraceEvent::Verdict { .. } => "verdict",
        }
    }

    /// Serializes the event to one JSON object.
    pub fn to_json(&self) -> Json {
        fn opt_num(v: Option<f64>) -> Json {
            v.map_or(Json::Null, Json::Num)
        }
        match self {
            TraceEvent::Start {
                format_version,
                model,
                path_index,
                seed,
                strategy,
                bound,
                max_steps,
                args,
            } => Json::obj([
                ("type", Json::str("start")),
                ("format_version", Json::Num(*format_version as f64)),
                ("model", Json::str(model)),
                ("path_index", Json::Num(*path_index as f64)),
                // Seeds use the full u64 range; JSON numbers are f64, so
                // encode as a decimal string to stay exact.
                ("seed", Json::str(seed.to_string())),
                ("strategy", Json::str(strategy)),
                ("bound", Json::Num(*bound)),
                ("max_steps", Json::Num(*max_steps as f64)),
                ("args", Json::Obj(args.iter().map(|(k, v)| (k.clone(), Json::str(v))).collect())),
            ]),
            TraceEvent::Delay { step, at, duration } => Json::obj([
                ("type", Json::str("delay")),
                ("step", Json::Num(*step as f64)),
                ("at", Json::Num(*at)),
                ("duration", Json::Num(*duration)),
            ]),
            TraceEvent::Decision { step, at, kind, candidates, chosen, delay } => Json::obj([
                ("type", Json::str("decision")),
                ("step", Json::Num(*step as f64)),
                ("at", Json::Num(*at)),
                ("kind", Json::str(kind)),
                ("candidates", Json::Arr(candidates.iter().map(Json::str).collect())),
                ("chosen", chosen.map_or(Json::Null, |c| Json::Num(c as f64))),
                ("delay", opt_num(*delay)),
            ]),
            TraceEvent::Fire { step, at, action, markovian, rate, rate_total, parts } => {
                Json::obj([
                    ("type", Json::str("fire")),
                    ("step", Json::Num(*step as f64)),
                    ("at", Json::Num(*at)),
                    ("action", Json::str(action)),
                    ("markovian", Json::Bool(*markovian)),
                    ("rate", opt_num(*rate)),
                    ("rate_total", opt_num(*rate_total)),
                    (
                        "parts",
                        Json::Arr(
                            parts
                                .iter()
                                .map(|(a, t)| {
                                    Json::obj([
                                        ("automaton", Json::str(a)),
                                        ("transition", Json::Num(*t as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            }
            TraceEvent::Snapshot { step, at, locations, values } => Json::obj([
                ("type", Json::str("snapshot")),
                ("step", Json::Num(*step as f64)),
                ("at", Json::Num(*at)),
                ("locations", Json::Arr(locations.iter().map(Json::str).collect())),
                ("values", Json::Obj(values.iter().map(|(k, v)| (k.clone(), v.clone())).collect())),
            ]),
            TraceEvent::Verdict { verdict, at, steps } => Json::obj([
                ("type", Json::str("verdict")),
                ("verdict", Json::str(verdict)),
                ("at", Json::Num(*at)),
                ("steps", Json::Num(*steps as f64)),
            ]),
        }
    }

    /// Parses one event from its JSON object form.
    ///
    /// # Errors
    /// A description naming the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<TraceEvent, String> {
        let kind = req_str(v, "type")?;
        match kind.as_str() {
            "start" => {
                let args = match v.get("args") {
                    Some(Json::Obj(members)) => members
                        .iter()
                        .map(|(k, val)| {
                            val.as_str()
                                .map(|s| (k.clone(), s.to_string()))
                                .ok_or_else(|| format!("start.args.{k}: expected string"))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    Some(_) => return Err("start.args: expected object".into()),
                    None => Vec::new(),
                };
                let seed_str = req_str(v, "seed")?;
                let seed = seed_str
                    .parse::<u64>()
                    .map_err(|_| format!("start.seed: invalid u64 {seed_str:?}"))?;
                Ok(TraceEvent::Start {
                    format_version: req_u64(v, "format_version")?,
                    model: req_str(v, "model")?,
                    path_index: req_u64(v, "path_index")?,
                    seed,
                    strategy: req_str(v, "strategy")?,
                    bound: req_f64(v, "bound")?,
                    max_steps: req_u64(v, "max_steps")?,
                    args,
                })
            }
            "delay" => Ok(TraceEvent::Delay {
                step: req_u64(v, "step")?,
                at: req_f64(v, "at")?,
                duration: req_f64(v, "duration")?,
            }),
            "decision" => {
                let candidates = match v.get("candidates") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "decision.candidates: expected strings".to_string())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("decision.candidates: expected array".into()),
                };
                Ok(TraceEvent::Decision {
                    step: req_u64(v, "step")?,
                    at: req_f64(v, "at")?,
                    kind: req_str(v, "kind")?,
                    candidates,
                    chosen: opt_u64(v, "chosen"),
                    delay: opt_f64(v, "delay"),
                })
            }
            "fire" => {
                let parts = match v.get("parts") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|p| {
                            let a = req_str(p, "automaton")?;
                            let t = req_u64(p, "transition")?;
                            Ok((a, t))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("fire.parts: expected array".into()),
                };
                let markovian = match v.get("markovian") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err("fire.markovian: expected bool".into()),
                };
                Ok(TraceEvent::Fire {
                    step: req_u64(v, "step")?,
                    at: req_f64(v, "at")?,
                    action: req_str(v, "action")?,
                    markovian,
                    rate: opt_f64(v, "rate"),
                    rate_total: opt_f64(v, "rate_total"),
                    parts,
                })
            }
            "snapshot" => {
                let locations = match v.get("locations") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "snapshot.locations: expected strings".to_string())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("snapshot.locations: expected array".into()),
                };
                let values = match v.get("values") {
                    Some(Json::Obj(members)) => {
                        members.iter().map(|(k, val)| (k.clone(), val.clone())).collect()
                    }
                    _ => return Err("snapshot.values: expected object".into()),
                };
                Ok(TraceEvent::Snapshot {
                    step: req_u64(v, "step")?,
                    at: req_f64(v, "at")?,
                    locations,
                    values,
                })
            }
            "verdict" => Ok(TraceEvent::Verdict {
                verdict: req_str(v, "verdict")?,
                at: req_f64(v, "at")?,
                steps: req_u64(v, "steps")?,
            }),
            other => Err(format!("unknown trace event type {other:?}")),
        }
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or ill-typed string field {key:?}"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or ill-typed number field {key:?}"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or ill-typed integer field {key:?}"))
}

fn opt_f64(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

fn opt_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Start { model, path_index, seed, strategy, bound, .. } => {
                write!(
                    f,
                    "trace: model={model} path={path_index} seed={seed} \
                     strategy={strategy} bound={bound}"
                )
            }
            TraceEvent::Delay { at, duration, .. } => write!(f, "t={at:.6}: delay {duration:.6}"),
            TraceEvent::Decision { at, kind, candidates, chosen, delay, .. } => {
                write!(f, "t={at:.6}: decide {kind}")?;
                if let Some(d) = delay {
                    write!(f, " after {d:.6}")?;
                }
                if let Some(c) = chosen {
                    if let Some(name) = candidates.get(*c as usize) {
                        write!(f, " → {name}")?;
                    }
                }
                if !candidates.is_empty() {
                    write!(f, " (of {})", candidates.join(", "))?;
                }
                Ok(())
            }
            TraceEvent::Fire { at, action, markovian, parts, .. } => {
                let kind = if *markovian { "markovian" } else { "guarded" };
                let names: Vec<&str> = parts.iter().map(|(a, _)| a.as_str()).collect();
                write!(f, "t={at:.6}: fire {action} ({kind}; {})", names.join("∥"))
            }
            TraceEvent::Snapshot { at, locations, values, .. } => {
                let vals: Vec<String> =
                    values.iter().map(|(k, v)| format!("{k}={}", v.to_compact())).collect();
                write!(f, "t={at:.6}: state [{}] {}", locations.join(", "), vals.join(" "))
            }
            TraceEvent::Verdict { verdict, at, steps } => {
                write!(f, "verdict: {verdict} after {steps} steps at t={at:.6}")
            }
        }
    }
}

/// A sink receiving structured trace events.
pub trait TraceSink {
    /// Receives one event.
    fn record(&mut self, event: TraceEvent);
}

/// Records every event in memory, unbounded.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Recorded events in order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Keeps the **last** `capacity` events with bounded memory; older events
/// are dropped (and counted).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring buffer keeping at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> RingBufferSink {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consumes the sink, returning the retained events oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }

    /// How many events were dropped to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Streams one compact JSON object per line to a writer.
///
/// `record` is infallible (the [`TraceSink`] contract); the first write
/// error is latched and surfaced by [`JsonLinesSink::finish`].
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Creates a sink writing to `out`.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink { out, written: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the writer, or the first latched write error.
    ///
    /// # Errors
    /// The first I/O error encountered while recording or flushing.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json().to_compact();
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Renders events to the JSON-lines form (one compact object per line).
pub fn events_to_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_compact());
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines trace; blank lines are skipped.
///
/// # Errors
/// The 1-based line number and cause of the first ill-formed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(TraceEvent::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// Renders the movement events (delays and firings) as CSV with the
/// stable header `time,kind,action,markovian,participants`.
pub fn events_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time,kind,action,markovian,participants\n");
    for e in events {
        match e {
            TraceEvent::Delay { at, duration, .. } => {
                out.push_str(&format!("{at},delay,{duration},,\n"));
            }
            TraceEvent::Fire { at, action, markovian, parts, .. } => {
                let names: Vec<&str> = parts.iter().map(|(a, _)| a.as_str()).collect();
                out.push_str(&format!("{at},fire,{action},{markovian},{}\n", names.join("|")));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Start {
                format_version: TRACE_FORMAT_VERSION,
                model: "voting".into(),
                path_index: 3,
                seed: u64::MAX - 7,
                strategy: "asap".into(),
                bound: 10.5,
                max_steps: 1000,
                args: vec![("goal-var".into(), "failed".into())],
            },
            TraceEvent::Decision {
                step: 1,
                at: 0.0,
                kind: "fire".into(),
                candidates: vec!["tau @ [2, 4]".into()],
                chosen: Some(0),
                delay: Some(2.0),
            },
            TraceEvent::Delay { step: 1, at: 0.0, duration: 2.0 },
            TraceEvent::Fire {
                step: 1,
                at: 2.0,
                action: "tau".into(),
                markovian: true,
                rate: Some(1.5),
                rate_total: Some(4.25),
                parts: vec![("p".into(), 0), ("q".into(), 2)],
            },
            TraceEvent::Snapshot {
                step: 1,
                at: 2.0,
                locations: vec!["done".into(), "idle".into()],
                values: vec![
                    ("x".into(), Json::Num(2.0)),
                    ("done".into(), Json::Bool(true)),
                    ("n".into(), Json::Num(-3.0)),
                ],
            },
            TraceEvent::Verdict { verdict: "satisfied".into(), at: 2.0, steps: 1 },
        ]
    }

    #[test]
    fn json_roundtrip_is_exact() {
        for e in sample_events() {
            let back = TraceEvent::from_json(&e.to_json()).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn json_lines_roundtrip_and_byte_stability() {
        let events = sample_events();
        let text = events_to_json_lines(&events);
        let back = parse_trace(&text).unwrap();
        assert_eq!(events, back);
        // Re-serializing the parsed events reproduces the bytes.
        assert_eq!(events_to_json_lines(&back), text);
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let err = parse_trace("{\"type\":\"delay\",\"step\":1,\"at\":0,\"duration\":1}\nnot json")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_trace("{\"type\":\"nope\"}").unwrap_err();
        assert!(err.contains("unknown trace event type"), "{err}");
    }

    #[test]
    fn ring_buffer_keeps_last_and_counts_dropped() {
        let mut ring = RingBufferSink::new(2);
        for step in 0..5 {
            ring.record(TraceEvent::Delay { step, at: step as f64, duration: 1.0 });
        }
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring
            .events()
            .map(|e| match e {
                TraceEvent::Delay { step, .. } => *step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(ring.into_events().len(), 2);
    }

    #[test]
    fn json_lines_sink_streams_lines() {
        let mut sink = JsonLinesSink::new(Vec::new());
        for e in sample_events() {
            sink.record(e);
        }
        assert_eq!(sink.written(), 6);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 6);
        assert_eq!(parse_trace(&text).unwrap(), sample_events());
    }

    #[test]
    fn csv_shape_is_stable() {
        let csv = events_to_csv(&sample_events());
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("time,kind"));
        // Only movement events: 1 delay + 1 fire.
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("delay"));
        assert!(lines[2].contains("tau") && lines[2].contains("true") && lines[2].contains("p|q"));
    }

    #[test]
    fn display_renders_every_kind() {
        for e in sample_events() {
            let s = e.to_string();
            assert!(!s.is_empty());
        }
        let fire = &sample_events()[3];
        assert!(fire.to_string().contains("p∥q"), "{fire}");
    }

    #[test]
    fn seed_roundtrips_full_u64_range() {
        let e = TraceEvent::Start {
            format_version: 1,
            model: "m".into(),
            path_index: 0,
            seed: u64::MAX,
            strategy: "asap".into(),
            bound: 1.0,
            max_steps: 10,
            args: vec![],
        };
        match TraceEvent::from_json(&e.to_json()).unwrap() {
            TraceEvent::Start { seed, .. } => assert_eq!(seed, u64::MAX),
            _ => unreachable!(),
        }
    }
}
