//! A minimal JSON value with writer and parser (RFC 8259), so run and
//! bench reports are machine-readable without external dependencies.
//!
//! Numbers are `f64`; integers up to 2⁵³ round-trip exactly, which
//! covers every counter a single run can realistically produce. Object
//! member order is preserved on parse and write (insertion order), so
//! reports stay diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects (`None` on other variants or misses).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// JSON has no NaN/Infinity; map them to null like every tolerant writer.
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's Display for f64 is the shortest representation that
        // round-trips, which is exactly what a report format wants.
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(format!("bad \\u escape at byte {start}"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            self.pos += 4;
                            // Surrogate pairs: parse the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or(format!("bad surrogate at byte {start}"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| format!("bad surrogate at byte {start}"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or(format!("invalid code point at byte {start}"))?);
                        }
                        b => return Err(format!("bad escape `\\{}` at byte {start}", b as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "1e300", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj([
            ("a", Json::Num(1.25)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("x\"y\n")])),
            ("c", Json::obj([("inner", Json::Num(1e-9))])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn f64_shortest_roundtrip() {
        // The report writer relies on Display producing a re-parseable
        // shortest form for probabilities and timings.
        for n in [0.1, 1.0 / 3.0, 6.02e23, 2f64.powi(53), 1e-320] {
            let v = Json::Num(n);
            assert_eq!(Json::parse(&v.to_compact()).unwrap().as_f64().unwrap(), n);
        }
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\u0041\n\t\\\" \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n\t\\\" é 😀");
        let back = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", "{\"a\":}"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }
}
