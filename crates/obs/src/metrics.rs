//! Lock-cheap metrics: atomic counters and log-bucketed histograms
//! behind a [`MetricsRegistry`].
//!
//! Design constraints, in order:
//!
//! 1. **Cheap when on.** Recording is one relaxed atomic RMW (plus two
//!    for histogram min/max). No locks, no allocation, no formatting on
//!    the hot path; names are resolved to dense indices at registration
//!    time.
//! 2. **Free when off.** Instrumented code holds an `Option<&...>`; the
//!    disabled path is a single never-taken branch.
//! 3. **Shareable.** Registration needs `&mut`, recording needs `&` —
//!    a registry is built up front and then shared by reference across
//!    scoped worker threads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exactly the value 0; bucket `k ≥ 1` holds the range
/// `[2^(k−1), 2^k)`. Exact count/sum/min/max are tracked alongside, so
/// means are exact and only quantiles are approximate (within their
/// bucket, estimated by within-bucket linear interpolation).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Bucket index of a value: 0 for 0, else `64 − leading_zeros`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive-exclusive value range `[lo, hi)` covered by bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), if i >= 64 { u64::MAX } else { 1u64 << i })
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of the same value with one pass over the
    /// atomics — what a batch of equal measurements (e.g. a wall time
    /// attributed evenly across lanes) costs a single observation.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot (relaxed reads; exactness only
    /// matters once producers have quiesced, which is when reports are
    /// built).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64, u64)> = (0..BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let (lo, hi) = bucket_range(i);
                    (lo, hi, n)
                })
            })
            .collect();
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let mut rank = q * count as f64;
            for &(lo, hi, n) in &buckets {
                if rank <= n as f64 {
                    let frac = (rank / n as f64).clamp(0.0, 1.0);
                    return lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                }
                rank -= n as f64;
            }
            self.max.load(Ordering::Relaxed) as f64
        };
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: quantile(0.5),
            p90: quantile(0.9),
            p99: quantile(0.99),
            buckets,
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Exact mean (`sum / count`).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Non-empty buckets as `(lo, hi, count)` with values in `[lo, hi)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Handle to a registered counter (a dense index — `Copy`, no lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A named collection of counters and histograms.
///
/// Metrics are registered once (by `&mut`) and recorded concurrently
/// (by `&`). Registering the same name twice returns the existing
/// handle, so composable instrumentation cannot collide.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, Counter)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter named `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), Counter::new()));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a registered counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.0].1.add(n);
    }

    /// Adds one to a registered counter.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Records an observation into a registered histogram.
    #[inline]
    pub fn record(&self, id: HistogramId, v: u64) {
        self.histograms[id.0].1.record(v);
    }

    /// Records `n` equal observations into a registered histogram.
    #[inline]
    pub fn record_n(&self, id: HistogramId, v: u64, n: u64) {
        self.histograms[id.0].1.record_n(v, n);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1.get()
    }

    /// Snapshot of a single histogram.
    pub fn histogram_snapshot(&self, id: HistogramId) -> HistogramSnapshot {
        self.histograms[id.0].1.snapshot()
    }

    /// Snapshot of every registered metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time view of a whole [`MetricsRegistry`]. Empty histograms
/// are omitted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024] {
            let (lo, hi) = bucket_range(bucket_of(v));
            assert!(lo <= v && (v < hi || hi == u64::MAX), "{v} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn histogram_summaries() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 110);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 22.0).abs() < 1e-9);
        assert!(s.p50 >= 1.0 && s.p50 <= 8.0, "p50 {}", s.p50);
        assert!(s.p99 >= 64.0, "p99 {} should land in the top bucket", s.p99);
        let total: u64 = s.buckets.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn registry_roundtrip_and_dedup() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let a2 = r.counter("a");
        assert_eq!(a, a2);
        let h = r.histogram("h");
        r.add(a, 3);
        r.inc(a);
        r.record(h, 9);
        assert_eq!(r.counter_value(a), 4);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 4);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn empty_histograms_omitted_from_snapshot() {
        let mut r = MetricsRegistry::new();
        let _ = r.histogram("never_recorded");
        assert!(r.snapshot().histograms.is_empty());
    }

    #[test]
    fn concurrent_recording() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for v in 0..1000u64 {
                        r.inc(c);
                        r.record(h, v);
                    }
                });
            }
        });
        assert_eq!(r.counter_value(c), 4000);
        let snap = r.histogram_snapshot(h);
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 999);
    }
}
