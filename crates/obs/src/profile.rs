//! Kernel profiler: bytecode heat maps and phase attribution.
//!
//! Two complementary instruments live here:
//!
//! * [`KernelProfile`] — fixed-size, id-indexed execution counters for
//!   the compiled simulation kernel: per-opcode execution counts, opcode
//!   *digram* counts (the direct input for superinstruction fusion
//!   candidate mining), per-guard evaluation/enabled counts,
//!   per-transition firing counts, per-(process, location) occupancy
//!   step counts, delay-window solve counts, and batch-lane utilization
//!   histograms. Every counter is a plain `u64` updated without
//!   synchronization; cross-worker aggregation is a [`KernelProfile::merge`]
//!   of per-worker profiles with *wrapping* addition in worker-index
//!   order, which makes the merged profile exactly reproducible for a
//!   fixed `(seed, workers)` pair — and, with a worker-invariant path
//!   partition, for a fixed seed at *any* worker count.
//! * [`PhaseProfiler`] — a hierarchical wall-clock span tree
//!   (compile/fixpoint/sampling/estimation breakdown). Wall times are
//!   intentionally kept out of the deterministic [`ProfileReport`] JSON;
//!   the phase tree only appears in the human-readable text rendering.
//!
//! The kernel hooks are the [`ProfileHooks`] trait. The engine and the
//! compiled step tables are generic over it; the [`NoopProfile`]
//! instantiation has `ENABLED == false` and empty inline methods, so the
//! profiling-off build monomorphizes to exactly the un-instrumented
//! code — zero steady-state allocations and no measurable overhead.
//!
//! See `docs/profiling.md` for counter semantics and the determinism
//! contract.

use std::time::{Duration, Instant};

use crate::json::Json;

/// Schema version written into every [`ProfileReport`].
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Discriminator value of the report's `kind` member, used by
/// `slimsim report` to tell a profile document from a run report.
pub const PROFILE_KIND: &str = "kernel-profile";

/// Compile-time profiling hooks threaded through the simulation kernel.
///
/// All methods default to empty bodies so a hook type only implements
/// what it measures. `ENABLED` lets call sites guard loops that would
/// otherwise cost something even when every hook inlines to nothing
/// (e.g. the per-process location-occupancy sweep).
pub trait ProfileHooks {
    /// Whether this instantiation records anything at all. When `false`
    /// the kernel skips hook-only loops entirely.
    const ENABLED: bool;

    /// A bytecode program is about to run; resets digram tracking so
    /// opcode pairs never span two programs.
    #[inline]
    fn eval_begin(&mut self) {}

    /// One opcode (index into the unified opcode name table) executed.
    #[inline]
    fn eval_op(&mut self, op: usize) {
        let _ = op;
    }

    /// A guard was evaluated for transition `trans` of process `proc`;
    /// `enabled` is whether the guard admitted at least one delay.
    #[inline]
    fn guard_eval(&mut self, proc: usize, trans: usize, enabled: bool) {
        let _ = (proc, trans, enabled);
    }

    /// Transition `trans` of process `proc` fired.
    #[inline]
    fn fired(&mut self, proc: usize, trans: usize) {
        let _ = (proc, trans);
    }

    /// Process `proc` took a simulation step while residing in
    /// location `loc`.
    #[inline]
    fn loc_step(&mut self, proc: usize, loc: usize) {
        let _ = (proc, loc);
    }

    /// One delay-window (invariant) solve was performed.
    #[inline]
    fn delay_solve(&mut self) {}

    /// A batched sweep finished; `lane_steps[j]` is the number of steps
    /// lane `j` executed before its path completed.
    #[inline]
    fn batch(&mut self, lane_steps: &[u64]) {
        let _ = lane_steps;
    }
}

/// The profiling-off instantiation: every hook is an empty inline
/// function and `ENABLED` is `false`, so generic kernel code
/// monomorphizes to the un-instrumented machine code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProfile;

impl ProfileHooks for NoopProfile {
    const ENABLED: bool = false;
}

/// Index layout for a network's [`KernelProfile`]: how many unified
/// opcodes exist and how per-process transition/location ids flatten
/// into dense arrays.
///
/// `trans_offsets`/`loc_offsets` have one entry per process plus a final
/// total, so process `p`'s transition `t` lands at
/// `trans_offsets[p] + t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileShape {
    /// Size of the unified opcode name table.
    pub n_ops: usize,
    /// Prefix sums of per-process transition counts (`len = procs + 1`).
    pub trans_offsets: Vec<usize>,
    /// Prefix sums of per-process location counts (`len = procs + 1`).
    pub loc_offsets: Vec<usize>,
}

impl ProfileShape {
    /// Total flattened transition count.
    pub fn n_trans(&self) -> usize {
        self.trans_offsets.last().copied().unwrap_or(0)
    }

    /// Total flattened location count.
    pub fn n_locs(&self) -> usize {
        self.loc_offsets.last().copied().unwrap_or(0)
    }
}

const NO_PREV_OP: usize = usize::MAX;

/// Fixed-size, id-indexed execution counters for the compiled kernel.
///
/// Construct one per worker with [`KernelProfile::new`], thread it
/// through the engine as the [`ProfileHooks`] instantiation, then
/// [`KernelProfile::merge`] the workers' profiles in worker-index order.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    shape: ProfileShape,
    /// Execution count per unified opcode.
    ops: Vec<u64>,
    /// Execution count per ordered opcode pair, `prev * n_ops + next`.
    digrams: Vec<u64>,
    /// Previous opcode within the current program (digram state).
    prev_op: usize,
    /// Guard evaluations per flattened (process, transition).
    guard_evals: Vec<u64>,
    /// Guard evaluations that admitted a delay, same indexing.
    guard_true: Vec<u64>,
    /// Firings per flattened (process, transition).
    trans_fired: Vec<u64>,
    /// Steps taken per flattened (process, location) of residence.
    loc_steps: Vec<u64>,
    /// Delay-window (invariant) solves.
    delay_solves: u64,
    /// Steps executed with exactly `i` lanes still active (`lane_hist[i]`,
    /// index 0 unused).
    lane_hist: Vec<u64>,
    /// Batched sweeps that covered a single lane (scalar drains).
    scalar_drains: u64,
    /// Batched sweeps recorded.
    batches: u64,
    /// Scratch for sorting lane step counts without reallocating.
    lane_scratch: Vec<u64>,
}

impl KernelProfile {
    /// Creates a zeroed profile for the given shape.
    pub fn new(shape: ProfileShape) -> KernelProfile {
        let n_ops = shape.n_ops;
        let n_trans = shape.n_trans();
        let n_locs = shape.n_locs();
        KernelProfile {
            shape,
            ops: vec![0; n_ops],
            digrams: vec![0; n_ops * n_ops],
            prev_op: NO_PREV_OP,
            guard_evals: vec![0; n_trans],
            guard_true: vec![0; n_trans],
            trans_fired: vec![0; n_trans],
            loc_steps: vec![0; n_locs],
            delay_solves: 0,
            lane_hist: Vec::new(),
            scalar_drains: 0,
            batches: 0,
            lane_scratch: Vec::new(),
        }
    }

    /// The shape this profile was built for.
    pub fn shape(&self) -> &ProfileShape {
        &self.shape
    }

    /// Total opcode executions recorded.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Execution counts per unified opcode.
    pub fn op_counts(&self) -> &[u64] {
        &self.ops
    }

    /// Digram counts (`prev * n_ops + next` indexing).
    pub fn digram_counts(&self) -> &[u64] {
        &self.digrams
    }

    /// Guard (evals, enabled) for a flattened transition index.
    pub fn guard_counts(&self, flat: usize) -> (u64, u64) {
        (self.guard_evals[flat], self.guard_true[flat])
    }

    /// Firing count for a flattened transition index.
    pub fn fired_count(&self, flat: usize) -> u64 {
        self.trans_fired[flat]
    }

    /// Residence step count for a flattened location index.
    pub fn loc_step_count(&self, flat: usize) -> u64 {
        self.loc_steps[flat]
    }

    /// Delay-window solve count.
    pub fn delay_solve_count(&self) -> u64 {
        self.delay_solves
    }

    /// `(batches, scalar_drains, lane_hist)` of the batch-lane counters.
    pub fn batch_counts(&self) -> (u64, u64, &[u64]) {
        (self.batches, self.scalar_drains, &self.lane_hist)
    }

    /// Folds `other` into `self` with wrapping element-wise addition.
    /// Call in worker-index order to keep merged profiles deterministic.
    ///
    /// # Panics
    /// When the two profiles were built for different shapes.
    pub fn merge(&mut self, other: &KernelProfile) {
        assert_eq!(self.shape, other.shape, "cannot merge profiles of different models");
        let add = |dst: &mut [u64], src: &[u64]| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = d.wrapping_add(*s);
            }
        };
        add(&mut self.ops, &other.ops);
        add(&mut self.digrams, &other.digrams);
        add(&mut self.guard_evals, &other.guard_evals);
        add(&mut self.guard_true, &other.guard_true);
        add(&mut self.trans_fired, &other.trans_fired);
        add(&mut self.loc_steps, &other.loc_steps);
        self.delay_solves = self.delay_solves.wrapping_add(other.delay_solves);
        if self.lane_hist.len() < other.lane_hist.len() {
            self.lane_hist.resize(other.lane_hist.len(), 0);
        }
        add(&mut self.lane_hist, &other.lane_hist);
        self.scalar_drains = self.scalar_drains.wrapping_add(other.scalar_drains);
        self.batches = self.batches.wrapping_add(other.batches);
    }
}

impl ProfileHooks for KernelProfile {
    const ENABLED: bool = true;

    #[inline]
    fn eval_begin(&mut self) {
        self.prev_op = NO_PREV_OP;
    }

    #[inline]
    fn eval_op(&mut self, op: usize) {
        self.ops[op] = self.ops[op].wrapping_add(1);
        if self.prev_op != NO_PREV_OP {
            let cell = self.prev_op * self.shape.n_ops + op;
            self.digrams[cell] = self.digrams[cell].wrapping_add(1);
        }
        self.prev_op = op;
    }

    #[inline]
    fn guard_eval(&mut self, proc: usize, trans: usize, enabled: bool) {
        let flat = self.shape.trans_offsets[proc] + trans;
        self.guard_evals[flat] = self.guard_evals[flat].wrapping_add(1);
        self.guard_true[flat] = self.guard_true[flat].wrapping_add(enabled as u64);
    }

    #[inline]
    fn fired(&mut self, proc: usize, trans: usize) {
        let flat = self.shape.trans_offsets[proc] + trans;
        self.trans_fired[flat] = self.trans_fired[flat].wrapping_add(1);
    }

    #[inline]
    fn loc_step(&mut self, proc: usize, loc: usize) {
        let flat = self.shape.loc_offsets[proc] + loc;
        self.loc_steps[flat] = self.loc_steps[flat].wrapping_add(1);
    }

    #[inline]
    fn delay_solve(&mut self) {
        self.delay_solves = self.delay_solves.wrapping_add(1);
    }

    fn batch(&mut self, lane_steps: &[u64]) {
        self.batches = self.batches.wrapping_add(1);
        if lane_steps.len() == 1 {
            self.scalar_drains = self.scalar_drains.wrapping_add(1);
        }
        self.lane_scratch.clear();
        self.lane_scratch.extend_from_slice(lane_steps);
        self.lane_scratch.sort_unstable_by(|a, b| b.cmp(a));
        if self.lane_hist.len() < lane_steps.len() + 1 {
            self.lane_hist.resize(lane_steps.len() + 1, 0);
        }
        // Lanes sorted by steps descending: exactly `j + 1` lanes were
        // still active for the steps between rank j's count and rank
        // j+1's count.
        for j in 0..self.lane_scratch.len() {
            let hi = self.lane_scratch[j];
            let lo = if j + 1 < self.lane_scratch.len() { self.lane_scratch[j + 1] } else { 0 };
            self.lane_hist[j + 1] = self.lane_hist[j + 1].wrapping_add(hi - lo);
        }
    }
}

/// Hierarchical wall-clock span tree for phase attribution.
///
/// Spans nest: `begin`/`end` pairs open and close children of the
/// currently open span; re-entering a name under the same parent
/// accumulates into the existing node. [`PhaseProfiler::record`] grafts
/// an externally measured duration as a child of the open span, which is
/// how the engine's existing phase clock feeds the tree.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    names: Vec<String>,
    totals: Vec<Duration>,
    parents: Vec<Option<usize>>,
    /// Stack of (node index, start instant) for open spans.
    open: Vec<(usize, Instant)>,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    fn node(&mut self, name: &str) -> usize {
        let parent = self.open.last().map(|(i, _)| *i);
        if let Some(i) =
            (0..self.names.len()).find(|&i| self.parents[i] == parent && self.names[i] == name)
        {
            return i;
        }
        self.names.push(name.to_string());
        self.totals.push(Duration::ZERO);
        self.parents.push(parent);
        self.names.len() - 1
    }

    /// Opens a span named `name` under the currently open span.
    pub fn begin(&mut self, name: &str) {
        let i = self.node(name);
        self.open.push((i, Instant::now()));
    }

    /// Closes the innermost open span, accumulating its elapsed time.
    ///
    /// # Panics
    /// When no span is open.
    pub fn end(&mut self) {
        let (i, start) = self.open.pop().expect("PhaseProfiler::end without begin");
        self.totals[i] += start.elapsed();
    }

    /// Times `f` inside a span named `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.begin(name);
        let out = f();
        self.end();
        out
    }

    /// Grafts an externally measured duration as a child of the open
    /// span (or as a root when none is open).
    pub fn record(&mut self, name: &str, d: Duration) {
        let i = self.node(name);
        self.totals[i] += d;
    }

    /// Flat view of the recorded spans: `(depth, name, total)`, in tree
    /// (preorder) order.
    pub fn spans(&self) -> Vec<(usize, &str, Duration)> {
        let mut out = Vec::with_capacity(self.names.len());
        fn walk<'a>(
            p: &'a PhaseProfiler,
            parent: Option<usize>,
            depth: usize,
            out: &mut Vec<(usize, &'a str, Duration)>,
        ) {
            for i in 0..p.names.len() {
                if p.parents[i] == parent {
                    out.push((depth, p.names[i].as_str(), p.totals[i]));
                    walk(p, Some(i), depth + 1, out);
                }
            }
        }
        walk(self, None, 0, &mut out);
        out
    }

    /// Renders the span tree as indented text with per-span share of the
    /// parent's time.
    pub fn render(&self) -> String {
        let spans = self.spans();
        let root_total: f64 =
            spans.iter().filter(|(d, _, _)| *d == 0).map(|(_, _, t)| t.as_secs_f64()).sum();
        let mut parents = vec![root_total];
        let mut out = String::new();
        for (depth, name, total) in spans {
            parents.truncate(depth + 1);
            let parent_total = parents[depth];
            let secs = total.as_secs_f64();
            let pct = if parent_total > 0.0 { 100.0 * secs / parent_total } else { 0.0 };
            out.push_str(&format!(
                "{:indent$}{name:<24} {:>10.3} ms {pct:>5.1}%\n",
                "",
                secs * 1e3,
                indent = depth * 2
            ));
            parents.push(secs);
        }
        out
    }
}

/// One labeled counter in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Human-readable label (opcode name, digram, or location).
    pub label: String,
    /// Execution count.
    pub count: u64,
}

/// One guard's evaluation statistics in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardEntry {
    /// Structural label, e.g. `proc: idle -> busy`.
    pub label: String,
    /// `file:line:col` source span when the model came from a `.slim`
    /// file; `None` for built-in or synthesized transitions.
    pub span: Option<String>,
    /// How many times the guard was evaluated.
    pub evals: u64,
    /// How many evaluations admitted at least one delay.
    pub enabled: u64,
}

/// One transition's firing count in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionEntry {
    /// Structural label, e.g. `proc: idle -> busy`.
    pub label: String,
    /// Source span, when known (see [`GuardEntry::span`]).
    pub span: Option<String>,
    /// Firing count.
    pub fired: u64,
}

/// Labels used to turn a [`KernelProfile`]'s dense counters into a
/// readable [`ProfileReport`]. All vectors align with the profile's
/// [`ProfileShape`] flattened indices.
#[derive(Debug, Clone, Default)]
pub struct ProfileLabels {
    /// Unified opcode names, indexed by opcode id.
    pub op_names: Vec<String>,
    /// Per flattened transition: structural label and optional span.
    pub transitions: Vec<(String, Option<String>)>,
    /// Per flattened location: structural label.
    pub locations: Vec<String>,
}

/// A versioned, deterministic profile document.
///
/// Everything in here is a function of `(model, seed)` alone — wall
/// times, worker counts and host facts are deliberately excluded so the
/// serialized report is byte-identical across worker counts and hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Model name (builtin name or file path).
    pub model: String,
    /// RNG seed of the profiled run.
    pub seed: u64,
    /// Paths simulated.
    pub samples: u64,
    /// Total opcode executions.
    pub total_ops: u64,
    /// Per-opcode execution counts, hottest first (zero counts dropped).
    pub ops: Vec<ProfileEntry>,
    /// Opcode digram counts ranked as superinstruction fusion
    /// candidates, hottest first (zero counts dropped).
    pub digrams: Vec<ProfileEntry>,
    /// Per-guard evaluation statistics, most-evaluated first.
    pub guards: Vec<GuardEntry>,
    /// Per-transition firing counts, most-fired first.
    pub transitions: Vec<TransitionEntry>,
    /// Per-(process, location) residence step counts, hottest first.
    pub locations: Vec<ProfileEntry>,
    /// Delay-window (invariant) solves.
    pub delay_solves: u64,
    /// Batched sweeps executed.
    pub batches: u64,
    /// Batched sweeps that covered a single lane.
    pub scalar_drains: u64,
    /// `(active_lanes, steps)` pairs: how many kernel steps ran with
    /// exactly that many lanes active, ascending by lane count.
    pub lane_occupancy: Vec<(u64, u64)>,
}

impl ProfileReport {
    /// Builds the report from a merged kernel profile and its labels.
    ///
    /// Entries are sorted by count descending, then label ascending;
    /// zero-count entries are dropped. Guards keep ties stable the same
    /// way on their evaluation counts.
    pub fn from_profile(
        profile: &KernelProfile,
        labels: &ProfileLabels,
        model: &str,
        seed: u64,
        samples: u64,
    ) -> ProfileReport {
        let shape = profile.shape();
        let n_ops = shape.n_ops;
        let mut ops = Vec::new();
        for (i, &count) in profile.op_counts().iter().enumerate() {
            if count > 0 {
                ops.push(ProfileEntry { label: labels.op_names[i].clone(), count });
            }
        }
        sort_entries(&mut ops);
        let mut digrams = Vec::new();
        for (cell, &count) in profile.digram_counts().iter().enumerate() {
            if count > 0 {
                let (a, b) = (cell / n_ops, cell % n_ops);
                digrams.push(ProfileEntry {
                    label: format!("{} -> {}", labels.op_names[a], labels.op_names[b]),
                    count,
                });
            }
        }
        sort_entries(&mut digrams);
        let mut guards = Vec::new();
        let mut transitions = Vec::new();
        for (flat, (label, span)) in labels.transitions.iter().enumerate() {
            let (evals, enabled) = profile.guard_counts(flat);
            if evals > 0 {
                guards.push(GuardEntry {
                    label: label.clone(),
                    span: span.clone(),
                    evals,
                    enabled,
                });
            }
            let fired = profile.fired_count(flat);
            if fired > 0 {
                transitions.push(TransitionEntry {
                    label: label.clone(),
                    span: span.clone(),
                    fired,
                });
            }
        }
        guards.sort_by(|a, b| b.evals.cmp(&a.evals).then_with(|| a.label.cmp(&b.label)));
        transitions.sort_by(|a, b| b.fired.cmp(&a.fired).then_with(|| a.label.cmp(&b.label)));
        let mut locations = Vec::new();
        for (flat, label) in labels.locations.iter().enumerate() {
            let count = profile.loc_step_count(flat);
            if count > 0 {
                locations.push(ProfileEntry { label: label.clone(), count });
            }
        }
        sort_entries(&mut locations);
        let (batches, scalar_drains, lane_hist) = profile.batch_counts();
        let lane_occupancy = lane_hist
            .iter()
            .enumerate()
            .filter(|&(lanes, &steps)| lanes > 0 && steps > 0)
            .map(|(lanes, &steps)| (lanes as u64, steps))
            .collect();
        ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            model: model.to_string(),
            seed,
            samples,
            total_ops: profile.total_ops(),
            ops,
            digrams,
            guards,
            transitions,
            locations,
            delay_solves: profile.delay_solve_count(),
            batches,
            scalar_drains,
            lane_occupancy,
        }
    }

    /// Serializes the report to its JSON document.
    pub fn to_json(&self) -> Json {
        let entries = |v: &[ProfileEntry]| {
            Json::Arr(
                v.iter()
                    .map(|e| {
                        Json::obj([
                            ("label", Json::str(&e.label)),
                            ("count", Json::Num(e.count as f64)),
                        ])
                    })
                    .collect(),
            )
        };
        let span = |s: &Option<String>| s.as_deref().map(Json::str).unwrap_or(Json::Null);
        Json::obj([
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("kind", Json::str(PROFILE_KIND)),
            ("model", Json::str(&self.model)),
            ("seed", Json::Num(self.seed as f64)),
            ("samples", Json::Num(self.samples as f64)),
            ("total_ops", Json::Num(self.total_ops as f64)),
            ("ops", entries(&self.ops)),
            ("digrams", entries(&self.digrams)),
            (
                "guards",
                Json::Arr(
                    self.guards
                        .iter()
                        .map(|g| {
                            Json::obj([
                                ("label", Json::str(&g.label)),
                                ("span", span(&g.span)),
                                ("evals", Json::Num(g.evals as f64)),
                                ("enabled", Json::Num(g.enabled as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "transitions",
                Json::Arr(
                    self.transitions
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("label", Json::str(&t.label)),
                                ("span", span(&t.span)),
                                ("fired", Json::Num(t.fired as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("locations", entries(&self.locations)),
            ("delay_solves", Json::Num(self.delay_solves as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("scalar_drains", Json::Num(self.scalar_drains as f64)),
            (
                "lane_occupancy",
                Json::Arr(
                    self.lane_occupancy
                        .iter()
                        .map(|&(lanes, steps)| {
                            Json::obj([
                                ("lanes", Json::Num(lanes as f64)),
                                ("steps", Json::Num(steps as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report from its JSON document.
    ///
    /// # Errors
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<ProfileReport, String> {
        let kind = req_str(v, "kind", "profile")?;
        if kind != PROFILE_KIND {
            return Err(format!("profile: `kind` is `{kind}`, expected `{PROFILE_KIND}`"));
        }
        let entries = |key: &str| -> Result<Vec<ProfileEntry>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or(format!("profile: missing array `{key}`"))?
                .iter()
                .map(|e| {
                    Ok(ProfileEntry {
                        label: req_str(e, "label", key)?,
                        count: req_u64(e, "count", key)?,
                    })
                })
                .collect()
        };
        let opt_span = |e: &Json, ctx: &str| -> Result<Option<String>, String> {
            match e.get("span") {
                None | Some(Json::Null) => Ok(None),
                Some(s) => Ok(Some(
                    s.as_str()
                        .map(str::to_string)
                        .ok_or(format!("{ctx}: `span` must be string or null"))?,
                )),
            }
        };
        Ok(ProfileReport {
            schema_version: req_u64(v, "schema_version", "profile")?,
            model: req_str(v, "model", "profile")?,
            seed: req_u64(v, "seed", "profile")?,
            samples: req_u64(v, "samples", "profile")?,
            total_ops: req_u64(v, "total_ops", "profile")?,
            ops: entries("ops")?,
            digrams: entries("digrams")?,
            guards: v
                .get("guards")
                .and_then(Json::as_arr)
                .ok_or("profile: missing array `guards`")?
                .iter()
                .map(|g| {
                    Ok(GuardEntry {
                        label: req_str(g, "label", "guards")?,
                        span: opt_span(g, "guards")?,
                        evals: req_u64(g, "evals", "guards")?,
                        enabled: req_u64(g, "enabled", "guards")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            transitions: v
                .get("transitions")
                .and_then(Json::as_arr)
                .ok_or("profile: missing array `transitions`")?
                .iter()
                .map(|t| {
                    Ok(TransitionEntry {
                        label: req_str(t, "label", "transitions")?,
                        span: opt_span(t, "transitions")?,
                        fired: req_u64(t, "fired", "transitions")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            locations: entries("locations")?,
            delay_solves: req_u64(v, "delay_solves", "profile")?,
            batches: req_u64(v, "batches", "profile")?,
            scalar_drains: req_u64(v, "scalar_drains", "profile")?,
            lane_occupancy: v
                .get("lane_occupancy")
                .and_then(Json::as_arr)
                .ok_or("profile: missing array `lane_occupancy`")?
                .iter()
                .map(|l| {
                    Ok((
                        req_u64(l, "lanes", "lane_occupancy")?,
                        req_u64(l, "steps", "lane_occupancy")?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Structural validation: returns all problems found (empty when
    /// the report is internally consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.schema_version == 0 || self.schema_version > PROFILE_SCHEMA_VERSION {
            problems.push(format!(
                "schema_version is {} but this tool expects 1..={PROFILE_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        let op_sum = self.ops.iter().fold(0u64, |a, e| a.wrapping_add(e.count));
        if op_sum != self.total_ops {
            problems.push(format!("op counts sum to {op_sum} but total_ops is {}", self.total_ops));
        }
        for g in &self.guards {
            if g.enabled > g.evals {
                problems.push(format!(
                    "guard `{}` enabled count {} exceeds eval count {}",
                    g.label, g.enabled, g.evals
                ));
            }
        }
        if self.scalar_drains > self.batches {
            problems.push(format!(
                "scalar_drains ({}) exceeds batches ({})",
                self.scalar_drains, self.batches
            ));
        }
        for w in self.lane_occupancy.windows(2) {
            if w[1].0 <= w[0].0 {
                problems.push("lane_occupancy lane counts not strictly increasing".to_string());
                break;
            }
        }
        for (section, sorted) in [
            ("ops", is_sorted(&self.ops)),
            ("digrams", is_sorted(&self.digrams)),
            ("locations", is_sorted(&self.locations)),
        ] {
            if !sorted {
                problems.push(format!("`{section}` not sorted by count descending"));
            }
        }
        problems
    }

    /// Renders the heat-map text view: top-K opcodes and digrams,
    /// hottest guards and locations, and the batch-lane histogram.
    pub fn render_text(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "kernel profile: {} (seed {}, {} paths, {} ops)\n",
            self.model, self.seed, self.samples, self.total_ops
        ));
        let bar = |count: u64, max: u64| {
            let width = (count * 24).checked_div(max).unwrap_or(0) as usize;
            "#".repeat(width.max(1))
        };
        let top = |out: &mut String, title: &str, entries: &[ProfileEntry]| {
            if entries.is_empty() {
                return;
            }
            out.push_str(&format!("\n{title} (top {}):\n", top_k.min(entries.len())));
            let max = entries[0].count;
            for e in entries.iter().take(top_k) {
                out.push_str(&format!(
                    "  {:<40} {:>12}  {}\n",
                    e.label,
                    e.count,
                    bar(e.count, max)
                ));
            }
        };
        top(&mut out, "opcodes", &self.ops);
        top(&mut out, "digrams (superinstruction candidates)", &self.digrams);
        if !self.guards.is_empty() {
            out.push_str(&format!("\nguards (top {}):\n", top_k.min(self.guards.len())));
            for g in self.guards.iter().take(top_k) {
                let pct = if g.evals > 0 { 100.0 * g.enabled as f64 / g.evals as f64 } else { 0.0 };
                let at = g.span.as_deref().unwrap_or("builtin");
                out.push_str(&format!(
                    "  {:<40} {:>12} evals  {pct:>5.1}% enabled  [{at}]\n",
                    g.label, g.evals
                ));
            }
        }
        if !self.transitions.is_empty() {
            out.push_str(&format!("\ntransitions (top {}):\n", top_k.min(self.transitions.len())));
            for t in self.transitions.iter().take(top_k) {
                let at = t.span.as_deref().unwrap_or("builtin");
                out.push_str(&format!("  {:<40} {:>12} fired  [{at}]\n", t.label, t.fired));
            }
        }
        top(&mut out, "locations (steps while resident)", &self.locations);
        out.push_str(&format!(
            "\ndelay solves : {}\nbatches      : {} ({} scalar drains)\n",
            self.delay_solves, self.batches, self.scalar_drains
        ));
        if !self.lane_occupancy.is_empty() {
            out.push_str("lane occupancy (steps at N active lanes):\n");
            let max = self.lane_occupancy.iter().map(|&(_, s)| s).max().unwrap_or(0);
            for &(lanes, steps) in &self.lane_occupancy {
                out.push_str(&format!("  {lanes:>3} lanes {steps:>12}  {}\n", bar(steps, max)));
            }
        }
        out
    }
}

fn sort_entries(v: &mut [ProfileEntry]) {
    v.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.label.cmp(&b.label)));
}

fn is_sorted(v: &[ProfileEntry]) -> bool {
    v.windows(2).all(|w| w[0].count >= w[1].count)
}

fn req_str(v: &Json, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("{ctx}: missing string `{key}`"))
}

fn req_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or(format!("{ctx}: missing integer `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ProfileShape {
        ProfileShape { n_ops: 3, trans_offsets: vec![0, 2, 3], loc_offsets: vec![0, 2, 4] }
    }

    fn labels() -> ProfileLabels {
        ProfileLabels {
            op_names: vec!["a".into(), "b".into(), "c".into()],
            transitions: vec![
                ("p: x -> y".into(), Some("m.slim:3:5".into())),
                ("p: y -> x".into(), None),
                ("q: u -> v".into(), None),
            ],
            locations: vec!["p.x".into(), "p.y".into(), "q.u".into(), "q.v".into()],
        }
    }

    #[test]
    fn digrams_reset_at_program_boundaries() {
        let mut p = KernelProfile::new(shape());
        p.eval_begin();
        p.eval_op(0);
        p.eval_op(1);
        p.eval_begin();
        p.eval_op(2); // no digram 1 -> 2 across the boundary
        assert_eq!(p.op_counts(), &[1, 1, 1]);
        assert_eq!(p.digram_counts()[1], 1); // 0 -> 1
        assert_eq!(p.digram_counts()[3 + 2], 0); // 1 -> 2 never counted
        assert_eq!(p.total_ops(), 3);
    }

    #[test]
    fn merge_is_elementwise_and_order_insensitive_for_sums() {
        let mut a = KernelProfile::new(shape());
        let mut b = KernelProfile::new(shape());
        a.eval_begin();
        a.eval_op(0);
        a.guard_eval(0, 1, true);
        a.fired(1, 0);
        b.eval_begin();
        b.eval_op(0);
        b.eval_op(0);
        b.guard_eval(0, 1, false);
        b.delay_solve();
        b.batch(&[5, 2, 2]);
        a.merge(&b);
        assert_eq!(a.op_counts()[0], 3);
        assert_eq!(a.guard_counts(1), (2, 1));
        assert_eq!(a.fired_count(2), 1);
        assert_eq!(a.delay_solve_count(), 1);
        let (batches, drains, hist) = a.batch_counts();
        assert_eq!((batches, drains), (1, 0));
        // 3 lanes for 2 steps, 2 lanes for 0 steps, 1 lane for 3 steps.
        assert_eq!(&hist[1..], &[3, 0, 2]);
    }

    #[test]
    fn report_sorts_drops_zeros_and_roundtrips() {
        let mut p = KernelProfile::new(shape());
        p.eval_begin();
        for op in [0, 1, 1, 2, 1] {
            p.eval_op(op);
        }
        p.guard_eval(0, 0, true);
        p.loc_step(0, 1);
        p.fired(0, 0);
        p.batch(&[4]);
        let r = ProfileReport::from_profile(&p, &labels(), "toy", 7, 1);
        assert_eq!(r.ops[0].label, "b");
        assert_eq!(r.ops.len(), 3);
        assert_eq!(r.guards.len(), 1);
        assert_eq!(r.guards[0].span.as_deref(), Some("m.slim:3:5"));
        assert_eq!(r.transitions.len(), 1);
        assert_eq!(r.locations, vec![ProfileEntry { label: "p.y".into(), count: 1 }]);
        assert_eq!(r.scalar_drains, 1);
        assert_eq!(r.validate(), Vec::<String>::new());
        let text = r.to_json().to_pretty();
        let back = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // Determinism at the byte level: serializing twice is identical.
        assert_eq!(text, back.to_json().to_pretty());
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut p = KernelProfile::new(shape());
        p.eval_begin();
        p.eval_op(0);
        let mut r = ProfileReport::from_profile(&p, &labels(), "toy", 0, 1);
        r.total_ops = 99;
        r.guards.push(GuardEntry { label: "g".into(), span: None, evals: 1, enabled: 2 });
        let problems = r.validate();
        assert!(problems.iter().any(|s| s.contains("total_ops")), "{problems:?}");
        assert!(problems.iter().any(|s| s.contains("exceeds eval count")), "{problems:?}");
    }

    #[test]
    fn phase_profiler_nests_and_renders() {
        let mut p = PhaseProfiler::new();
        p.begin("analyze");
        p.record("load", Duration::from_millis(2));
        p.time("simulate", || std::thread::sleep(Duration::from_millis(1)));
        p.end();
        let spans = p.spans();
        assert_eq!(spans[0].1, "analyze");
        assert_eq!(
            spans.iter().map(|s| s.1).collect::<Vec<_>>(),
            vec!["analyze", "load", "simulate"]
        );
        assert_eq!(spans[1].0, 1);
        let text = p.render();
        assert!(text.contains("analyze"), "{text}");
        assert!(text.contains("simulate"), "{text}");
    }

    #[test]
    fn noop_profile_hooks_compile_to_nothing() {
        let mut n = NoopProfile;
        n.eval_begin();
        n.eval_op(3);
        n.guard_eval(0, 0, true);
        n.fired(0, 0);
        n.loc_step(0, 0);
        n.delay_solve();
        n.batch(&[1, 2]);
        const { assert!(!NoopProfile::ENABLED) }
    }

    #[test]
    fn render_text_shows_heatmap_sections() {
        let mut p = KernelProfile::new(shape());
        p.eval_begin();
        for op in [0, 1, 0, 1] {
            p.eval_op(op);
        }
        p.guard_eval(0, 0, true);
        p.batch(&[3, 1]);
        let r = ProfileReport::from_profile(&p, &labels(), "toy", 1, 2);
        let text = r.render_text(5);
        assert!(text.contains("opcodes"), "{text}");
        assert!(text.contains("superinstruction"), "{text}");
        assert!(text.contains("lane occupancy"), "{text}");
    }
}
