//! # slim-obs
//!
//! The observability layer of the `slimsim` reproduction: everything the
//! paper's evaluation (§IV, Table I) needs to *measure* the simulator —
//! samples drawn, wall time per phase, per-worker throughput — without
//! perturbing what it measures.
//!
//! The crate is dependency-free and deliberately small:
//!
//! * [`metrics`] — lock-cheap atomic [`metrics::Counter`]s and
//!   log-bucketed [`metrics::Histogram`]s behind a
//!   [`metrics::MetricsRegistry`]. Recording is a relaxed atomic add;
//!   when no registry is installed the instrumented code pays one
//!   predictable branch (`Option::None`) — the "no-op recorder".
//! * [`span`] — wall-clock span timers for pipeline phases
//!   (parse/lower/instantiate/simulate/estimate).
//! * [`json`] — a minimal hand-rolled JSON value, writer and parser
//!   (RFC 8259 string escaping), so reports stay machine-readable
//!   without external dependencies.
//! * [`report`] — the [`report::RunReport`] schema: one JSON document
//!   per analysis run (config, seed, estimate, path stats, per-worker
//!   metrics, phase timings, host info), with a structural validator.
//! * [`profile`] — the kernel profiler: [`profile::ProfileHooks`]
//!   compile-time hooks (the [`profile::NoopProfile`] instantiation
//!   monomorphizes to nothing), [`profile::KernelProfile`] id-indexed
//!   counters with deterministic wrapping-sum merges, the hierarchical
//!   [`profile::PhaseProfiler`] span tree, and the versioned
//!   [`profile::ProfileReport`] JSON document with its text heat-map
//!   renderer (see `docs/profiling.md`).
//! * [`bench`] — the `BENCH_*.json` emitter used by the bench harness.
//! * [`progress`] — a throttled live progress line (completed/target,
//!   paths/sec, current estimate, ETA when the sample target is known
//!   a priori).
//! * [`trace`] — structured per-path trace events ([`trace::TraceEvent`])
//!   with in-memory, ring-buffer and JSON-lines sinks, and the codec the
//!   replay verifier consumes (see `docs/tracing.md`).
//!
//! ## Example
//!
//! ```
//! use slim_obs::metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! let paths = reg.counter("paths_total");
//! let steps = reg.histogram("steps_per_path");
//! // ... shared by reference across worker threads ...
//! reg.add(paths, 1);
//! reg.record(steps, 17);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["paths_total"], 1);
//! assert_eq!(snap.histograms["steps_per_path"].count, 1);
//! ```

#![forbid(unsafe_code)]

pub mod bench;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod report;
pub mod span;
pub mod trace;

pub use bench::{BenchEntry, BenchReport};
pub use json::Json;
pub use metrics::{Counter, CounterId, Histogram, HistogramId, MetricsRegistry, MetricsSnapshot};
pub use profile::{
    GuardEntry, KernelProfile, NoopProfile, PhaseProfiler, ProfileEntry, ProfileHooks,
    ProfileLabels, ProfileReport, ProfileShape, TransitionEntry, PROFILE_KIND,
    PROFILE_SCHEMA_VERSION,
};
pub use progress::ProgressMeter;
pub use report::{
    ConfigInfo, ConvergencePoint, EstimateInfo, HostInfo, ModelInfo, PathInfo, PropertyInfo,
    RunReport, WorkerInfo, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use span::PhaseClock;
pub use trace::{
    events_to_csv, events_to_json_lines, parse_trace, JsonLinesSink, MemorySink, RingBufferSink,
    TraceEvent, TraceSink, TRACE_FORMAT_VERSION,
};
