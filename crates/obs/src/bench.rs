//! Machine-readable bench reports (`BENCH_<suite>.json`).
//!
//! The bench harness prints human tables; this module gives those runs
//! a stable machine-readable artifact so performance can be tracked
//! across commits. One file per suite, a flat list of named scalar
//! entries — deliberately schema-light so any plotting script can
//! consume it.

use crate::json::Json;
use crate::report::HostInfo;

/// One measured scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Dotted metric name, e.g. `sensor_filter.paths_per_sec`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit, e.g. `paths/s`, `ms`, `samples`.
    pub unit: String,
}

/// A suite of bench entries plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name; the artifact is written as `BENCH_<suite>.json`.
    pub suite: String,
    /// Version of the emitting tool.
    pub tool_version: String,
    /// Host the suite ran on.
    pub host: HostInfo,
    /// Measured entries.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Creates an empty report for `suite` on the current host.
    pub fn new(suite: impl Into<String>) -> BenchReport {
        BenchReport {
            suite: suite.into(),
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            host: HostInfo::current(),
            entries: Vec::new(),
        }
    }

    /// Appends one measurement.
    pub fn push(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.entries.push(BenchEntry { name: name.into(), value, unit: unit.into() });
    }

    /// The canonical artifact filename for this suite.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Serializes to the JSON document format.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::Num(1.0)),
            ("suite", Json::str(&self.suite)),
            ("tool_version", Json::str(&self.tool_version)),
            ("host", self.host.to_json()),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("name", Json::str(&e.name)),
                                ("value", Json::Num(e.value)),
                                ("unit", Json::str(&e.unit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<BenchReport, String> {
        let suite = v
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("bench report: missing string `suite`")?
            .to_string();
        let tool_version = v
            .get("tool_version")
            .and_then(Json::as_str)
            .ok_or("bench report: missing string `tool_version`")?
            .to_string();
        let host = HostInfo::from_json(v.get("host").ok_or("bench report: missing `host`")?)?;
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("bench report: missing array `entries`")?
            .iter()
            .map(|e| {
                Ok(BenchEntry {
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("bench entry: missing string `name`")?
                        .to_string(),
                    value: e
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or("bench entry: missing number `value`")?,
                    unit: e
                        .get("unit")
                        .and_then(Json::as_str)
                        .ok_or("bench entry: missing string `unit`")?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport { suite, tool_version, host, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut r = BenchReport::new("simulator");
        r.push("sensor_filter.paths_per_sec", 12345.5, "paths/s");
        r.push("sensor_filter.wall_ms", 81.0, "ms");
        let text = r.to_json().to_pretty();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(r.filename(), "BENCH_simulator.json");
    }

    #[test]
    fn rejects_missing_fields() {
        let v = Json::parse(r#"{"suite": "x"}"#).unwrap();
        assert!(BenchReport::from_json(&v).is_err());
    }
}
