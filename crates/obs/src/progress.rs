//! Throttled live progress line for long analyses.
//!
//! The meter is driven by the runner's completion callback and renders
//! at most once per `min_interval`, so progress output cannot become a
//! bottleneck (or perturb timings) on fast models.

use std::time::{Duration, Instant};

/// Renders `completed/target` progress lines, rate-limited.
#[derive(Debug)]
pub struct ProgressMeter {
    started: Instant,
    last_render: Option<Instant>,
    min_interval: Duration,
}

impl ProgressMeter {
    /// Creates a meter that renders at most once per `min_interval`.
    pub fn new(min_interval: Duration) -> ProgressMeter {
        ProgressMeter { started: Instant::now(), last_render: None, min_interval }
    }

    /// Reports progress; returns a rendered line when enough time has
    /// passed since the previous render, else `None`.
    ///
    /// `target` is the a-priori sample target when known (Chernoff
    /// fixed-sample runs); sequential rules pass `None` and the line
    /// omits percentage and ETA. `estimate` is the current
    /// `(p̂, half-width)` pair from the estimator when available; it is
    /// appended as `p̂≈0.632 ±0.010`.
    pub fn tick(
        &mut self,
        completed: u64,
        target: Option<u64>,
        estimate: Option<(f64, f64)>,
    ) -> Option<String> {
        let now = Instant::now();
        if let Some(last) = self.last_render {
            if now.duration_since(last) < self.min_interval {
                return None;
            }
        }
        self.last_render = Some(now);
        Some(self.render(completed, target, estimate, now.duration_since(self.started)))
    }

    /// Renders a final line regardless of throttling (for run end).
    pub fn finish(
        &self,
        completed: u64,
        target: Option<u64>,
        estimate: Option<(f64, f64)>,
    ) -> String {
        self.render(completed, target, estimate, self.started.elapsed())
    }

    fn render(
        &self,
        completed: u64,
        target: Option<u64>,
        estimate: Option<(f64, f64)>,
        elapsed: Duration,
    ) -> String {
        let secs = elapsed.as_secs_f64();
        let rate = if secs > 0.0 { completed as f64 / secs } else { 0.0 };
        let phat = match estimate {
            Some((mean, hw)) if hw.is_finite() => format!(" · p̂≈{mean:.3} ±{hw:.3}"),
            Some((mean, _)) => format!(" · p̂≈{mean:.3}"),
            None => String::new(),
        };
        match target {
            Some(t) if t > 0 => {
                let pct = 100.0 * completed as f64 / t as f64;
                let eta = if rate > 0.0 && completed < t {
                    format!(" · ETA {:.0}s", (t - completed) as f64 / rate)
                } else {
                    String::new()
                };
                format!("{completed}/{t} paths ({pct:.1}%) · {rate:.0} paths/s{phat}{eta}")
            }
            _ => format!("{completed} paths · {rate:.0} paths/s{phat}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_renders_then_throttles() {
        let mut m = ProgressMeter::new(Duration::from_secs(3600));
        assert!(m.tick(10, Some(100), None).is_some());
        assert!(m.tick(20, Some(100), None).is_none());
    }

    #[test]
    fn renders_target_percentage_and_eta() {
        let mut m = ProgressMeter::new(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(5));
        let line = m.tick(50, Some(200), None).unwrap();
        assert!(line.contains("50/200"), "{line}");
        assert!(line.contains("25.0%"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn unknown_target_omits_percentage() {
        let mut m = ProgressMeter::new(Duration::ZERO);
        let line = m.tick(37, None, None).unwrap();
        assert!(line.starts_with("37 paths"), "{line}");
        assert!(!line.contains('%'), "{line}");
    }

    #[test]
    fn renders_current_estimate_with_half_width() {
        let mut m = ProgressMeter::new(Duration::ZERO);
        let line = m.tick(100, Some(200), Some((0.6321, 0.0104))).unwrap();
        assert!(line.contains("p̂≈0.632"), "{line}");
        assert!(line.contains("±0.010"), "{line}");
        // Sequential rules (no target) still show the estimate.
        let line = m.finish(100, None, Some((0.25, f64::INFINITY)));
        assert!(line.contains("p̂≈0.250") && !line.contains('±'), "{line}");
    }

    #[test]
    fn finish_ignores_throttle() {
        let mut m = ProgressMeter::new(Duration::from_secs(3600));
        let _ = m.tick(1, Some(10), None);
        let line = m.finish(10, Some(10), None);
        assert!(line.contains("10/10"), "{line}");
        assert!(!line.contains("ETA"), "completed runs have no ETA: {line}");
    }
}
