//! The run report: one JSON document per analysis run.
//!
//! A [`RunReport`] captures everything needed to reproduce and audit a
//! statistical run: the model and property, the full statistical
//! configuration (including seed and worker count, the reproducibility
//! key), the estimate, per-verdict path counts, phase wall times,
//! per-worker throughput, and the raw metrics snapshot. The schema is
//! versioned and has a structural [`RunReport::validate`] so CI can
//! reject malformed artifacts.
//!
//! Schema history: **v2** added the `convergence` array (per-checkpoint
//! estimate mean and CI half-width, see [`ConvergencePoint`]); **v3**
//! added the optional `pre_verdict` string (`unknown`, `unreachable`,
//! `deadline-unreachable`, or `initially-satisfied`) recording whether
//! the static fixpoint analysis decided the property before sampling —
//! decisive verdicts come with
//! `estimate.samples == 0`; **v4** added the optional `profile` object,
//! an embedded kernel-profile document (see
//! [`crate::profile::ProfileReport`]) present when the run was profiled.
//! The parser still accepts v1/v2/v3 documents, which simply have no
//! convergence series / pre-verdict / profile.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Schema version written into every report.
pub const SCHEMA_VERSION: u64 = 4;

/// Oldest schema version the parser and validator still accept.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One point of the estimator convergence series: the running estimate
/// after `samples` consumed samples. Checkpoints are taken at
/// deterministic sample counts, so the series is identical for a fixed
/// `(seed, workers)` pair and can be plotted straight from the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// Samples consumed when the checkpoint was taken.
    pub samples: u64,
    /// Running estimate `p̂` at the checkpoint.
    pub mean: f64,
    /// Hoeffding CI half-width at the checkpoint (at the run's δ).
    pub half_width: f64,
}

impl ConvergencePoint {
    /// Serializes to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("samples", Json::Num(self.samples as f64)),
            ("mean", Json::Num(self.mean)),
            ("half_width", Json::Num(self.half_width)),
        ])
    }

    /// Parses from JSON.
    ///
    /// # Errors
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<ConvergencePoint, String> {
        Ok(ConvergencePoint {
            samples: req_u64(v, "samples", "convergence")?,
            mean: req_f64(v, "mean", "convergence")?,
            half_width: req_f64(v, "half_width", "convergence")?,
        })
    }
}

/// Host provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available logical CPUs.
    pub cpus: u64,
}

impl HostInfo {
    /// Captures the current host.
    pub fn current() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("os", Json::str(&self.os)),
            ("arch", Json::str(&self.arch)),
            ("cpus", Json::Num(self.cpus as f64)),
        ])
    }

    /// Parses from JSON.
    ///
    /// # Errors
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<HostInfo, String> {
        Ok(HostInfo {
            os: req_str(v, "os", "host")?,
            arch: req_str(v, "arch", "host")?,
            cpus: req_u64(v, "cpus", "host")?,
        })
    }
}

/// What was analyzed.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Model name (builtin name or file path).
    pub name: String,
    /// Number of automata in the network.
    pub automata: u64,
    /// Number of variables in the network.
    pub variables: u64,
}

/// The property that was checked.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyInfo {
    /// Property kind, e.g. `timed-reachability`.
    pub kind: String,
    /// Time bound `T`.
    pub bound: f64,
    /// Goal description, e.g. `var monitor.system_failed`.
    pub goal: String,
}

/// The statistical configuration of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigInfo {
    /// Half-width ε of the confidence interval.
    pub epsilon: f64,
    /// Error probability δ.
    pub delta: f64,
    /// Resolution strategy name.
    pub strategy: String,
    /// Sample-size rule name.
    pub generator: String,
    /// Deadlock policy name.
    pub deadlock_policy: String,
    /// Per-path step limit.
    pub max_steps: u64,
    /// RNG seed (the reproducibility key, with `workers`).
    pub seed: u64,
    /// Worker thread count.
    pub workers: u64,
}

/// The resulting estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateInfo {
    /// Point estimate of the reachability probability.
    pub mean: f64,
    /// Half-width ε.
    pub epsilon: f64,
    /// Confidence `1 − δ`.
    pub confidence: f64,
    /// Total samples drawn.
    pub samples: u64,
    /// Successful samples.
    pub successes: u64,
}

/// Per-verdict path accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathInfo {
    /// Paths that reached the goal within the bound.
    pub satisfied: u64,
    /// Paths that exhausted the time bound.
    pub time_bound_exceeded: u64,
    /// Paths that violated a hold condition.
    pub hold_violated: u64,
    /// Paths that deadlocked.
    pub deadlock: u64,
    /// Paths that timelocked.
    pub timelock: u64,
    /// Paths that hit the step limit.
    pub step_limit: u64,
    /// Total paths (sum of the above).
    pub total: u64,
    /// Total simulation steps across all paths.
    pub total_steps: u64,
    /// Mean steps per path.
    pub mean_steps: f64,
    /// Mean time-to-goal over satisfied paths, when any.
    pub mean_satisfaction_time: Option<f64>,
    /// Earliest time-to-goal over satisfied paths, when any.
    pub min_satisfaction_time: Option<f64>,
    /// Latest time-to-goal over satisfied paths, when any.
    pub max_satisfaction_time: Option<f64>,
}

/// One worker's contribution to the run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerInfo {
    /// Worker index (0-based).
    pub worker: u64,
    /// Paths this worker produced.
    pub paths: u64,
    /// Satisfied paths this worker produced.
    pub satisfied: u64,
    /// Time this worker spent simulating, in milliseconds.
    pub busy_ms: f64,
    /// Paths per second of busy time.
    pub paths_per_sec: f64,
}

/// The full run report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Emitting tool name.
    pub tool_name: String,
    /// Emitting tool version.
    pub tool_version: String,
    /// Host provenance.
    pub host: HostInfo,
    /// What was analyzed.
    pub model: ModelInfo,
    /// The checked property.
    pub property: PropertyInfo,
    /// Statistical configuration.
    pub config: ConfigInfo,
    /// Resulting estimate.
    pub estimate: EstimateInfo,
    /// Static pre-verdict (`unknown`, `unreachable`,
    /// `deadline-unreachable`, `initially-satisfied`; schema v3). `None`
    /// in pre-v3 documents.
    pub pre_verdict: Option<String>,
    /// Estimator convergence series (schema v2; empty in v1 documents).
    pub convergence: Vec<ConvergencePoint>,
    /// Per-verdict path accounting.
    pub paths: PathInfo,
    /// End-to-end wall time in milliseconds.
    pub wall_ms: f64,
    /// Approximate peak memory attributable to the run, in bytes.
    pub approx_memory_bytes: u64,
    /// Phase wall times in milliseconds, in pipeline order.
    pub phases: Vec<(String, f64)>,
    /// Per-worker throughput.
    pub workers: Vec<WorkerInfo>,
    /// Raw metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Embedded kernel profile (schema v4). `None` unless the run was
    /// profiled, and in pre-v4 documents.
    pub profile: Option<crate::profile::ProfileReport>,
}

impl RunReport {
    /// Serializes the report to its JSON document.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::obj([
            ("schema_version", Json::Num(self.schema_version as f64)),
            (
                "tool",
                Json::obj([
                    ("name", Json::str(&self.tool_name)),
                    ("version", Json::str(&self.tool_version)),
                ]),
            ),
            ("host", self.host.to_json()),
            (
                "model",
                Json::obj([
                    ("name", Json::str(&self.model.name)),
                    ("automata", Json::Num(self.model.automata as f64)),
                    ("variables", Json::Num(self.model.variables as f64)),
                ]),
            ),
            (
                "property",
                Json::obj([
                    ("kind", Json::str(&self.property.kind)),
                    ("bound", Json::Num(self.property.bound)),
                    ("goal", Json::str(&self.property.goal)),
                ]),
            ),
            (
                "config",
                Json::obj([
                    ("epsilon", Json::Num(self.config.epsilon)),
                    ("delta", Json::Num(self.config.delta)),
                    ("strategy", Json::str(&self.config.strategy)),
                    ("generator", Json::str(&self.config.generator)),
                    ("deadlock_policy", Json::str(&self.config.deadlock_policy)),
                    ("max_steps", Json::Num(self.config.max_steps as f64)),
                    ("seed", Json::Num(self.config.seed as f64)),
                    ("workers", Json::Num(self.config.workers as f64)),
                ]),
            ),
            (
                "estimate",
                Json::obj([
                    ("mean", Json::Num(self.estimate.mean)),
                    ("epsilon", Json::Num(self.estimate.epsilon)),
                    ("confidence", Json::Num(self.estimate.confidence)),
                    ("samples", Json::Num(self.estimate.samples as f64)),
                    ("successes", Json::Num(self.estimate.successes as f64)),
                ]),
            ),
            ("pre_verdict", self.pre_verdict.as_deref().map(Json::str).unwrap_or(Json::Null)),
            ("convergence", Json::Arr(self.convergence.iter().map(|c| c.to_json()).collect())),
            (
                "paths",
                Json::obj([
                    ("satisfied", Json::Num(self.paths.satisfied as f64)),
                    ("time_bound_exceeded", Json::Num(self.paths.time_bound_exceeded as f64)),
                    ("hold_violated", Json::Num(self.paths.hold_violated as f64)),
                    ("deadlock", Json::Num(self.paths.deadlock as f64)),
                    ("timelock", Json::Num(self.paths.timelock as f64)),
                    ("step_limit", Json::Num(self.paths.step_limit as f64)),
                    ("total", Json::Num(self.paths.total as f64)),
                    ("total_steps", Json::Num(self.paths.total_steps as f64)),
                    ("mean_steps", Json::Num(self.paths.mean_steps)),
                    ("mean_satisfaction_time", opt(self.paths.mean_satisfaction_time)),
                    ("min_satisfaction_time", opt(self.paths.min_satisfaction_time)),
                    ("max_satisfaction_time", opt(self.paths.max_satisfaction_time)),
                ]),
            ),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("approx_memory_bytes", Json::Num(self.approx_memory_bytes as f64)),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(name, ms)| {
                            Json::obj([("name", Json::str(name)), ("ms", Json::Num(*ms))])
                        })
                        .collect(),
                ),
            ),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("worker", Json::Num(w.worker as f64)),
                                ("paths", Json::Num(w.paths as f64)),
                                ("satisfied", Json::Num(w.satisfied as f64)),
                                ("busy_ms", Json::Num(w.busy_ms)),
                                ("paths_per_sec", Json::Num(w.paths_per_sec)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", metrics_to_json(&self.metrics)),
            (
                "profile",
                self.profile
                    .as_ref()
                    .map(crate::profile::ProfileReport::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Parses a report from its JSON document.
    ///
    /// # Errors
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<RunReport, String> {
        let tool = v.get("tool").ok_or("report: missing `tool`")?;
        let model = v.get("model").ok_or("report: missing `model`")?;
        let property = v.get("property").ok_or("report: missing `property`")?;
        let config = v.get("config").ok_or("report: missing `config`")?;
        let estimate = v.get("estimate").ok_or("report: missing `estimate`")?;
        let paths = v.get("paths").ok_or("report: missing `paths`")?;
        let opt = |v: &Json, key: &str| -> Result<Option<f64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => {
                    x.as_f64().map(Some).ok_or(format!("paths: `{key}` must be number or null"))
                }
            }
        };
        Ok(RunReport {
            schema_version: req_u64(v, "schema_version", "report")?,
            tool_name: req_str(tool, "name", "tool")?,
            tool_version: req_str(tool, "version", "tool")?,
            host: HostInfo::from_json(v.get("host").ok_or("report: missing `host`")?)?,
            model: ModelInfo {
                name: req_str(model, "name", "model")?,
                automata: req_u64(model, "automata", "model")?,
                variables: req_u64(model, "variables", "model")?,
            },
            property: PropertyInfo {
                kind: req_str(property, "kind", "property")?,
                bound: req_f64(property, "bound", "property")?,
                goal: req_str(property, "goal", "property")?,
            },
            config: ConfigInfo {
                epsilon: req_f64(config, "epsilon", "config")?,
                delta: req_f64(config, "delta", "config")?,
                strategy: req_str(config, "strategy", "config")?,
                generator: req_str(config, "generator", "config")?,
                deadlock_policy: req_str(config, "deadlock_policy", "config")?,
                max_steps: req_u64(config, "max_steps", "config")?,
                seed: req_u64(config, "seed", "config")?,
                workers: req_u64(config, "workers", "config")?,
            },
            estimate: EstimateInfo {
                mean: req_f64(estimate, "mean", "estimate")?,
                epsilon: req_f64(estimate, "epsilon", "estimate")?,
                confidence: req_f64(estimate, "confidence", "estimate")?,
                samples: req_u64(estimate, "samples", "estimate")?,
                successes: req_u64(estimate, "successes", "estimate")?,
            },
            // Absent in pre-v3 documents.
            pre_verdict: match v.get("pre_verdict") {
                None | Some(Json::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .map(str::to_string)
                        .ok_or("report: `pre_verdict` must be string or null")?,
                ),
            },
            // Absent in v1 documents — parsed as an empty series.
            convergence: match v.get("convergence") {
                None | Some(Json::Null) => Vec::new(),
                Some(c) => c
                    .as_arr()
                    .ok_or("report: `convergence` must be an array")?
                    .iter()
                    .map(ConvergencePoint::from_json)
                    .collect::<Result<Vec<_>, String>>()?,
            },
            paths: PathInfo {
                satisfied: req_u64(paths, "satisfied", "paths")?,
                time_bound_exceeded: req_u64(paths, "time_bound_exceeded", "paths")?,
                hold_violated: req_u64(paths, "hold_violated", "paths")?,
                deadlock: req_u64(paths, "deadlock", "paths")?,
                timelock: req_u64(paths, "timelock", "paths")?,
                step_limit: req_u64(paths, "step_limit", "paths")?,
                total: req_u64(paths, "total", "paths")?,
                total_steps: req_u64(paths, "total_steps", "paths")?,
                mean_steps: req_f64(paths, "mean_steps", "paths")?,
                mean_satisfaction_time: opt(paths, "mean_satisfaction_time")?,
                min_satisfaction_time: opt(paths, "min_satisfaction_time")?,
                max_satisfaction_time: opt(paths, "max_satisfaction_time")?,
            },
            wall_ms: req_f64(v, "wall_ms", "report")?,
            approx_memory_bytes: req_u64(v, "approx_memory_bytes", "report")?,
            phases: v
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or("report: missing array `phases`")?
                .iter()
                .map(|p| Ok((req_str(p, "name", "phase")?, req_f64(p, "ms", "phase")?)))
                .collect::<Result<Vec<_>, String>>()?,
            workers: v
                .get("workers")
                .and_then(Json::as_arr)
                .ok_or("report: missing array `workers`")?
                .iter()
                .map(|w| {
                    Ok(WorkerInfo {
                        worker: req_u64(w, "worker", "worker")?,
                        paths: req_u64(w, "paths", "worker")?,
                        satisfied: req_u64(w, "satisfied", "worker")?,
                        busy_ms: req_f64(w, "busy_ms", "worker")?,
                        paths_per_sec: req_f64(w, "paths_per_sec", "worker")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            metrics: metrics_from_json(v.get("metrics").ok_or("report: missing `metrics`")?)?,
            // Absent in pre-v4 documents, and in unprofiled runs.
            profile: match v.get("profile") {
                None | Some(Json::Null) => None,
                Some(p) => Some(crate::profile::ProfileReport::from_json(p)?),
            },
        })
    }

    /// Structural validation: returns all problems found (empty when the
    /// report is internally consistent). Used by `slimsim report` and CI.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&self.schema_version) {
            problems.push(format!(
                "schema_version is {} but this tool expects {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        let verdict_sum = self.paths.satisfied
            + self.paths.time_bound_exceeded
            + self.paths.hold_violated
            + self.paths.deadlock
            + self.paths.timelock
            + self.paths.step_limit;
        if verdict_sum != self.paths.total {
            problems.push(format!(
                "verdict counts sum to {verdict_sum} but paths.total is {}",
                self.paths.total
            ));
        }
        if self.estimate.samples < self.estimate.successes {
            problems.push(format!(
                "estimate.successes ({}) exceeds estimate.samples ({})",
                self.estimate.successes, self.estimate.samples
            ));
        }
        if self.estimate.samples != self.paths.total {
            problems.push(format!(
                "estimate.samples ({}) disagrees with paths.total ({})",
                self.estimate.samples, self.paths.total
            ));
        }
        if !(0.0..=1.0).contains(&self.estimate.mean) {
            problems.push(format!("estimate.mean {} outside [0, 1]", self.estimate.mean));
        }
        if self.config.workers == 0 {
            problems.push("config.workers must be at least 1".to_string());
        }
        if !self.workers.is_empty() {
            if self.workers.len() as u64 != self.config.workers {
                problems.push(format!(
                    "workers array has {} entries but config.workers is {}",
                    self.workers.len(),
                    self.config.workers
                ));
            }
            let worker_paths: u64 = self.workers.iter().map(|w| w.paths).sum();
            if worker_paths != self.paths.total {
                problems.push(format!(
                    "per-worker paths sum to {worker_paths} but paths.total is {}",
                    self.paths.total
                ));
            }
            let worker_sat: u64 = self.workers.iter().map(|w| w.satisfied).sum();
            if worker_sat != self.paths.satisfied {
                problems.push(format!(
                    "per-worker satisfied sum to {worker_sat} but paths.satisfied is {}",
                    self.paths.satisfied
                ));
            }
        }
        match self.pre_verdict.as_deref() {
            None | Some("unknown") => {}
            Some(v @ ("unreachable" | "deadline-unreachable" | "initially-satisfied")) => {
                if self.estimate.samples != 0 {
                    problems.push(format!(
                        "pre_verdict `{v}` but estimate.samples is {} (expected 0)",
                        self.estimate.samples
                    ));
                }
                let exact = if v == "initially-satisfied" { 1.0 } else { 0.0 };
                if self.estimate.mean != exact {
                    problems.push(format!(
                        "pre_verdict `{v}` but estimate.mean is {} (expected {exact})",
                        self.estimate.mean
                    ));
                }
            }
            Some(other) => problems.push(format!("unknown pre_verdict `{other}`")),
        }
        if self.phases.is_empty() {
            problems.push("phases is empty; expected at least `simulate`".to_string());
        }
        for (name, ms) in &self.phases {
            if !ms.is_finite() || *ms < 0.0 {
                problems.push(format!("phase `{name}` has invalid duration {ms}"));
            }
        }
        let mut prev_samples = 0u64;
        for (i, c) in self.convergence.iter().enumerate() {
            if c.samples <= prev_samples && i > 0 {
                problems.push(format!(
                    "convergence[{i}].samples ({}) not strictly increasing",
                    c.samples
                ));
            }
            prev_samples = c.samples;
            if !(0.0..=1.0).contains(&c.mean) {
                problems.push(format!("convergence[{i}].mean {} outside [0, 1]", c.mean));
            }
            if !c.half_width.is_finite() || c.half_width < 0.0 {
                problems.push(format!("convergence[{i}].half_width {} invalid", c.half_width));
            }
        }
        if let (Some(last), true) = (self.convergence.last(), self.schema_version >= 2) {
            if last.samples > self.estimate.samples {
                problems.push(format!(
                    "convergence ends at {} samples, past estimate.samples ({})",
                    last.samples, self.estimate.samples
                ));
            }
        }
        if let Some(profile) = &self.profile {
            problems.extend(profile.validate().into_iter().map(|p| format!("profile: {p}")));
        }
        problems
    }
}

fn req_str(v: &Json, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("{ctx}: missing string `{key}`"))
}

fn req_f64(v: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or(format!("{ctx}: missing number `{key}`"))
}

fn req_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or(format!("{ctx}: missing integer `{key}`"))
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::Obj(m.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect()),
        ),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj([
                                ("count", Json::Num(h.count as f64)),
                                ("sum", Json::Num(h.sum as f64)),
                                ("min", Json::Num(h.min as f64)),
                                ("max", Json::Num(h.max as f64)),
                                ("mean", Json::Num(h.mean)),
                                ("p50", Json::Num(h.p50)),
                                ("p90", Json::Num(h.p90)),
                                ("p99", Json::Num(h.p99)),
                                (
                                    "buckets",
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(lo, hi, n)| {
                                                Json::Arr(vec![
                                                    Json::Num(lo as f64),
                                                    Json::Num(hi as f64),
                                                    Json::Num(n as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn metrics_from_json(v: &Json) -> Result<MetricsSnapshot, String> {
    let counters = match v.get("counters") {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, n)| {
                n.as_u64().map(|n| (k.clone(), n)).ok_or(format!("counter `{k}` not an integer"))
            })
            .collect::<Result<BTreeMap<_, _>, String>>()?,
        _ => return Err("metrics: missing object `counters`".to_string()),
    };
    let histograms = match v.get("histograms") {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, h)| {
                let ctx = format!("histogram `{k}`");
                let buckets = h
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or(format!("{ctx}: missing array `buckets`"))?
                    .iter()
                    .map(|b| {
                        let b = b
                            .as_arr()
                            .filter(|b| b.len() == 3)
                            .ok_or(format!("{ctx}: bucket must be a [lo, hi, count] triple"))?;
                        let lo = b[0].as_u64().ok_or(format!("{ctx}: bucket lo"))?;
                        // u64::MAX is not exactly representable as f64;
                        // snap the top bucket bound back.
                        let hi = b[1].as_u64().unwrap_or(u64::MAX);
                        let n = b[2].as_u64().ok_or(format!("{ctx}: bucket count"))?;
                        Ok((lo, hi, n))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok((
                    k.clone(),
                    HistogramSnapshot {
                        count: req_u64(h, "count", &ctx)?,
                        sum: req_u64(h, "sum", &ctx)?,
                        min: req_u64(h, "min", &ctx)?,
                        max: req_u64(h, "max", &ctx)?,
                        mean: req_f64(h, "mean", &ctx)?,
                        p50: req_f64(h, "p50", &ctx)?,
                        p90: req_f64(h, "p90", &ctx)?,
                        p99: req_f64(h, "p99", &ctx)?,
                        buckets,
                    },
                ))
            })
            .collect::<Result<BTreeMap<_, _>, String>>()?,
        _ => return Err("metrics: missing object `histograms`".to_string()),
    };
    Ok(MetricsSnapshot { counters, histograms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_report() -> RunReport {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("sim.steps_total");
        let h = reg.histogram("sim.steps_per_path");
        reg.add(c, 1234);
        for v in [3u64, 5, 9, 200] {
            reg.record(h, v);
        }
        RunReport {
            schema_version: SCHEMA_VERSION,
            tool_name: "slimsim".to_string(),
            tool_version: "0.1.0".to_string(),
            host: HostInfo::current(),
            model: ModelInfo { name: "sensor-filter".to_string(), automata: 4, variables: 6 },
            property: PropertyInfo {
                kind: "timed-reachability".to_string(),
                bound: 10.0,
                goal: "var monitor.system_failed".to_string(),
            },
            config: ConfigInfo {
                epsilon: 0.05,
                delta: 0.05,
                strategy: "uniform".to_string(),
                generator: "chernoff-hoeffding".to_string(),
                deadlock_policy: "falsify".to_string(),
                max_steps: 100_000,
                seed: 0xC0_FF_EE,
                workers: 2,
            },
            estimate: EstimateInfo {
                mean: 0.25,
                epsilon: 0.05,
                confidence: 0.95,
                samples: 738,
                successes: 184,
            },
            pre_verdict: Some("unknown".to_string()),
            convergence: vec![
                ConvergencePoint { samples: 64, mean: 0.28125, half_width: 0.17 },
                ConvergencePoint { samples: 256, mean: 0.26, half_width: 0.085 },
                ConvergencePoint { samples: 738, mean: 0.25, half_width: 0.05 },
            ],
            paths: PathInfo {
                satisfied: 184,
                time_bound_exceeded: 554,
                total: 738,
                total_steps: 12345,
                mean_steps: 12345.0 / 738.0,
                mean_satisfaction_time: Some(4.25),
                min_satisfaction_time: Some(0.5),
                max_satisfaction_time: Some(9.75),
                ..PathInfo::default()
            },
            wall_ms: 81.25,
            approx_memory_bytes: 4096,
            phases: vec![
                ("instantiate".to_string(), 0.5),
                ("simulate".to_string(), 78.0),
                ("estimate".to_string(), 0.25),
            ],
            workers: vec![
                WorkerInfo {
                    worker: 0,
                    paths: 369,
                    satisfied: 92,
                    busy_ms: 70.0,
                    paths_per_sec: 5271.4,
                },
                WorkerInfo {
                    worker: 1,
                    paths: 369,
                    satisfied: 92,
                    busy_ms: 72.0,
                    paths_per_sec: 5125.0,
                },
            ],
            metrics: reg.snapshot(),
            profile: None,
        }
    }

    #[test]
    fn json_roundtrip_is_field_exact() {
        let r = sample_report();
        let text = r.to_json().to_pretty();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn sample_report_validates_clean() {
        assert_eq!(sample_report().validate(), Vec::<String>::new());
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut r = sample_report();
        r.paths.satisfied += 1; // breaks verdict sum, worker sums
        r.estimate.mean = 1.5;
        r.schema_version = 99;
        let problems = r.validate();
        assert!(problems.iter().any(|p| p.contains("verdict counts")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("outside [0, 1]")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("schema_version")), "{problems:?}");
    }

    #[test]
    fn null_satisfaction_times_roundtrip() {
        let mut r = sample_report();
        r.paths.mean_satisfaction_time = None;
        r.paths.min_satisfaction_time = None;
        r.paths.max_satisfaction_time = None;
        let text = r.to_json().to_compact();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.paths.mean_satisfaction_time, None);
        assert_eq!(back, r);
    }

    /// A v1 document (no `convergence`, no `pre_verdict`) — the fixture
    /// mirrors what the tool wrote before the v2/v3 migrations.
    fn v1_fixture() -> String {
        let mut r = sample_report();
        r.schema_version = 1;
        r.convergence.clear();
        r.pre_verdict = None;
        let v = r.to_json();
        // Strip the empty convergence/pre_verdict members so the document
        // is a true v1 file, not just a v3 file with null placeholders.
        let Json::Obj(members) = v else { unreachable!() };
        Json::Obj(
            members.into_iter().filter(|(k, _)| k != "convergence" && k != "pre_verdict").collect(),
        )
        .to_pretty()
    }

    #[test]
    fn v1_reports_still_parse_and_validate() {
        let text = v1_fixture();
        assert!(!text.contains("convergence"));
        assert!(!text.contains("pre_verdict"));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.schema_version, 1);
        assert!(back.convergence.is_empty());
        assert_eq!(back.pre_verdict, None);
        assert_eq!(back.validate(), Vec::<String>::new());
    }

    /// A v3 document (no `profile`) — the fixture mirrors what the tool
    /// wrote before the v4 migration.
    fn v3_fixture() -> String {
        let mut r = sample_report();
        r.schema_version = 3;
        let v = r.to_json();
        // Strip the null profile member so the document is a true v3
        // file, not just a v4 file with a null placeholder.
        let Json::Obj(members) = v else { unreachable!() };
        Json::Obj(members.into_iter().filter(|(k, _)| k != "profile").collect()).to_pretty()
    }

    #[test]
    fn v3_reports_still_parse_and_validate() {
        let text = v3_fixture();
        assert!(!text.contains("\"profile\""));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.schema_version, 3);
        assert_eq!(back.profile, None);
        assert_eq!(back.validate(), Vec::<String>::new());
    }

    #[test]
    fn embedded_profile_roundtrips_and_is_validated() {
        use crate::profile::{ProfileEntry, ProfileReport, PROFILE_SCHEMA_VERSION};
        let mut r = sample_report();
        r.profile = Some(ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            model: "sensor-filter".to_string(),
            seed: 0xC0_FF_EE,
            samples: 738,
            total_ops: 10,
            ops: vec![ProfileEntry { label: "LoadVar".to_string(), count: 10 }],
            digrams: Vec::new(),
            guards: Vec::new(),
            transitions: Vec::new(),
            locations: Vec::new(),
            delay_solves: 0,
            batches: 0,
            scalar_drains: 0,
            lane_occupancy: Vec::new(),
        });
        let text = r.to_json().to_pretty();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(r.validate(), Vec::<String>::new());
        // A broken embedded profile surfaces through the run report's
        // validator, prefixed so the problem is attributable.
        r.profile.as_mut().unwrap().total_ops = 7; // op sum is 10
        assert!(r.validate().iter().any(|p| p.starts_with("profile: ")), "{:?}", r.validate());
    }

    #[test]
    fn pre_verdict_consistency_is_validated() {
        // A decisive pre-verdict with sampled data is inconsistent.
        let mut r = sample_report();
        r.pre_verdict = Some("unreachable".to_string());
        let problems = r.validate();
        assert!(problems.iter().any(|p| p.contains("expected 0")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("estimate.mean")), "{problems:?}");
        // Unrecognized verdict names are flagged.
        let mut r = sample_report();
        r.pre_verdict = Some("maybe".to_string());
        assert!(r.validate().iter().any(|p| p.contains("unknown pre_verdict")));
        // A proper zero-sample short-circuit validates clean.
        let mut r = sample_report();
        r.pre_verdict = Some("unreachable".to_string());
        r.estimate =
            EstimateInfo { mean: 0.0, epsilon: 0.0, confidence: 1.0, samples: 0, successes: 0 };
        r.paths = PathInfo::default();
        r.convergence.clear();
        r.workers.clear();
        r.phases = vec![("static".to_string(), 0.5)];
        assert_eq!(r.validate(), Vec::<String>::new());
    }

    #[test]
    fn validate_catches_bad_convergence() {
        let mut r = sample_report();
        r.convergence[1].samples = 64; // not strictly increasing
        r.convergence[2].mean = 2.0;
        let problems = r.validate();
        assert!(problems.iter().any(|p| p.contains("strictly increasing")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("convergence[2].mean")), "{problems:?}");
        let mut r = sample_report();
        r.convergence.last_mut().unwrap().samples = 10_000;
        assert!(r.validate().iter().any(|p| p.contains("past estimate.samples")));
    }

    #[test]
    fn from_json_names_missing_fields() {
        let v = Json::parse(r#"{"schema_version": 1}"#).unwrap();
        let err = RunReport::from_json(&v).unwrap_err();
        assert!(err.contains("tool"), "{err}");
    }
}
