//! Expression AST over model variables.
//!
//! Expressions appear as transition guards, location invariants, effect
//! right-hand sides, data-flow definitions and property goals. They are
//! Boolean/arithmetic terms over the network's variables, with the usual
//! int→real coercion.

use crate::error::TypeError;
use crate::value::{Value, VarType};
use std::fmt;

/// Index of a variable in the network's global variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division (real semantics; integer operands are coerced).
    Div,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Logical exclusive or.
    Xor,
    /// Logical implication.
    Implies,
    /// Equality (numeric coercion applies).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl BinOp {
    /// True for `And`/`Or`/`Xor`/`Implies`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Implies)
    }

    /// True for comparison operators producing Booleans from numbers.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max)
    }

    /// Concrete syntax used by [`fmt::Display`] on [`Expr`].
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Implies => "=>",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// An expression over model variables.
///
/// # Examples
///
/// ```
/// use slim_automata::expr::{Expr, VarId};
///
/// // x >= 200 and x <= 300
/// let x = Expr::var(VarId(0));
/// let guard = x.clone().ge(Expr::real(200.0)).and(x.le(Expr::real(300.0)));
/// assert!(guard.to_string().contains("and"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Variable read.
    Var(VarId),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// If-then-else (`cond ? then : else`).
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The constant `true`.
    pub const TRUE: Expr = Expr::Const(Value::Bool(true));
    /// The constant `false`.
    pub const FALSE: Expr = Expr::Const(Value::Bool(false));

    /// Variable reference.
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Real literal.
    pub fn real(r: f64) -> Expr {
        Expr::Const(Value::Real(r))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// Logical `and`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// Logical `or`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// Logical `xor`.
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Xor, Box::new(self), Box::new(rhs))
    }

    /// Logical implication.
    pub fn implies(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Implies, Box::new(self), Box::new(rhs))
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Arithmetic negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `if cond then self else other`.
    pub fn ite(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::Ite(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Conjunction of an iterator of expressions (`true` when empty).
    pub fn all<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::TRUE,
            Some(first) => it.fold(first, Expr::and),
        }
    }

    /// Disjunction of an iterator of expressions (`false` when empty).
    pub fn any<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::FALSE,
            Some(first) => it.fold(first, Expr::or),
        }
    }

    /// True if the expression is the literal `true`.
    pub fn is_const_true(&self) -> bool {
        matches!(self, Expr::Const(Value::Bool(true)))
    }

    /// Collects all variables read by the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Not(e) | Expr::Neg(e) => e.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Ite(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// All variables read by the expression, deduplicated and sorted.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if the expression reads any variable for which `pred` holds.
    pub fn reads_any_var(&self, pred: &dyn Fn(VarId) -> bool) -> bool {
        self.vars().into_iter().any(pred)
    }

    /// Rewrites every variable reference through `map` (used when merging
    /// variable tables during lowering).
    pub fn map_vars(&self, map: &dyn Fn(VarId) -> VarId) -> Expr {
        match self {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Var(v) => Expr::Var(map(*v)),
            Expr::Not(e) => Expr::Not(Box::new(e.map_vars(map))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_vars(map))),
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.map_vars(map)), Box::new(b.map_vars(map)))
            }
            Expr::Ite(c, t, e) => Expr::Ite(
                Box::new(c.map_vars(map)),
                Box::new(t.map_vars(map)),
                Box::new(e.map_vars(map)),
            ),
        }
    }

    /// Statically checks the expression against the variable typing `ty_of`
    /// and returns its result kind.
    ///
    /// # Errors
    /// Returns a [`TypeError`] on kind mismatches (Boolean used as number,
    /// comparing a Boolean with a number, …).
    pub fn check(&self, ty_of: &dyn Fn(VarId) -> VarType) -> Result<TypeKind, TypeError> {
        match self {
            Expr::Const(Value::Bool(_)) => Ok(TypeKind::Bool),
            Expr::Const(Value::Int(_)) => Ok(TypeKind::Int),
            Expr::Const(Value::Real(_)) => Ok(TypeKind::Real),
            Expr::Var(v) => Ok(match ty_of(*v) {
                VarType::Bool => TypeKind::Bool,
                VarType::Int { .. } => TypeKind::Int,
                VarType::Real | VarType::Clock | VarType::Continuous => TypeKind::Real,
            }),
            Expr::Not(e) => {
                let k = e.check(ty_of)?;
                if k == TypeKind::Bool {
                    Ok(TypeKind::Bool)
                } else {
                    Err(TypeError::Expected {
                        expected: "bool",
                        found: k.name(),
                        context: "not".into(),
                    })
                }
            }
            Expr::Neg(e) => {
                let k = e.check(ty_of)?;
                if k.is_numeric() {
                    Ok(k)
                } else {
                    Err(TypeError::Expected {
                        expected: "number",
                        found: k.name(),
                        context: "negation".into(),
                    })
                }
            }
            Expr::Bin(op, a, b) => {
                let ka = a.check(ty_of)?;
                let kb = b.check(ty_of)?;
                if op.is_logical() {
                    if ka == TypeKind::Bool && kb == TypeKind::Bool {
                        Ok(TypeKind::Bool)
                    } else {
                        Err(TypeError::Expected {
                            expected: "bool",
                            found: if ka == TypeKind::Bool { kb.name() } else { ka.name() },
                            context: op.symbol().into(),
                        })
                    }
                } else if op.is_comparison() {
                    match (*op, ka, kb) {
                        (BinOp::Eq | BinOp::Ne, TypeKind::Bool, TypeKind::Bool) => {
                            Ok(TypeKind::Bool)
                        }
                        (_, ka, kb) if ka.is_numeric() && kb.is_numeric() => Ok(TypeKind::Bool),
                        _ => Err(TypeError::Mismatch { context: op.symbol().into() }),
                    }
                } else {
                    // arithmetic
                    if ka.is_numeric() && kb.is_numeric() {
                        if *op == BinOp::Div {
                            Ok(TypeKind::Real)
                        } else {
                            Ok(ka.join(kb))
                        }
                    } else {
                        Err(TypeError::Expected {
                            expected: "number",
                            found: if ka.is_numeric() { kb.name() } else { ka.name() },
                            context: op.symbol().into(),
                        })
                    }
                }
            }
            Expr::Ite(c, t, e) => {
                let kc = c.check(ty_of)?;
                if kc != TypeKind::Bool {
                    return Err(TypeError::Expected {
                        expected: "bool",
                        found: kc.name(),
                        context: "if condition".into(),
                    });
                }
                let kt = t.check(ty_of)?;
                let ke = e.check(ty_of)?;
                match (kt, ke) {
                    (TypeKind::Bool, TypeKind::Bool) => Ok(TypeKind::Bool),
                    (a, b) if a.is_numeric() && b.is_numeric() => Ok(a.join(b)),
                    _ => Err(TypeError::Mismatch { context: "if branches".into() }),
                }
            }
        }
    }
}

/// Static result kind of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// Boolean result.
    Bool,
    /// Integer result.
    Int,
    /// Real result.
    Real,
}

impl TypeKind {
    /// True for `Int`/`Real`.
    pub fn is_numeric(self) -> bool {
        !matches!(self, TypeKind::Bool)
    }

    /// Kind name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            TypeKind::Bool => "bool",
            TypeKind::Int => "int",
            TypeKind::Real => "real",
        }
    }

    /// Least upper bound for numeric kinds (`Int ⊔ Real = Real`).
    pub fn join(self, other: TypeKind) -> TypeKind {
        if self == TypeKind::Real || other == TypeKind::Real {
            TypeKind::Real
        } else {
            self
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Not(e) => write!(f, "(not {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty_table(tys: &[VarType]) -> impl Fn(VarId) -> VarType + '_ {
        move |v: VarId| tys[v.0]
    }

    #[test]
    fn builder_shapes() {
        let e = Expr::var(VarId(0)).add(Expr::int(1)).le(Expr::int(5));
        match &e {
            Expr::Bin(BinOp::Le, lhs, _) => {
                assert!(matches!(**lhs, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn vars_deduplicated() {
        let x = Expr::var(VarId(3));
        let e = x.clone().add(x.clone()).lt(x);
        assert_eq!(e.vars(), vec![VarId(3)]);
    }

    #[test]
    fn all_and_any_fold() {
        assert!(Expr::all(std::iter::empty()).is_const_true());
        assert_eq!(Expr::any(std::iter::empty()), Expr::FALSE);
        let e = Expr::all(vec![Expr::TRUE, Expr::FALSE]);
        assert!(matches!(e, Expr::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn typecheck_accepts_mixed_arithmetic() {
        let tys = [VarType::INT, VarType::Real];
        let e = Expr::var(VarId(0)).add(Expr::var(VarId(1)));
        assert_eq!(e.check(&ty_table(&tys)), Ok(TypeKind::Real));
    }

    #[test]
    fn typecheck_rejects_bool_arithmetic() {
        let tys = [VarType::Bool];
        let e = Expr::var(VarId(0)).add(Expr::int(1));
        assert!(e.check(&ty_table(&tys)).is_err());
    }

    #[test]
    fn typecheck_rejects_bool_number_comparison() {
        let tys = [VarType::Bool];
        let e = Expr::var(VarId(0)).eq(Expr::int(1));
        assert!(e.check(&ty_table(&tys)).is_err());
        let ok = Expr::var(VarId(0)).eq(Expr::bool(true));
        assert_eq!(ok.check(&ty_table(&tys)), Ok(TypeKind::Bool));
    }

    #[test]
    fn typecheck_division_is_real() {
        let tys = [VarType::INT];
        let e = Expr::var(VarId(0)).div(Expr::int(2));
        assert_eq!(e.check(&ty_table(&tys)), Ok(TypeKind::Real));
    }

    #[test]
    fn ite_branch_kinds_join() {
        let tys = [VarType::Bool, VarType::INT, VarType::Real];
        let e = Expr::ite(Expr::var(VarId(0)), Expr::var(VarId(1)), Expr::var(VarId(2)));
        assert_eq!(e.check(&ty_table(&tys)), Ok(TypeKind::Real));
        let bad = Expr::ite(Expr::var(VarId(1)), Expr::int(0), Expr::int(1));
        assert!(bad.check(&ty_table(&tys)).is_err());
    }

    #[test]
    fn map_vars_rewrites() {
        let e = Expr::var(VarId(0)).add(Expr::var(VarId(1)));
        let shifted = e.map_vars(&|v| VarId(v.0 + 10));
        assert_eq!(shifted.vars(), vec![VarId(10), VarId(11)]);
    }

    #[test]
    fn display_round_trips_symbols() {
        let e = Expr::var(VarId(0))
            .ge(Expr::real(200.0))
            .and(Expr::var(VarId(0)).le(Expr::real(300.0)));
        let s = e.to_string();
        assert!(s.contains(">=") && s.contains("<=") && s.contains("and"));
    }
}
