//! Networks of communicating event-data automata (NEDA, §III-A of the
//! paper) and their operational semantics.
//!
//! A [`Network`] owns the global action table, the global variable table,
//! the automata, and the data-flow assignments. It exposes the two kinds of
//! moves of the SLIM semantics:
//!
//! * **timed transitions** — [`Network::advance`], legal within the
//!   invariant-derived delay window of [`Network::delay_window`];
//! * **discrete transitions** — synchronized combinations of local
//!   transitions ([`Network::guarded_candidates`] with their exact enabling
//!   [`IntervalSet`]s, and [`Network::markovian_candidates`] with their
//!   exponential rates), executed by [`Network::apply`].

use crate::automaton::{ActionId, Automaton, GuardKind, LocId, ProcId, TransId, Transition};
use crate::error::{EvalError, ModelError};
use crate::eval::{eval, Valuation};
use crate::expr::{Expr, VarId};
use crate::flow::{run_flows, toposort_flows, Flow};
use crate::interval::{Interval, IntervalSet};
use crate::linear::{solve, DelayEnv};
use crate::state::NetState;
use crate::validate::validate_network;
use crate::value::{Value, VarType};

/// An entry of the network's action table.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionDecl {
    /// Action name; index 0 is always `"tau"`.
    pub name: String,
}

/// An entry of the network's variable table.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Fully qualified name (instance path).
    pub name: String,
    /// Declared type.
    pub ty: VarType,
    /// Initial value.
    pub init: Value,
    /// Owning automaton, if the variable belongs to a component (used for
    /// diagnostics; shared/global variables have no owner).
    pub owner: Option<ProcId>,
}

/// A global discrete transition: one local transition per participating
/// automaton, all labeled with `action` (or a single τ-transition).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalTransition {
    /// The synchronizing action ([`ActionId::TAU`] for internal moves).
    pub action: ActionId,
    /// Participating `(automaton, local transition)` pairs, sorted by
    /// automaton index.
    pub parts: Vec<(ProcId, TransId)>,
}

/// A guarded global transition together with the exact set of delays after
/// which it is enabled (before intersection with the invariant window).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedCandidate {
    /// The global transition.
    pub transition: GlobalTransition,
    /// Delays `d ≥ 0` such that all local guards hold after waiting `d`.
    pub window: IntervalSet,
    /// True if any participating local transition is urgent: time may not
    /// pass beyond the first instant this candidate is enabled.
    pub urgent: bool,
}

/// A Markovian global transition (always a single τ-labeled local
/// transition) with its exponential rate.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovianCandidate {
    /// The global transition (one participant).
    pub transition: GlobalTransition,
    /// Exponential rate λ.
    pub rate: f64,
}

/// Absolute tolerance for invariant-boundary floating-point drift (see
/// [`Network::delay_window`]).
pub const INVARIANT_TOLERANCE: f64 = 1e-9;

/// A validated network of event-data automata.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    pub(crate) actions: Vec<ActionDecl>,
    pub(crate) vars: Vec<VarDecl>,
    pub(crate) automata: Vec<Automaton>,
    pub(crate) flows: Vec<Flow>,
    /// Participants per action (automata whose alphabet contains it).
    pub(crate) participants: Vec<Vec<ProcId>>,
}

impl Network {
    /// The action table (index 0 is τ).
    pub fn actions(&self) -> &[ActionDecl] {
        &self.actions
    }

    /// The variable table.
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// The automata.
    pub fn automata(&self) -> &[Automaton] {
        &self.automata
    }

    /// The (topologically ordered) data flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Automata participating in `action`.
    pub fn participants(&self, action: ActionId) -> &[ProcId] {
        &self.participants[action.0]
    }

    /// Looks up a variable by its fully qualified name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId)
    }

    /// Looks up an action by name.
    pub fn action_id(&self, name: &str) -> Option<ActionId> {
        self.actions.iter().position(|a| a.name == name).map(ActionId)
    }

    /// Looks up an automaton by name.
    pub fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.automata.iter().position(|a| a.name == name).map(ProcId)
    }

    /// Looks up a location of a named automaton.
    pub fn loc_id(&self, proc: &str, loc: &str) -> Option<(ProcId, LocId)> {
        let p = self.proc_id(proc)?;
        let l = self.automata[p.0].loc_by_name(loc)?;
        Some((p, l))
    }

    /// Type accessor used by evaluators.
    pub fn ty_of(&self, v: VarId) -> VarType {
        self.vars[v.0].ty
    }

    /// Name accessor used in diagnostics and trace rendering (borrowed —
    /// callers that need ownership convert explicitly).
    pub fn name_of(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// The initial state (initial locations, initial values, flows
    /// established, time 0).
    ///
    /// # Errors
    /// Propagates flow-evaluation errors.
    pub fn initial_state(&self) -> Result<NetState, EvalError> {
        let locs = self.automata.iter().map(|a| a.init).collect();
        let mut nu: Valuation = self.vars.iter().map(|v| v.ty.canonicalize(v.init)).collect();
        let ty = |v: VarId| self.ty_of(v);
        let name = |v: VarId| self.name_of(v).to_string();
        run_flows(&self.flows, &mut nu, &ty, &name)?;
        Ok(NetState::new(locs, nu))
    }

    /// The active derivative of every variable in `state`: 1 for clocks,
    /// the current location's rate for continuous variables, 0 otherwise.
    pub fn active_rates(&self, state: &NetState) -> Vec<f64> {
        let mut rates = Vec::new();
        self.active_rates_into(state, &mut rates);
        rates
    }

    /// Allocation-free [`Network::active_rates`]: overwrites `rates`
    /// in place, reusing its buffer.
    pub fn active_rates_into(&self, state: &NetState, rates: &mut Vec<f64>) {
        rates.clear();
        rates.resize(self.vars.len(), 0.0);
        for (i, decl) in self.vars.iter().enumerate() {
            if decl.ty == VarType::Clock {
                rates[i] = 1.0;
            }
        }
        for (p, a) in self.automata.iter().enumerate() {
            let loc = &a.locations[state.locs[p].0];
            for &(v, r) in &loc.rates {
                rates[v.0] = r;
            }
        }
    }

    /// The set of delays during which *all* location invariants keep
    /// holding, as a single prefix window `[0, D]`/`[0, D)` (empty time can
    /// always pass by 0).
    ///
    /// A small tolerance ([`INVARIANT_TOLERANCE`]) absorbs floating-point
    /// drift: delaying exactly to an invariant boundary can overshoot by
    /// one ulp, which must not count as a violation.
    ///
    /// # Errors
    /// [`EvalError::InvariantViolated`] if some invariant does not even
    /// hold now (`d = 0`, beyond tolerance), and solver errors for
    /// non-linear invariants.
    pub fn delay_window(&self, state: &NetState) -> Result<IntervalSet, EvalError> {
        let rates = self.active_rates(state);
        let rate = |v: VarId| rates[v.0];
        let env = DelayEnv::new(&state.nu, &rate);
        let mut window = IntervalSet::all();
        for (p, a) in self.automata.iter().enumerate() {
            let loc = &a.locations[state.locs[p].0];
            if loc.invariant.is_const_true() {
                continue;
            }
            let sat = solve(&loc.invariant, &env)?;
            let holds_now =
                sat.contains(0.0) || sat.inf().is_some_and(|lo| lo <= INVARIANT_TOLERANCE);
            if !holds_now {
                return Err(EvalError::InvariantViolated {
                    automaton: a.name.clone(),
                    location: loc.name.clone(),
                });
            }
            window = window.intersect(&sat);
        }
        // Keep only the connected component containing 0: time passes
        // continuously, so the invariant must hold throughout the delay.
        if let Some((hi, closed)) = window.prefix_from_zero() {
            return Ok(IntervalSet::from(
                Interval::new(0.0, hi, true, closed)
                    .expect("prefix window is nonempty: contains 0"),
            ));
        }
        // Floating-point slack: the joint window starts within tolerance
        // of now — treat the state as sitting exactly on the boundary.
        if let Some(first) = window.intervals().first() {
            if first.lo() <= INVARIANT_TOLERANCE {
                return Ok(IntervalSet::from(
                    Interval::new(0.0, first.hi(), true, first.hi_closed())
                        .expect("boundary window is nonempty"),
                ));
            }
        }
        // Each per-automaton window touches [0, tol] but their intersection
        // is empty: no time can pass.
        Ok(IntervalSet::from(Interval::point(0.0)))
    }

    /// All guarded global transition candidates from `state`, each with its
    /// exact enabling window (NOT yet intersected with
    /// [`Network::delay_window`]; strategies do that).
    ///
    /// Empty-window candidates are filtered out.
    ///
    /// # Errors
    /// Solver errors (non-linear guards, type confusion).
    pub fn guarded_candidates(&self, state: &NetState) -> Result<Vec<GuardedCandidate>, EvalError> {
        let rates = self.active_rates(state);
        let rate = |v: VarId| rates[v.0];
        let env = DelayEnv::new(&state.nu, &rate);
        let mut out = Vec::new();

        // Internal (τ) guarded transitions fire alone.
        for (p, a) in self.automata.iter().enumerate() {
            for (t_id, t) in a.outgoing(state.locs[p]) {
                if !t.action.is_tau() {
                    continue;
                }
                if let GuardKind::Boolean(g) = &t.guard {
                    let window = solve(g, &env)?;
                    if !window.is_empty() {
                        out.push(GuardedCandidate {
                            transition: GlobalTransition {
                                action: ActionId::TAU,
                                parts: vec![(ProcId(p), t_id)],
                            },
                            window,
                            urgent: t.urgent,
                        });
                    }
                }
            }
        }

        // Synchronizing actions: every participant must join.
        for (a_idx, procs) in self.participants.iter().enumerate() {
            let action = ActionId(a_idx);
            if action.is_tau() || procs.is_empty() {
                continue;
            }
            // Collect each participant's locally enabled a-transitions.
            let mut local: Vec<Vec<(TransId, IntervalSet, bool)>> = Vec::with_capacity(procs.len());
            let mut possible = true;
            for &p in procs {
                let a = &self.automata[p.0];
                let mut opts = Vec::new();
                for (t_id, t) in a.outgoing(state.locs[p.0]) {
                    if t.action != action {
                        continue;
                    }
                    if let GuardKind::Boolean(g) = &t.guard {
                        let w = solve(g, &env)?;
                        if !w.is_empty() {
                            opts.push((t_id, w, t.urgent));
                        }
                    }
                }
                if opts.is_empty() {
                    possible = false;
                    break;
                }
                local.push(opts);
            }
            if !possible {
                continue;
            }
            // Cross product of the participants' choices:
            // (participants so far, joint time window, any urgent).
            type Combo = (Vec<(ProcId, TransId)>, IntervalSet, bool);
            let mut combos: Vec<Combo> = vec![(Vec::new(), IntervalSet::all(), false)];
            for (&p, opts) in procs.iter().zip(&local) {
                let mut next = Vec::with_capacity(combos.len() * opts.len());
                for (parts, window, urgent) in &combos {
                    for (t_id, w, u) in opts {
                        let joint = window.intersect(w);
                        if joint.is_empty() {
                            continue;
                        }
                        let mut parts = parts.clone();
                        parts.push((p, *t_id));
                        next.push((parts, joint, *urgent || *u));
                    }
                }
                combos = next;
                if combos.is_empty() {
                    break;
                }
            }
            for (parts, window, urgent) in combos {
                out.push(GuardedCandidate {
                    transition: GlobalTransition { action, parts },
                    window,
                    urgent,
                });
            }
        }
        Ok(out)
    }

    /// All Markovian transition candidates enabled in `state` with their
    /// rates. Markovian transitions are τ-labeled and fire alone.
    pub fn markovian_candidates(&self, state: &NetState) -> Vec<MarkovianCandidate> {
        let mut out = Vec::new();
        for (p, a) in self.automata.iter().enumerate() {
            for (t_id, t) in a.outgoing(state.locs[p]) {
                if let GuardKind::Markovian(rate) = t.guard {
                    out.push(MarkovianCandidate {
                        transition: GlobalTransition {
                            action: ActionId::TAU,
                            parts: vec![(ProcId(p), t_id)],
                        },
                        rate,
                    });
                }
            }
        }
        out
    }

    /// Advances time by `d`, updating clocks and continuous variables and
    /// re-establishing flows.
    ///
    /// # Errors
    /// [`EvalError::DelayNotAllowed`] when `d` exceeds the invariant
    /// window, plus flow-evaluation errors.
    pub fn advance(&self, state: &NetState, d: f64) -> Result<NetState, EvalError> {
        debug_assert!(d >= 0.0, "negative delay");
        let window = self.delay_window(state)?;
        if !window.contains(d) {
            return Err(EvalError::DelayNotAllowed {
                requested: d,
                allowed_up_to: window.sup().unwrap_or(0.0),
            });
        }
        let next = self.advance_unchecked(state, d)?;
        // Floating-point robustness: delaying exactly to an invariant
        // boundary can overshoot by one ulp (`c + (B − c)` need not equal
        // `B`). Since `d` lies inside the legal window, any invariant
        // violation in `next` is pure rounding — retreat by a relative
        // epsilon so the state sits just inside the boundary.
        if self.delay_window(&next).is_err() && d > 0.0 {
            for backoff in [1e-12, 1e-9] {
                let shorter = self.advance_unchecked(state, d * (1.0 - backoff))?;
                if self.delay_window(&shorter).is_ok() {
                    return Ok(shorter);
                }
            }
        }
        Ok(next)
    }

    /// Advances time without boundary snapping (see [`Self::advance`]).
    fn advance_unchecked(&self, state: &NetState, d: f64) -> Result<NetState, EvalError> {
        let rates = self.active_rates(state);
        let mut next = state.clone();
        for (i, r) in rates.iter().enumerate() {
            if *r != 0.0 {
                let cur = next.nu.get(VarId(i))?.as_real()?;
                next.nu.set(VarId(i), Value::Real(cur + r * d))?;
            }
        }
        next.time += d;
        let ty = |v: VarId| self.ty_of(v);
        let name = |v: VarId| self.name_of(v).to_string();
        run_flows(&self.flows, &mut next.nu, &ty, &name)?;
        Ok(next)
    }

    /// Fires a global transition: applies all effects (reading the
    /// pre-state), moves the participating automata, re-establishes flows.
    ///
    /// Effects of different participants are applied in participant order;
    /// if two participants write the same variable the later write wins
    /// (validated models may warn on such races).
    ///
    /// # Errors
    /// Evaluation errors from effects or flows; integer range violations.
    pub fn apply(&self, state: &NetState, gt: &GlobalTransition) -> Result<NetState, EvalError> {
        let mut next = state.clone();
        // Evaluate all effect right-hand sides against the pre-state.
        let mut writes: Vec<(VarId, Value)> = Vec::new();
        for &(p, t) in &gt.parts {
            let tr = self.transition(p, t);
            for eff in &tr.effects {
                let v = eval(&eff.expr, &state.nu)?;
                let ty = self.ty_of(eff.var);
                let v = ty.canonicalize(v);
                if !ty.admits(v) {
                    if let (VarType::Int { lo, hi }, Value::Int(i)) = (ty, v) {
                        return Err(EvalError::IntOutOfRange {
                            variable: self.name_of(eff.var).to_string(),
                            value: i,
                            lo,
                            hi,
                        });
                    }
                    return Err(EvalError::TypeConfusion {
                        context: format!(
                            "effect on {} produced {}",
                            self.name_of(eff.var),
                            v.kind()
                        ),
                    });
                }
                writes.push((eff.var, v));
            }
            next.locs[p.0] = tr.to;
        }
        for (var, v) in writes {
            next.nu.set(var, v)?;
        }
        let ty = |v: VarId| self.ty_of(v);
        let name = |v: VarId| self.name_of(v).to_string();
        run_flows(&self.flows, &mut next.nu, &ty, &name)?;
        Ok(next)
    }

    /// The local transition `(p, t)`.
    pub fn transition(&self, p: ProcId, t: TransId) -> &Transition {
        &self.automata[p.0].transitions[t.0]
    }

    /// Evaluates a Boolean expression in a state.
    ///
    /// # Errors
    /// Evaluation errors (validated goals never type-confuse).
    pub fn eval_bool(&self, state: &NetState, expr: &Expr) -> Result<bool, EvalError> {
        crate::eval::eval_bool(expr, &state.nu)
    }

    /// Renders an expression with variable *names* instead of `v<i>`
    /// indices — for diagnostics and the CLI's `info` output.
    pub fn render_expr(&self, e: &Expr) -> String {
        use crate::expr::BinOp;
        match e {
            Expr::Const(v) => v.to_string(),
            Expr::Var(v) => self
                .vars
                .get(v.0)
                .map(|d| d.name.as_str())
                .map_or_else(|| format!("v{}", v.0), str::to_string),
            Expr::Not(x) => format!("(not {})", self.render_expr(x)),
            Expr::Neg(x) => format!("(-{})", self.render_expr(x)),
            Expr::Bin(BinOp::Min, a, b) => {
                format!("min({}, {})", self.render_expr(a), self.render_expr(b))
            }
            Expr::Bin(BinOp::Max, a, b) => {
                format!("max({}, {})", self.render_expr(a), self.render_expr(b))
            }
            Expr::Bin(op, a, b) => {
                format!("({} {} {})", self.render_expr(a), op.symbol(), self.render_expr(b))
            }
            Expr::Ite(c, t, els) => format!(
                "(if {} then {} else {})",
                self.render_expr(c),
                self.render_expr(t),
                self.render_expr(els)
            ),
        }
    }

    /// Rough per-state memory footprint in bytes, used for the Table I
    /// memory columns (we cannot reproduce the authors' RSS measurements).
    pub fn state_size_bytes(&self) -> usize {
        self.automata.len() * std::mem::size_of::<LocId>()
            + self.vars.len() * std::mem::size_of::<Value>()
            + std::mem::size_of::<NetState>()
    }
}

/// Builder for a single automaton; add it to a [`NetworkBuilder`] with
/// [`NetworkBuilder::add_automaton`].
///
/// # Examples
///
/// ```
/// use slim_automata::prelude::*;
///
/// let mut net = NetworkBuilder::new();
/// let x = net.var("x", VarType::Clock, Value::Real(0.0));
/// let mut a = AutomatonBuilder::new("proc");
/// let l0 = a.location("idle");
/// let l1 = a.location_with("busy", Expr::var(x).le(Expr::real(5.0)), []);
/// a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(x, Expr::real(0.0))], l1);
/// net.add_automaton(a);
/// let network = net.build()?;
/// assert_eq!(network.automata().len(), 1);
/// # Ok::<(), slim_automata::error::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AutomatonBuilder {
    automaton: Automaton,
}

impl AutomatonBuilder {
    /// Starts building an automaton with the given name.
    pub fn new(name: impl Into<String>) -> AutomatonBuilder {
        AutomatonBuilder { automaton: Automaton::new(name) }
    }

    /// Adds a location with trivial invariant; returns its id. The first
    /// location added is the initial one unless [`Self::set_init`] is used.
    pub fn location(&mut self, name: impl Into<String>) -> LocId {
        self.location_with(name, Expr::TRUE, [])
    }

    /// Adds a location with an invariant and continuous-variable rates.
    pub fn location_with(
        &mut self,
        name: impl Into<String>,
        invariant: Expr,
        rates: impl IntoIterator<Item = (VarId, f64)>,
    ) -> LocId {
        let id = LocId(self.automaton.locations.len());
        self.automaton.locations.push(crate::automaton::Location {
            name: name.into(),
            invariant,
            rates: rates.into_iter().collect(),
        });
        id
    }

    /// Adds a guarded transition.
    pub fn guarded(
        &mut self,
        from: LocId,
        action: ActionId,
        guard: Expr,
        effects: impl IntoIterator<Item = crate::automaton::Effect>,
        to: LocId,
    ) -> TransId {
        self.guarded_with_urgency(from, action, guard, effects, to, false)
    }

    /// Adds an **urgent** guarded transition: time may not pass beyond
    /// the first instant it is enabled (AADL-eager semantics; this is
    /// what makes untimed models strategy-independent, §V-d left graph).
    pub fn guarded_urgent(
        &mut self,
        from: LocId,
        action: ActionId,
        guard: Expr,
        effects: impl IntoIterator<Item = crate::automaton::Effect>,
        to: LocId,
    ) -> TransId {
        self.guarded_with_urgency(from, action, guard, effects, to, true)
    }

    fn guarded_with_urgency(
        &mut self,
        from: LocId,
        action: ActionId,
        guard: Expr,
        effects: impl IntoIterator<Item = crate::automaton::Effect>,
        to: LocId,
        urgent: bool,
    ) -> TransId {
        let id = TransId(self.automaton.transitions.len());
        self.automaton.transitions.push(Transition {
            from,
            action,
            guard: GuardKind::Boolean(guard),
            effects: effects.into_iter().collect(),
            to,
            urgent,
        });
        id
    }

    /// Adds a Markovian (exponential-rate, τ-labeled) transition.
    pub fn markovian(
        &mut self,
        from: LocId,
        rate: f64,
        effects: impl IntoIterator<Item = crate::automaton::Effect>,
        to: LocId,
    ) -> TransId {
        let id = TransId(self.automaton.transitions.len());
        self.automaton.transitions.push(Transition {
            from,
            action: ActionId::TAU,
            guard: GuardKind::Markovian(rate),
            effects: effects.into_iter().collect(),
            to,
            urgent: false,
        });
        id
    }

    /// Sets the initial location (defaults to the first one added).
    pub fn set_init(&mut self, loc: LocId) {
        self.automaton.init = loc;
    }

    /// The automaton's name.
    pub fn name(&self) -> &str {
        &self.automaton.name
    }

    /// Finishes building (no validation; the network validates globally).
    pub fn finish(self) -> Automaton {
        self.automaton
    }
}

/// Which transitions and locations a [`Network::prune`] call removes.
///
/// Produced by the `slim-analysis` fixpoint engine (its `prune_plan`
/// method); the shape is plain per-automaton flags so a plan can be
/// audited — or adjusted with [`PrunePlan::keep_location`] — before it is
/// applied.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunePlan {
    /// `[proc][trans]` — transitions to remove.
    pub drop_trans: Vec<Vec<bool>>,
    /// `[proc][loc]` — locations to remove. Must be unreferenced by any
    /// kept transition and never an initial location.
    pub drop_locs: Vec<Vec<bool>>,
}

impl PrunePlan {
    /// Number of transitions the plan removes.
    pub fn dropped_transitions(&self) -> usize {
        self.drop_trans.iter().flatten().filter(|d| **d).count()
    }

    /// Number of locations the plan removes.
    pub fn dropped_locations(&self) -> usize {
        self.drop_locs.iter().flatten().filter(|d| **d).count()
    }

    /// True when the plan removes nothing.
    pub fn is_noop(&self) -> bool {
        self.dropped_transitions() == 0 && self.dropped_locations() == 0
    }

    /// Forces a location to survive pruning (e.g. because a goal
    /// predicate names it).
    pub fn keep_location(&mut self, p: ProcId, l: LocId) {
        self.drop_locs[p.0][l.0] = false;
    }
}

/// Old-index → new-index maps produced by [`Network::prune`], for
/// translating [`LocId`]/[`TransId`] references (goals, traces) onto the
/// pruned network. `None` means the index was removed.
#[derive(Debug, Clone)]
pub struct PruneMaps {
    /// `[proc][old_loc]` → new location index.
    pub locs: Vec<Vec<Option<LocId>>>,
    /// `[proc][old_trans]` → new transition index.
    pub trans: Vec<Vec<Option<TransId>>>,
}

impl Network {
    /// Applies a [`PrunePlan`]: removes the planned transitions and
    /// locations, renumbers [`LocId`]s/[`TransId`]s densely, and
    /// recomputes the per-action participant table from the surviving
    /// alphabets. Actions, variables, and flows are untouched, so
    /// [`VarId`]/[`ActionId`] references stay valid.
    ///
    /// With a plan from the `slim-analysis` fixpoint, the pruned network
    /// is *observationally identical* on every `(seed, workers)` run: the
    /// removed transitions are provably never fired, their guards either
    /// were never evaluated (unreachable source) or can never error, and
    /// alphabets are preserved action-wise (an action loses either all of
    /// its transitions or none per automaton), keeping the candidate
    /// enumeration order of everything that can still fire unchanged.
    ///
    /// Note that pruning renumbers transitions, so recorded witness
    /// traces replay only against the network they were produced on.
    ///
    /// # Panics
    /// Panics if the plan's shape does not match this network, drops an
    /// initial location, or leaves a kept transition referencing a
    /// dropped location.
    pub fn prune(&self, plan: &PrunePlan) -> (Network, PruneMaps) {
        assert_eq!(plan.drop_trans.len(), self.automata.len(), "plan/network mismatch");
        assert_eq!(plan.drop_locs.len(), self.automata.len(), "plan/network mismatch");
        let mut automata = Vec::with_capacity(self.automata.len());
        let mut loc_maps = Vec::with_capacity(self.automata.len());
        let mut trans_maps = Vec::with_capacity(self.automata.len());
        for (p, a) in self.automata.iter().enumerate() {
            assert_eq!(plan.drop_trans[p].len(), a.transitions.len(), "plan/network mismatch");
            assert_eq!(plan.drop_locs[p].len(), a.locations.len(), "plan/network mismatch");
            let mut loc_map: Vec<Option<LocId>> = Vec::with_capacity(a.locations.len());
            let mut locations = Vec::new();
            for (l, loc) in a.locations.iter().enumerate() {
                if plan.drop_locs[p][l] {
                    loc_map.push(None);
                } else {
                    loc_map.push(Some(LocId(locations.len())));
                    locations.push(loc.clone());
                }
            }
            let init = loc_map[a.init.0].expect("initial location must not be pruned");
            let mut trans_map: Vec<Option<TransId>> = Vec::with_capacity(a.transitions.len());
            let mut transitions = Vec::new();
            for (t, trans) in a.transitions.iter().enumerate() {
                if plan.drop_trans[p][t] {
                    trans_map.push(None);
                } else {
                    trans_map.push(Some(TransId(transitions.len())));
                    let from = loc_map[trans.from.0]
                        .expect("kept transition references a pruned source location");
                    let to = loc_map[trans.to.0]
                        .expect("kept transition references a pruned target location");
                    transitions.push(Transition { from, to, ..trans.clone() });
                }
            }
            automata.push(Automaton { name: a.name.clone(), locations, init, transitions });
            loc_maps.push(loc_map);
            trans_maps.push(trans_map);
        }
        // Recompute participants from the surviving alphabets (mirrors
        // assembly in the builder).
        let mut participants: Vec<Vec<ProcId>> = vec![Vec::new(); self.actions.len()];
        for (p, a) in automata.iter().enumerate() {
            for act in a.alphabet() {
                participants[act.0].push(ProcId(p));
            }
        }
        let net = Network {
            actions: self.actions.clone(),
            vars: self.vars.clone(),
            automata,
            flows: self.flows.clone(),
            participants,
        };
        debug_assert!(
            validate_network(&net).is_ok(),
            "pruning a validated network must preserve well-formedness"
        );
        (net, PruneMaps { locs: loc_maps, trans: trans_maps })
    }
}

/// Builder for a [`Network`]: declare actions and variables, add automata
/// and flows, then [`NetworkBuilder::build`] validates everything.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    actions: Vec<ActionDecl>,
    vars: Vec<VarDecl>,
    automata: Vec<Automaton>,
    flows: Vec<Flow>,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// Creates an empty builder (with the τ action pre-declared).
    pub fn new() -> NetworkBuilder {
        NetworkBuilder {
            actions: vec![ActionDecl { name: "tau".into() }],
            vars: Vec::new(),
            automata: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Declares (or looks up) a synchronizing action by name.
    pub fn action(&mut self, name: impl Into<String>) -> ActionId {
        let name = name.into();
        if let Some(i) = self.actions.iter().position(|a| a.name == name) {
            return ActionId(i);
        }
        let id = ActionId(self.actions.len());
        self.actions.push(ActionDecl { name });
        id
    }

    /// Declares a variable; names must be unique (checked at build).
    pub fn var(&mut self, name: impl Into<String>, ty: VarType, init: Value) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDecl { name: name.into(), ty, init, owner: None });
        id
    }

    /// Declares a variable owned by the automaton that will be added at
    /// index `owner`.
    pub fn var_owned(
        &mut self,
        name: impl Into<String>,
        ty: VarType,
        init: Value,
        owner: ProcId,
    ) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDecl { name: name.into(), ty, init, owner: Some(owner) });
        id
    }

    /// Adds a finished automaton builder.
    pub fn add_automaton(&mut self, builder: AutomatonBuilder) -> ProcId {
        let id = ProcId(self.automata.len());
        self.automata.push(builder.finish());
        id
    }

    /// Adds a data-flow assignment `target := expr`.
    pub fn flow(&mut self, target: VarId, expr: Expr) {
        self.flows.push(Flow::new(target, expr));
    }

    /// Number of automata added so far (the next automaton's [`ProcId`]).
    pub fn next_proc_id(&self) -> ProcId {
        ProcId(self.automata.len())
    }

    /// Validates and assembles the network.
    ///
    /// # Errors
    /// Any [`ModelError`] describing a well-formedness violation; see the
    /// crate documentation for the full rule set.
    pub fn build(self) -> Result<Network, ModelError> {
        let network = self.assemble_for_validation()?;
        validate_network(&network)?;
        Ok(network)
    }

    /// Assembles the network *without* running [`validate_network`]:
    /// orders the flows, computes the per-action participant lists, and
    /// returns the raw [`Network`].
    ///
    /// This is the entry point for tooling that wants to report **all**
    /// well-formedness violations (via [`crate::validate::validate_all`])
    /// instead of failing on the first one, and for tests that need to
    /// construct deliberately broken networks. Simulation of an
    /// unvalidated network may panic or return evaluation errors.
    ///
    /// # Errors
    /// Only the errors that make assembly itself impossible: duplicate
    /// flow targets and flow cycles (the flow order would be undefined),
    /// and out-of-range action indices (the participant table cannot be
    /// sized).
    pub fn assemble_for_validation(self) -> Result<Network, ModelError> {
        let NetworkBuilder { actions, vars, automata, flows } = self;
        // Topologically order flows first (also checks duplicates/cycles).
        let names: Vec<String> = vars.iter().map(|v| v.name.clone()).collect();
        let name_of = |v: VarId| {
            names.get(v.0).cloned().unwrap_or_else(|| format!("<out-of-range v{}>", v.0))
        };
        let flows = toposort_flows(flows, &name_of)?;

        // Participants per action.
        let mut participants: Vec<Vec<ProcId>> = vec![Vec::new(); actions.len()];
        for (p, a) in automata.iter().enumerate() {
            for act in a.alphabet() {
                if act.0 >= actions.len() {
                    return Err(ModelError::IndexOutOfRange {
                        what: "action",
                        index: act.0,
                        len: actions.len(),
                    });
                }
                participants[act.0].push(ProcId(p));
            }
        }

        Ok(Network { actions, vars, automata, flows, participants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Effect;

    /// Two automata synchronizing on `go`; a clock guard on one side.
    fn sync_network() -> Network {
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let flag = b.var("flag", VarType::Bool, Value::Bool(false));

        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location_with("wait", Expr::var(x).le(Expr::real(10.0)), []);
        let l1 = a1.location("done");
        a1.guarded(l0, go, Expr::var(x).ge(Expr::real(2.0)), [], l1);
        b.add_automaton(a1);

        let mut a2 = AutomatonBuilder::new("right");
        let r0 = a2.location("idle");
        let r1 = a2.location("active");
        a2.guarded(r0, go, Expr::TRUE, [Effect::assign(flag, Expr::bool(true))], r1);
        b.add_automaton(a2);

        b.build().unwrap()
    }

    #[test]
    fn initial_state_runs_flows() {
        let mut b = NetworkBuilder::new();
        let src = b.var("src", VarType::INT, Value::Int(4));
        let out = b.var("out", VarType::INT, Value::Int(0));
        b.flow(out, Expr::var(src).mul(Expr::int(3)));
        let mut a = AutomatonBuilder::new("p");
        a.location("only");
        b.add_automaton(a);
        let n = b.build().unwrap();
        let s = n.initial_state().unwrap();
        assert_eq!(s.nu.get(out), Ok(Value::Int(12)));
    }

    #[test]
    fn delay_window_from_invariant() {
        let n = sync_network();
        let s = n.initial_state().unwrap();
        let w = n.delay_window(&s).unwrap();
        assert_eq!(w.prefix_from_zero(), Some((10.0, true)));
    }

    #[test]
    fn guarded_candidates_synchronize() {
        let n = sync_network();
        let s = n.initial_state().unwrap();
        let cands = n.guarded_candidates(&s).unwrap();
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.transition.parts.len(), 2);
        // Window is [2, ∞) from the left guard (invariant not yet applied).
        assert!(!c.window.contains(1.9) && c.window.contains(2.0));
    }

    #[test]
    fn apply_fires_both_sides() {
        let n = sync_network();
        let s0 = n.initial_state().unwrap();
        let s1 = n.advance(&s0, 3.0).unwrap();
        let cands = n.guarded_candidates(&s1).unwrap();
        let s2 = n.apply(&s1, &cands[0].transition).unwrap();
        assert_eq!(s2.locs, vec![LocId(1), LocId(1)]);
        assert_eq!(s2.nu.get(VarId(1)), Ok(Value::Bool(true)));
        assert_eq!(s2.time, 3.0);
    }

    #[test]
    fn advance_updates_clock_and_respects_window() {
        let n = sync_network();
        let s0 = n.initial_state().unwrap();
        let s1 = n.advance(&s0, 10.0).unwrap();
        assert_eq!(s1.nu.get(VarId(0)), Ok(Value::Real(10.0)));
        assert!(matches!(n.advance(&s0, 10.5), Err(EvalError::DelayNotAllowed { .. })));
    }

    #[test]
    fn markovian_candidates_listed() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("err");
        let ok = a.location("ok");
        let bad = a.location("bad");
        a.markovian(ok, 0.1, [], bad);
        a.markovian(ok, 0.2, [], bad);
        b.add_automaton(a);
        let n = b.build().unwrap();
        let s = n.initial_state().unwrap();
        let ms = n.markovian_candidates(&s);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].rate, 0.1);
        assert_eq!(ms[1].rate, 0.2);
        assert!(n.guarded_candidates(&s).unwrap().is_empty());
    }

    #[test]
    fn sync_blocked_when_partner_cannot() {
        // Same shape as sync_network but the right side is in a location
        // without a `go` transition.
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("wait");
        let l1 = a1.location("done");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let r_idle = a2.location("stuck"); // no outgoing `go`
        let r1 = a2.location("active");
        a2.guarded(r1, go, Expr::TRUE, [], r_idle);
        b.add_automaton(a2);
        let n = b.build().unwrap();
        let s = n.initial_state().unwrap();
        assert!(n.guarded_candidates(&s).unwrap().is_empty());
    }

    #[test]
    fn cross_product_of_choices() {
        // Left has two `go` transitions, right has two: 4 combinations.
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("s");
        let l1 = a1.location("t");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        a1.guarded(l0, go, Expr::TRUE, [], l0);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let r0 = a2.location("s");
        let r1 = a2.location("t");
        a2.guarded(r0, go, Expr::TRUE, [], r1);
        a2.guarded(r0, go, Expr::TRUE, [], r0);
        b.add_automaton(a2);
        let n = b.build().unwrap();
        let s = n.initial_state().unwrap();
        assert_eq!(n.guarded_candidates(&s).unwrap().len(), 4);
    }

    #[test]
    fn lookup_helpers() {
        let n = sync_network();
        assert!(n.var_id("x").is_some());
        assert!(n.var_id("nope").is_none());
        assert!(n.action_id("go").is_some());
        assert_eq!(n.proc_id("left"), Some(ProcId(0)));
        let (p, l) = n.loc_id("right", "active").unwrap();
        assert_eq!((p, l), (ProcId(1), LocId(1)));
        assert!(n.state_size_bytes() > 0);
    }

    #[test]
    fn render_expr_uses_names() {
        let n = sync_network();
        let x = n.var_id("x").unwrap();
        let flag = n.var_id("flag").unwrap();
        let e = Expr::var(x).ge(Expr::real(2.0)).and(Expr::var(flag));
        let s = n.render_expr(&e);
        assert!(s.contains("x") && s.contains("flag") && s.contains(">="), "{s}");
        // Out-of-range ids degrade gracefully.
        let bad = Expr::var(VarId(99));
        assert_eq!(n.render_expr(&bad), "v99");
    }

    #[test]
    fn continuous_rates_applied() {
        let mut b = NetworkBuilder::new();
        let e = b.var("energy", VarType::Continuous, Value::Real(100.0));
        let mut a = AutomatonBuilder::new("battery");
        a.location_with("draining", Expr::var(e).ge(Expr::real(0.0)), [(e, -2.0)]);
        b.add_automaton(a);
        let n = b.build().unwrap();
        let s0 = n.initial_state().unwrap();
        let w = n.delay_window(&s0).unwrap();
        assert_eq!(w.prefix_from_zero(), Some((50.0, true)));
        let s1 = n.advance(&s0, 25.0).unwrap();
        assert_eq!(s1.nu.get(e), Ok(Value::Real(50.0)));
    }

    #[test]
    fn invariant_violation_detected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(5.0));
        let mut a = AutomatonBuilder::new("p");
        a.location_with("l", Expr::var(x).le(Expr::real(3.0)), []);
        b.add_automaton(a);
        let n = b.build().unwrap();
        let s = n.initial_state().unwrap();
        assert!(matches!(n.delay_window(&s), Err(EvalError::InvariantViolated { .. })));
    }
}
