//! Single event-data automaton (one SLIM process).

use crate::expr::{Expr, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a location within an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub usize);

/// Index of a transition within an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransId(pub usize);

/// Index of an automaton (process) within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// Index of an action in the network's action table.
///
/// Index `0` is always the internal action τ, which never synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub usize);

impl ActionId {
    /// The internal action τ.
    pub const TAU: ActionId = ActionId(0);

    /// True for the internal action.
    pub fn is_tau(self) -> bool {
        self == ActionId::TAU
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How a transition is triggered: by a Boolean guard (possibly over clocks
/// and continuous variables) or by an exponential delay with the given rate.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardKind {
    /// Enabled whenever the expression holds (time-dependent).
    Boolean(Expr),
    /// Fires after an exponentially distributed delay with this rate.
    ///
    /// Markovian transitions carry the internal action τ and never
    /// synchronize (§II-E of the paper).
    Markovian(f64),
}

impl GuardKind {
    /// True for [`GuardKind::Markovian`].
    pub fn is_markovian(&self) -> bool {
        matches!(self, GuardKind::Markovian(_))
    }
}

/// A variable update `var := expr` executed when a transition fires.
#[derive(Debug, Clone, PartialEq)]
pub struct Effect {
    /// Target variable.
    pub var: VarId,
    /// Right-hand side, evaluated in the pre-state.
    pub expr: Expr,
}

impl Effect {
    /// Convenience constructor.
    pub fn assign(var: VarId, expr: Expr) -> Effect {
        Effect { var, expr }
    }
}

/// A discrete transition of one automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source location.
    pub from: LocId,
    /// Action label; [`ActionId::TAU`] for internal steps.
    pub action: ActionId,
    /// Boolean guard or exponential rate.
    pub guard: GuardKind,
    /// Effects applied (simultaneously, reading the pre-state) on firing.
    pub effects: Vec<Effect>,
    /// Target location.
    pub to: LocId,
    /// Urgent (eager) transition: time may not pass beyond the first
    /// instant it becomes enabled. This models AADL's immediate mode
    /// transitions; only meaningful for Boolean guards.
    pub urgent: bool,
}

/// A location (SLIM *mode*) of an automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct Location {
    /// Human-readable name.
    pub name: String,
    /// Invariant restricting residence time; `Expr::TRUE` when absent.
    pub invariant: Expr,
    /// Constant derivatives of continuous variables while in this location.
    /// Clocks implicitly have derivative 1 everywhere and are not listed.
    pub rates: Vec<(VarId, f64)>,
}

impl Location {
    /// A location with trivial invariant and no continuous dynamics.
    pub fn simple(name: impl Into<String>) -> Location {
        Location { name: name.into(), invariant: Expr::TRUE, rates: Vec::new() }
    }

    /// The derivative this location assigns to `var`, if any.
    pub fn rate_of(&self, var: VarId) -> Option<f64> {
        self.rates.iter().find(|(v, _)| *v == var).map(|(_, r)| *r)
    }
}

/// One event-data automaton: locations, transitions and an action alphabet.
///
/// Automata are built through [`crate::network::NetworkBuilder`]; the fields are
/// public for inspection by analysis backends.
#[derive(Debug, Clone, PartialEq)]
pub struct Automaton {
    /// Name (instance path of the SLIM component).
    pub name: String,
    /// Locations; index = [`LocId`].
    pub locations: Vec<Location>,
    /// Initial location.
    pub init: LocId,
    /// Transitions; index = [`TransId`].
    pub transitions: Vec<Transition>,
}

impl Automaton {
    /// Creates an automaton; see [`crate::network::NetworkBuilder`] for the
    /// validated construction path.
    pub fn new(name: impl Into<String>) -> Automaton {
        Automaton {
            name: name.into(),
            locations: Vec::new(),
            init: LocId(0),
            transitions: Vec::new(),
        }
    }

    /// The synchronizing alphabet: all non-τ actions on transitions.
    pub fn alphabet(&self) -> BTreeSet<ActionId> {
        self.transitions.iter().map(|t| t.action).filter(|a| !a.is_tau()).collect()
    }

    /// Transitions leaving `loc`.
    pub fn outgoing(&self, loc: LocId) -> impl Iterator<Item = (TransId, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.from == loc)
            .map(|(i, t)| (TransId(i), t))
    }

    /// Looks up a location by name.
    pub fn loc_by_name(&self, name: &str) -> Option<LocId> {
        self.locations.iter().position(|l| l.name == name).map(LocId)
    }

    /// True if `loc` has at least one Markovian outgoing transition.
    pub fn is_markovian_loc(&self, loc: LocId) -> bool {
        self.outgoing(loc).any(|(_, t)| t.guard.is_markovian())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_loc_automaton() -> Automaton {
        let mut a = Automaton::new("A");
        a.locations.push(Location::simple("l0"));
        a.locations.push(Location::simple("l1"));
        a.transitions.push(Transition {
            from: LocId(0),
            action: ActionId(1),
            guard: GuardKind::Boolean(Expr::TRUE),
            effects: vec![],
            to: LocId(1),
            urgent: false,
        });
        a.transitions.push(Transition {
            from: LocId(1),
            action: ActionId::TAU,
            guard: GuardKind::Markovian(0.5),
            effects: vec![],
            to: LocId(0),
            urgent: false,
        });
        a
    }

    #[test]
    fn alphabet_excludes_tau() {
        let a = two_loc_automaton();
        let alpha = a.alphabet();
        assert_eq!(alpha.len(), 1);
        assert!(alpha.contains(&ActionId(1)));
    }

    #[test]
    fn outgoing_filters_by_source() {
        let a = two_loc_automaton();
        let out: Vec<_> = a.outgoing(LocId(0)).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, TransId(0));
        assert!(a.is_markovian_loc(LocId(1)));
        assert!(!a.is_markovian_loc(LocId(0)));
    }

    #[test]
    fn loc_by_name_finds() {
        let a = two_loc_automaton();
        assert_eq!(a.loc_by_name("l1"), Some(LocId(1)));
        assert_eq!(a.loc_by_name("nope"), None);
    }

    #[test]
    fn location_rate_lookup() {
        let mut l = Location::simple("l");
        l.rates.push((VarId(2), -1.5));
        assert_eq!(l.rate_of(VarId(2)), Some(-1.5));
        assert_eq!(l.rate_of(VarId(0)), None);
    }

    #[test]
    fn tau_is_action_zero() {
        assert!(ActionId::TAU.is_tau());
        assert!(!ActionId(3).is_tau());
    }
}
