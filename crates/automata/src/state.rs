//! Global state of a network of event-data automata.

use crate::automaton::LocId;
use crate::eval::Valuation;
use crate::value::Value;
use std::fmt;

/// A global state: one current location per automaton, a valuation of all
/// variables, and the absolute model time.
#[derive(Debug, Clone, PartialEq)]
pub struct NetState {
    /// Current location of each automaton (indexed by `ProcId`).
    pub locs: Vec<LocId>,
    /// Valuation of all network variables.
    pub nu: Valuation,
    /// Absolute elapsed model time.
    pub time: f64,
}

impl NetState {
    /// Creates a state at time zero.
    pub fn new(locs: Vec<LocId>, nu: Valuation) -> NetState {
        NetState { locs, nu, time: 0.0 }
    }

    /// Replaces the contents with a copy of `other`, reusing both buffers
    /// (no allocation once capacities match). The in-place per-path reset
    /// of the compiled simulation kernel.
    pub fn copy_from(&mut self, other: &NetState) {
        self.locs.clear();
        self.locs.extend_from_slice(&other.locs);
        self.nu.copy_from(&other.nu);
        self.time = other.time;
    }

    /// A hashable key over locations and *discrete* variable values.
    ///
    /// Returns `None` if any variable holds a real value — such models have
    /// uncountable state spaces and cannot be explicitly explored. Used by
    /// the CTMC backend, which requires untimed (discrete-data) models.
    pub fn discrete_key(&self) -> Option<DiscreteKey> {
        let mut vals = Vec::with_capacity(self.nu.len());
        for (_, v) in self.nu.iter() {
            match v {
                Value::Bool(b) => vals.push(DiscreteVal::Bool(b)),
                Value::Int(i) => vals.push(DiscreteVal::Int(i)),
                Value::Real(_) => return None,
            }
        }
        Some(DiscreteKey { locs: self.locs.clone(), vals })
    }
}

impl fmt::Display for NetState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} locs=[", self.time)?;
        for (i, l) in self.locs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "] ν=[")?;
        for (i, (_, v)) in self.nu.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A discrete variable value (hashable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscreteVal {
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
}

/// Hashable identity of a discrete state (locations + discrete values).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DiscreteKey {
    /// Current locations.
    pub locs: Vec<LocId>,
    /// Discrete variable values in `VarId` order.
    pub vals: Vec<DiscreteVal>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_key_rejects_reals() {
        let s =
            NetState::new(vec![LocId(0)], Valuation::new(vec![Value::Int(1), Value::Real(0.5)]));
        assert!(s.discrete_key().is_none());
    }

    #[test]
    fn discrete_key_equality() {
        let a = NetState::new(vec![LocId(0)], Valuation::new(vec![Value::Int(1)]));
        let mut b = a.clone();
        b.time = 42.0; // time is not part of the key
        assert_eq!(a.discrete_key().unwrap(), b.discrete_key().unwrap());
        let c = NetState::new(vec![LocId(1)], Valuation::new(vec![Value::Int(1)]));
        assert_ne!(a.discrete_key().unwrap(), c.discrete_key().unwrap());
    }

    #[test]
    fn display_mentions_time_and_values() {
        let s = NetState::new(vec![LocId(2)], Valuation::new(vec![Value::Bool(true)]));
        let txt = s.to_string();
        assert!(txt.contains("t=0") && txt.contains("l2") && txt.contains("true"));
    }
}
